//! The matrix mechanism framework (Li et al. \[15\]; Equation 2 of the paper).
//!
//! `M_A(W, x) = Wx + W A⁺ · Lap(Δ_A/ε)^p`: answer a low-sensitivity
//! *strategy* workload `A` with Laplace noise and reconstruct `W` from it.
//! All matrix mechanisms are data independent, which is exactly why
//! Theorem 4.1 gives transformational equivalence for *every* policy graph:
//! the noise term `W_G A_G⁺ Lap(Δ_{A_G}/ε)` is identical in vertex and edge
//! space.

use rand::Rng;

use blowfish_linalg::{pseudoinverse_with_method, Matrix, PinvMethod};

use blowfish_core::Epsilon;

use crate::noise::{laplace_variance, laplace_vec};
use crate::MechanismError;

/// A prepared matrix mechanism: workload `W`, strategy `A`, and the
/// precomputed reconstruction matrix `W A⁺`.
#[derive(Clone, Debug)]
pub struct MatrixMechanism {
    w: Matrix,
    strategy: Matrix,
    /// `W A⁺` — maps strategy noise into query space.
    reconstruction: Matrix,
    /// Unbounded-DP sensitivity `Δ_A` (max column L1 norm).
    delta_a: f64,
    /// Which factorization derived `A⁺` (reported via
    /// [`MatrixMechanism::apply_method`]).
    method: PinvMethod,
}

impl MatrixMechanism {
    /// Prepares the mechanism, verifying the support condition
    /// `W A⁺ A = W` (every workload row must lie in the strategy's row
    /// space, otherwise answers would be biased).
    ///
    /// When `A⁺` came out of the Cholesky normal-equations path with full
    /// column rank (or `A` is square and invertible), `A⁺ A = I` holds
    /// algebraically, so `W A⁺ A = W` for *every* workload — the explicit
    /// `O(q·p·k)` check is replaced by an `O(p·k)` probe of the
    /// left-inverse identity (guarding against an ill-conditioned but
    /// still Cholesky-factorizable `AᵀA` eroding `A⁺` numerically); only
    /// a failed probe falls back to the full check. This is the dominant
    /// saving on the cold matrix-mechanism planning path.
    pub fn new(w: Matrix, strategy: Matrix) -> Result<Self, MechanismError> {
        if w.cols() != strategy.cols() {
            return Err(MechanismError::InvalidParameter {
                what: "workload and strategy must share the domain size",
            });
        }
        let (a_plus, method) = pseudoinverse_with_method(&strategy)?;
        let reconstruction = w.matmul(&a_plus)?;
        let full_column_rank = match method {
            PinvMethod::CholeskyColumnRank => true,
            PinvMethod::CholeskyRowRank => strategy.is_square(),
            PinvMethod::Eigen => false,
        };
        let support_is_structural =
            full_column_rank && left_inverse_probe_holds(&a_plus, &strategy)?;
        if !support_is_structural {
            // Support condition: W A⁺ A = W.
            let waa = reconstruction.matmul(&strategy)?;
            if !waa.approx_eq(&w, 1e-6 * (1.0 + w.max_abs())) {
                return Err(MechanismError::StrategyDoesNotSupportWorkload);
            }
        }
        let delta_a = strategy.max_col_l1();
        if delta_a <= 0.0 {
            return Err(MechanismError::InvalidParameter {
                what: "strategy has zero sensitivity (all-zero matrix)",
            });
        }
        Ok(MatrixMechanism {
            w,
            strategy,
            reconstruction,
            delta_a,
            method,
        })
    }

    /// How this mechanism applies `A⁺`: always materialized, tagged with
    /// the factorization that derived it. The CSR counterpart
    /// ([`crate::SparseMatrixMechanism`]) reports
    /// [`PinvApply::IterativeCg`](crate::PinvApply::IterativeCg) instead.
    pub fn apply_method(&self) -> crate::PinvApply {
        crate::PinvApply::Materialized(self.method)
    }

    /// The workload `W`.
    pub fn workload(&self) -> &Matrix {
        &self.w
    }

    /// The strategy `A`.
    pub fn strategy(&self) -> &Matrix {
        &self.strategy
    }

    /// The strategy sensitivity `Δ_A`.
    pub fn delta_a(&self) -> f64 {
        self.delta_a
    }

    /// Runs the mechanism: `Wx + W A⁺ Lap(Δ_A/ε)^p`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, MechanismError> {
        let truth = self.w.matvec(x)?;
        let noise = self.noise_only(eps, rng)?;
        Ok(truth.iter().zip(&noise).map(|(t, n)| t + n).collect())
    }

    /// Draws only the reconstructed noise vector `W A⁺ Lap(Δ_A/ε)^p` —
    /// the data-independent part. Theorem 4.1's proof is literally that
    /// this vector is identical for `(W, x)` and `(W_G, x_G)`.
    pub fn noise_only<R: Rng + ?Sized>(
        &self,
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, MechanismError> {
        let scale = self.delta_a / eps.value();
        let raw = laplace_vec(rng, scale, self.strategy.rows());
        Ok(self.reconstruction.matvec(&raw)?)
    }

    /// Expected squared error of query `i`:
    /// `2 (Δ_A/ε)² ‖(W A⁺)ᵢ‖₂²`.
    pub fn query_error(&self, i: usize, eps: Epsilon) -> f64 {
        laplace_variance(self.delta_a / eps.value()) * self.reconstruction.row_sq_norm(i)
    }

    /// Expected total squared error over all queries (Definition 2.4's
    /// data-independent ERROR).
    pub fn total_error(&self, eps: Epsilon) -> f64 {
        let var = laplace_variance(self.delta_a / eps.value());
        let fro: f64 = (0..self.reconstruction.rows())
            .map(|i| self.reconstruction.row_sq_norm(i))
            .sum();
        var * fro
    }

    /// Expected per-query error (total / number of queries).
    pub fn per_query_error(&self, eps: Epsilon) -> f64 {
        self.total_error(eps) / self.w.rows() as f64
    }
}

/// Verifies the left-inverse identity `A⁺ A v = v` on a few seeded
/// pseudo-random probe vectors. O(p·k) per probe — cheap enough to keep
/// on the fast path. Random (rather than fixed) probes matter: the error
/// matrix `E = A⁺A − I` of a conditioning-eroded `A⁺` concentrates in
/// specific singular directions, and a fixed probe set can be
/// (near-)orthogonal to all of them, while a random probe's overlap with
/// any fixed direction is ~`1/√k` with overwhelming probability. The
/// tolerance `1e-8·(1+‖v‖∞)` is accordingly ~`√k` tighter than the full
/// check's `1e-6`, so a per-direction error at the rejection threshold
/// still registers through the overlap attenuation, while benign
/// well-conditioned rounding (≲1e-10) stays clear of it. A failed probe
/// sends `MatrixMechanism::new` back to the full `W A⁺ A = W` check,
/// which has the final word.
fn left_inverse_probe_holds(a_plus: &Matrix, a: &Matrix) -> Result<bool, MechanismError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let n = a.cols();
    // Deterministic seed: probe outcomes are reproducible run to run.
    let mut rng = StdRng::seed_from_u64(0x5EED_1DE4);
    for _ in 0..3 {
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let av = a.matvec(&v)?;
        let back = a_plus.matvec(&av)?;
        let scale = 1.0 + v.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
        if back
            .iter()
            .zip(&v)
            .any(|(b, x)| (b - x).abs() > 1e-8 * scale)
        {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The identity strategy `A = I_k` (the Laplace mechanism on the
/// histogram).
pub fn identity_strategy(k: usize) -> Matrix {
    Matrix::identity(k)
}

/// The binary hierarchical strategy `H_k` \[10\]: one row per node of a
/// binary interval tree over the (power-of-two padded) domain. Sensitivity
/// is the tree height.
pub fn hierarchical_strategy(k: usize) -> Matrix {
    let padded = k.next_power_of_two();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut size = padded;
    while size >= 1 {
        let mut start = 0;
        while start < padded {
            let mut row = vec![0.0; k];
            row[start.min(k)..(start + size).min(k)].fill(1.0);
            // Skip all-zero rows from padding.
            if row.iter().any(|&v| v != 0.0) {
                rows.push(row);
            }
            start += size;
        }
        if size == 1 {
            break;
        }
        size /= 2;
    }
    Matrix::from_rows(&rows).expect("rows share length k")
}

/// The Haar wavelet strategy `Y_k` (Privelet \[20\]) as an explicit matrix,
/// for small-domain matrix-mechanism experiments and the Figure-3
/// ablations. Rows are the (unweighted) Haar basis functions.
pub fn wavelet_strategy(k: usize) -> Matrix {
    let padded = k.next_power_of_two();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    // Total-average row.
    rows.push(vec![1.0; k]);
    let mut size = padded;
    while size >= 2 {
        let half = size / 2;
        let mut start = 0;
        while start < padded {
            let mut row = vec![0.0; k];
            row[start.min(k)..(start + half).min(k)].fill(1.0);
            row[(start + half).min(k)..(start + size).min(k)].fill(-1.0);
            if row.iter().any(|&v| v != 0.0) {
                rows.push(row);
            }
            start += size;
        }
        size /= 2;
    }
    Matrix::from_rows(&rows).expect("rows share length k")
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::Workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ranges_matrix(k: usize) -> Matrix {
        Workload::all_ranges_1d(k).to_dense_matrix()
    }

    #[test]
    fn identity_strategy_equals_laplace() {
        let k = 8;
        let w = Matrix::identity(k);
        let mm = MatrixMechanism::new(w, identity_strategy(k)).unwrap();
        assert_eq!(mm.delta_a(), 1.0);
        let eps = Epsilon::new(1.0).unwrap();
        // Per-query error = 2/ε².
        assert!((mm.per_query_error(eps) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn support_condition_rejected() {
        // Strategy spanning only the first coordinate cannot answer I_2.
        let w = Matrix::identity(2);
        let a = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        assert!(matches!(
            MatrixMechanism::new(w, a),
            Err(MechanismError::StrategyDoesNotSupportWorkload)
        ));
    }

    #[test]
    fn ill_conditioned_strategies_are_never_silently_biased() {
        // Nearly dependent strategy columns across the conditioning
        // spectrum: depending on d the pseudoinverse comes from the
        // Cholesky path (well conditioned), the probe-guarded fallback
        // (barely factorizable), or the eigen path (numerically rank
        // deficient). The invariant restored by the probe: whenever the
        // mechanism is *accepted*, its reconstruction genuinely satisfies
        // the support condition — acceptance is never based on a skipped
        // check over a numerically eroded A⁺.
        for exp in 3..9 {
            let d = 10f64.powi(-exp);
            let a = Matrix::from_vec(3, 2, vec![1.0, 1.0 + d, 1.0, 1.0, 0.0, 0.0]).unwrap();
            let w = Matrix::identity(2);
            if let Ok(mm) = MatrixMechanism::new(w.clone(), a.clone()) {
                let waa = mm.reconstruction.matmul(&a).unwrap();
                assert!(
                    waa.approx_eq(&w, 1e-5 * (1.0 + w.max_abs())),
                    "d=1e-{exp}: accepted a biased reconstruction"
                );
            }
        }
    }

    #[test]
    fn hierarchical_scales_polylog_vs_identity_linear() {
        // For range workloads, the identity strategy's per-query error is
        // Θ(k) (average range length) while hierarchical/wavelet are
        // O(log³k): the crossover sits at large k, so at dense-matrix
        // scales we verify the *growth rates* instead of absolute wins.
        let eps = Epsilon::new(1.0).unwrap();
        let err = |k: usize, strat: fn(usize) -> Matrix| -> f64 {
            MatrixMechanism::new(ranges_matrix(k), strat(k))
                .unwrap()
                .per_query_error(eps)
        };
        let (k_small, k_large) = (16usize, 128usize);
        let ident_ratio = err(k_large, identity_strategy) / err(k_small, identity_strategy);
        let hier_ratio = err(k_large, hierarchical_strategy) / err(k_small, hierarchical_strategy);
        let wave_ratio = err(k_large, wavelet_strategy) / err(k_small, wavelet_strategy);
        // Identity grows ~8× (linear in k); polylog strategies must grow
        // far slower.
        assert!(ident_ratio > 6.0, "identity ratio {ident_ratio}");
        assert!(
            hier_ratio < ident_ratio / 1.5,
            "hierarchical ratio {hier_ratio} vs identity {ident_ratio}"
        );
        assert!(
            wave_ratio < ident_ratio / 1.5,
            "wavelet ratio {wave_ratio} vs identity {ident_ratio}"
        );
    }

    #[test]
    fn empirical_error_matches_analytic() {
        let k = 16;
        let w = ranges_matrix(k);
        let mm = MatrixMechanism::new(w, hierarchical_strategy(k)).unwrap();
        let eps = Epsilon::new(0.5).unwrap();
        let x = vec![3.0; k];
        let truth = mm.workload().matvec(&x).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 300;
        let mut acc = 0.0;
        for _ in 0..trials {
            let est = mm.run(&x, eps, &mut rng).unwrap();
            acc += truth
                .iter()
                .zip(&est)
                .map(|(t, e)| (t - e) * (t - e))
                .sum::<f64>();
        }
        let measured = acc / trials as f64;
        let expected = mm.total_error(eps);
        assert!(
            (measured - expected).abs() / expected < 0.15,
            "measured {measured} vs expected {expected}"
        );
    }

    #[test]
    fn hierarchical_strategy_shape() {
        let h = hierarchical_strategy(8);
        // Levels: 1 (root) + 2 + 4 + 8 = 15 rows.
        assert_eq!(h.rows(), 15);
        assert_eq!(h.cols(), 8);
        // Sensitivity = height = 4 (root + 3 levels below... each column
        // appears once per level): log2(8)+1 = 4.
        assert_eq!(h.max_col_l1(), 4.0);
    }

    #[test]
    fn hierarchical_strategy_non_power_of_two() {
        let h = hierarchical_strategy(6);
        assert_eq!(h.cols(), 6);
        // Every column still has at most height entries.
        assert!(h.max_col_l1() <= 4.0);
        // Still supports the range workload.
        let w = ranges_matrix(6);
        assert!(MatrixMechanism::new(w, h).is_ok());
    }

    #[test]
    fn wavelet_strategy_is_invertible_basis() {
        let y = wavelet_strategy(8);
        assert_eq!(y.rows(), 8);
        // Full rank: supports the identity workload.
        assert!(MatrixMechanism::new(Matrix::identity(8), y).is_ok());
    }

    #[test]
    fn noise_is_data_independent() {
        // Same seed => same noise regardless of database (the property that
        // powers Theorem 4.1).
        let k = 8;
        let mm = MatrixMechanism::new(ranges_matrix(k), hierarchical_strategy(k)).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        let x1 = vec![0.0; k];
        let x2 = vec![100.0; k];
        let t1 = mm.workload().matvec(&x1).unwrap();
        let t2 = mm.workload().matvec(&x2).unwrap();
        let e1 = mm.run(&x1, eps, &mut StdRng::seed_from_u64(7)).unwrap();
        let e2 = mm.run(&x2, eps, &mut StdRng::seed_from_u64(7)).unwrap();
        for i in 0..e1.len() {
            assert!(((e1[i] - t1[i]) - (e2[i] - t2[i])).abs() < 1e-9);
        }
    }
}
