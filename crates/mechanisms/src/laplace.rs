//! The Laplace mechanism (Theorem 2.1).
//!
//! `L(W, x) = Wx + Lap(Δ_W/ε)^q` satisfies ε-differential privacy with
//! data-independent error `2·q·Δ_W²/ε²`. It is the base building block of
//! every strategy in the paper: applied to histograms (`I_k`), to
//! transformed databases `x_G`, and to bucket totals inside DAWA.

use rand::Rng;

use blowfish_core::{Epsilon, Workload};

use crate::noise::{laplace_variance, laplace_vec};
use crate::MechanismError;

/// Releases noisy answers `Wx + Lap(Δ/ε)^q` for an explicit sensitivity Δ
/// (pass the policy sensitivity `Δ_W(G)` for Blowfish uses, or the DP
/// sensitivity `Δ_W` for classic uses).
pub fn laplace_workload<R: Rng + ?Sized>(
    w: &Workload,
    x: &[f64],
    sensitivity: f64,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, MechanismError> {
    if sensitivity <= 0.0 {
        return Err(MechanismError::InvalidParameter {
            what: "sensitivity must be positive",
        });
    }
    let truth = w.answer(x)?;
    let scale = sensitivity / eps.value();
    Ok(truth
        .into_iter()
        .zip(laplace_vec(rng, scale, w.len()))
        .map(|(t, n)| t + n)
        .collect())
}

/// Releases the noisy histogram `x + Lap(Δ/ε)^k` (the identity workload
/// fast path — Δ = 1 under unbounded DP).
pub fn laplace_histogram<R: Rng + ?Sized>(
    x: &[f64],
    sensitivity: f64,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, MechanismError> {
    if sensitivity <= 0.0 {
        return Err(MechanismError::InvalidParameter {
            what: "sensitivity must be positive",
        });
    }
    let scale = sensitivity / eps.value();
    Ok(x.iter()
        .zip(laplace_vec(rng, scale, x.len()))
        .map(|(t, n)| t + n)
        .collect())
}

/// The analytic data-independent error of the Laplace mechanism
/// (Theorem 2.1): total `2·q·Δ²/ε²`; divide by `q` for per-query error.
pub fn laplace_total_error(num_queries: usize, sensitivity: f64, eps: Epsilon) -> f64 {
    num_queries as f64 * laplace_variance(sensitivity / eps.value())
}

/// Per-query analytic error `2·Δ²/ε²`.
pub fn laplace_per_query_error(sensitivity: f64, eps: Epsilon) -> f64 {
    laplace_variance(sensitivity / eps.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::mse_per_query;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unbiased_and_correct_scale() {
        let k = 64;
        let x = vec![10.0; k];
        let w = Workload::identity(k);
        let eps = Epsilon::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 400;
        let mut total_sq = 0.0;
        for _ in 0..trials {
            let est = laplace_workload(&w, &x, 1.0, eps, &mut rng).unwrap();
            total_sq += mse_per_query(&w.answer(&x).unwrap(), &est).unwrap();
        }
        let measured = total_sq / trials as f64;
        let expected = laplace_per_query_error(1.0, eps); // 2/0.25 = 8
        assert!(
            (measured - expected).abs() / expected < 0.1,
            "measured {measured} vs expected {expected}"
        );
    }

    #[test]
    fn histogram_matches_workload_path() {
        // Same seed => identical noise for the identity workload.
        let x = vec![1.0, 2.0, 3.0];
        let eps = Epsilon::new(1.0).unwrap();
        let a = laplace_histogram(&x, 1.0, eps, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = laplace_workload(
            &Workload::identity(3),
            &x,
            1.0,
            eps,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_formula() {
        let eps = Epsilon::new(2.0).unwrap();
        // 2 q Δ²/ε² = 2·10·9/4
        assert!((laplace_total_error(10, 3.0, eps) - 45.0).abs() < 1e-12);
        assert!((laplace_per_query_error(3.0, eps) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_sensitivity() {
        let x = vec![1.0];
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(laplace_histogram(&x, 0.0, eps, &mut rng).is_err());
        assert!(laplace_workload(&Workload::identity(1), &x, -1.0, eps, &mut rng).is_err());
    }

    #[test]
    fn cumulative_workload_noise_scales_with_sensitivity() {
        // C_k has sensitivity k: with the correct calibration the noise is
        // k× larger per query than the identity's.
        let k = 16;
        let x = vec![0.0; k];
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 300;
        let mut id_err = 0.0;
        let mut cum_err = 0.0;
        for _ in 0..trials {
            let id = laplace_workload(&Workload::identity(k), &x, 1.0, eps, &mut rng).unwrap();
            let cum =
                laplace_workload(&Workload::cumulative(k), &x, k as f64, eps, &mut rng).unwrap();
            id_err += id.iter().map(|v| v * v).sum::<f64>();
            cum_err += cum.iter().map(|v| v * v).sum::<f64>();
        }
        // Ratio should be about k² (sensitivity enters squared).
        let ratio = cum_err / id_err;
        let expected = (k * k) as f64;
        assert!(
            ratio > expected * 0.7 && ratio < expected * 1.4,
            "ratio {ratio}, expected ≈ {expected}"
        );
    }
}
