//! Consistency post-processing (Hay et al. \[10\]; Section 5.4.2).
//!
//! Under a tree policy, the transformed database `x_G = P_G⁻¹x` consists of
//! prefix sums and is therefore *non-decreasing*. Post-processing the noisy
//! `x̃_G` onto the monotone cone — isotonic regression, computed by the
//! Pool-Adjacent-Violators algorithm — never hurts and dramatically helps
//! on sparse data, because equal adjacent prefix sums (zero cells) collapse
//! into pools whose error depends only on the number of *distinct* values.
//! This is the paper's `Transformed + ConsistentEst` estimator.

use crate::MechanismError;

/// L2 isotonic regression: the closest (in squared error) non-decreasing
/// sequence to `y`, via Pool-Adjacent-Violators in O(n).
pub fn isotonic_non_decreasing(y: &[f64]) -> Vec<f64> {
    // Each block pools a run of entries at their common mean.
    struct Block {
        sum: f64,
        count: usize,
    }
    let mut blocks: Vec<Block> = Vec::with_capacity(y.len());
    for &v in y {
        blocks.push(Block { sum: v, count: 1 });
        // Merge while the means are decreasing.
        while blocks.len() >= 2 {
            let last = blocks.len() - 1;
            let mean_last = blocks[last].sum / blocks[last].count as f64;
            let mean_prev = blocks[last - 1].sum / blocks[last - 1].count as f64;
            if mean_prev <= mean_last {
                break;
            }
            let b = blocks.pop().expect("non-empty");
            let p = blocks.last_mut().expect("non-empty");
            p.sum += b.sum;
            p.count += b.count;
        }
    }
    let mut out = Vec::with_capacity(y.len());
    for b in &blocks {
        let mean = b.sum / b.count as f64;
        out.extend(std::iter::repeat_n(mean, b.count));
    }
    out
}

/// L2 isotonic regression additionally clamped below at `floor` (prefix
/// sums are non-negative, so `floor = 0.0` is the common call).
pub fn isotonic_non_decreasing_with_floor(y: &[f64], floor: f64) -> Vec<f64> {
    isotonic_non_decreasing(y)
        .into_iter()
        .map(|v| v.max(floor))
        .collect()
}

/// Enforces the full prefix-sum structure on a noisy transformed database:
/// non-decreasing and bounded between 0 and the (public) total `n`.
pub fn consistent_prefix_estimate(noisy_prefix: &[f64], total: f64) -> Vec<f64> {
    isotonic_non_decreasing(noisy_prefix)
        .into_iter()
        .map(|v| v.clamp(0.0, total.max(0.0)))
        .collect()
}

/// Brute-force reference: projects onto the monotone cone by quadratic
/// search over pool boundaries. Exponential; only for cross-checking PAVA
/// on tiny inputs in tests.
#[doc(hidden)]
pub fn isotonic_brute_force(y: &[f64]) -> Result<Vec<f64>, MechanismError> {
    if y.len() > 12 {
        return Err(MechanismError::InvalidParameter {
            what: "brute-force isotonic limited to n <= 12",
        });
    }
    // Enumerate all partitions into contiguous pools via bitmask of
    // boundaries; each pool takes its mean; keep monotone-feasible best.
    let n = y.len();
    if n == 0 {
        return Ok(vec![]);
    }
    let mut best: Option<(f64, Vec<f64>)> = None;
    for mask in 0u32..(1 << (n - 1)) {
        let mut fit = Vec::with_capacity(n);
        let mut start = 0usize;
        let mut means = Vec::new();
        for i in 0..n {
            let boundary = i + 1 == n || mask & (1 << i) != 0;
            if boundary {
                let pool = &y[start..=i];
                means.push(pool.iter().sum::<f64>() / pool.len() as f64);
                start = i + 1;
            }
        }
        if means.windows(2).any(|w| w[0] > w[1] + 1e-12) {
            continue;
        }
        let mut idx = 0usize;
        let mut start = 0usize;
        for i in 0..n {
            let boundary = i + 1 == n || mask & (1 << i) != 0;
            fit.push(means[idx]);
            if boundary {
                idx += 1;
                start = i + 1;
            }
        }
        let _ = start;
        let cost: f64 = fit.iter().zip(y).map(|(f, v)| (f - v) * (f - v)).sum();
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, fit));
        }
    }
    Ok(best.expect("at least one partition exists").1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_monotone_unchanged() {
        let y = vec![1.0, 2.0, 2.0, 5.0];
        assert_eq!(isotonic_non_decreasing(&y), y);
    }

    #[test]
    fn simple_violation_pools() {
        let y = vec![3.0, 1.0];
        assert_eq!(isotonic_non_decreasing(&y), vec![2.0, 2.0]);
    }

    #[test]
    fn decreasing_input_becomes_constant_mean() {
        let y = vec![4.0, 3.0, 2.0, 1.0];
        let fit = isotonic_non_decreasing(&y);
        for v in &fit {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn output_is_monotone() {
        let y = vec![0.3, -1.0, 2.0, 1.5, 1.4, 8.0, 7.0];
        let fit = isotonic_non_decreasing(&y);
        for w in fit.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn matches_brute_force() {
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0, 3.0, 2.0],
            vec![5.0, 1.0, 4.0, 2.0],
            vec![2.0, 2.0, 1.0, 3.0, 0.0],
            vec![-1.0, -3.0, 2.0, 2.0, 1.0, 5.0],
        ];
        for y in cases {
            let pava = isotonic_non_decreasing(&y);
            let brute = isotonic_brute_force(&y).unwrap();
            for (a, b) in pava.iter().zip(&brute) {
                assert!((a - b).abs() < 1e-9, "{pava:?} vs {brute:?}");
            }
        }
    }

    #[test]
    fn projection_is_optimal_against_perturbations() {
        // The isotonic fit must beat any monotone perturbation of itself.
        let y = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        let fit = isotonic_non_decreasing(&y);
        let cost = |f: &[f64]| -> f64 { f.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum() };
        let base = cost(&fit);
        // Shift any single pool boundary value slightly (keeping
        // monotonicity) and verify no improvement.
        for i in 0..fit.len() {
            for delta in [-0.05, 0.05] {
                let mut alt = fit.clone();
                alt[i] += delta;
                let monotone = alt.windows(2).all(|w| w[0] <= w[1] + 1e-12);
                if monotone {
                    assert!(cost(&alt) >= base - 1e-9);
                }
            }
        }
    }

    #[test]
    fn floor_and_total_clamping() {
        let noisy = vec![-2.0, 1.0, 0.5, 9.0];
        let fit = consistent_prefix_estimate(&noisy, 5.0);
        assert!(fit[0] >= 0.0);
        assert!(fit.last().unwrap() <= &5.0);
        for w in fit.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let floored = isotonic_non_decreasing_with_floor(&[-1.0, -2.0], 0.0);
        assert_eq!(floored, vec![0.0, 0.0]);
    }

    #[test]
    fn sparse_prefix_sums_recovered_well() {
        // Prefix sums of a sparse histogram have long constant runs; after
        // noising, isotonic regression should recover them much better
        // than the raw noisy values.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let k = 256;
        let mut x = vec![0.0; k];
        x[10] = 40.0;
        x[200] = 25.0;
        let prefix: Vec<f64> = x
            .iter()
            .scan(0.0, |acc, v| {
                *acc += v;
                Some(*acc)
            })
            .collect();
        let eps = blowfish_core::Epsilon::new(0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut raw_err = 0.0;
        let mut iso_err = 0.0;
        for _ in 0..50 {
            let noisy = crate::laplace::laplace_histogram(&prefix, 1.0, eps, &mut rng).unwrap();
            let iso = isotonic_non_decreasing(&noisy);
            raw_err += noisy
                .iter()
                .zip(&prefix)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            iso_err += iso
                .iter()
                .zip(&prefix)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        assert!(
            iso_err < raw_err / 2.0,
            "isotonic {iso_err} vs raw {raw_err}"
        );
    }

    #[test]
    fn empty_input() {
        assert!(isotonic_non_decreasing(&[]).is_empty());
        assert!(isotonic_brute_force(&[]).unwrap().is_empty());
    }

    #[test]
    fn brute_force_size_guard() {
        assert!(isotonic_brute_force(&[0.0; 13]).is_err());
    }
}
