//! The Gaussian mechanism for (ε, δ)-differential privacy.
//!
//! Appendix A of the paper notes that transformational equivalence extends
//! verbatim to `(ε, δ, G)`-Blowfish privacy, and states the Li–Miklau SVD
//! lower bound (Corollary A.2) — a bound on the `(ε, δ)`-calibrated matrix
//! mechanism class. This module supplies that class's noise primitive: the
//! classic Gaussian mechanism with `σ = √(2·ln(1.25/δ))·Δ₂/ε` (valid for
//! ε ≤ 1), so the lower bound can be exercised against a mechanism it
//! actually applies to.

use rand::Rng;

use blowfish_core::{Delta, Epsilon};

use crate::MechanismError;

/// The Gaussian-mechanism noise scale `σ(ε, δ, Δ₂) = √(2 ln(1.25/δ))·Δ₂/ε`
/// (Dwork–Roth Theorem A.1; requires ε ≤ 1 for the classic analysis).
pub fn gaussian_sigma(
    l2_sensitivity: f64,
    eps: Epsilon,
    delta: Delta,
) -> Result<f64, MechanismError> {
    if l2_sensitivity <= 0.0 {
        return Err(MechanismError::InvalidParameter {
            what: "L2 sensitivity must be positive",
        });
    }
    if eps.value() > 1.0 {
        return Err(MechanismError::InvalidParameter {
            what: "classic Gaussian-mechanism calibration requires ε ≤ 1",
        });
    }
    Ok((2.0 * (1.25 / delta.value()).ln()).sqrt() * l2_sensitivity / eps.value())
}

/// One standard normal sample (Box–Muller; keeps deps at `rand`).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-300..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Adds `N(0, σ²)` noise to every entry, with σ calibrated for the given
/// L2 sensitivity and `(ε, δ)` target.
pub fn gaussian_histogram<R: Rng + ?Sized>(
    x: &[f64],
    l2_sensitivity: f64,
    eps: Epsilon,
    delta: Delta,
    rng: &mut R,
) -> Result<Vec<f64>, MechanismError> {
    let sigma = gaussian_sigma(l2_sensitivity, eps, delta)?;
    Ok(x.iter()
        .map(|&v| v + sigma * standard_normal(rng))
        .collect())
}

/// Analytic per-entry variance of the Gaussian mechanism: `σ²`.
pub fn gaussian_variance(
    l2_sensitivity: f64,
    eps: Epsilon,
    delta: Delta,
) -> Result<f64, MechanismError> {
    let s = gaussian_sigma(l2_sensitivity, eps, delta)?;
    Ok(s * s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ed() -> (Epsilon, Delta) {
        (Epsilon::new(0.5).unwrap(), Delta::new(1e-3).unwrap())
    }

    #[test]
    fn sigma_formula() {
        let (e, d) = ed();
        let s = gaussian_sigma(1.0, e, d).unwrap();
        let expected = (2.0_f64 * (1.25 / 1e-3_f64).ln()).sqrt() / 0.5;
        assert!((s - expected).abs() < 1e-12);
        // Scales linearly in Δ₂.
        let s3 = gaussian_sigma(3.0, e, d).unwrap();
        assert!((s3 - 3.0 * s).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        let (e, d) = ed();
        assert!(gaussian_sigma(0.0, e, d).is_err());
        let big = Epsilon::new(2.0).unwrap();
        assert!(gaussian_sigma(1.0, big, d).is_err());
    }

    #[test]
    fn noise_moments() {
        let (e, d) = ed();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let x = vec![0.0; n];
        let out = gaussian_histogram(&x, 1.0, e, d, &mut rng).unwrap();
        let mean = out.iter().sum::<f64>() / n as f64;
        let var = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let expected = gaussian_variance(1.0, e, d).unwrap();
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!(
            (var - expected).abs() / expected < 0.05,
            "variance {var} vs {expected}"
        );
    }

    #[test]
    fn normal_sampler_symmetry() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let pos = (0..n).filter(|_| standard_normal(&mut rng) > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01);
    }

    #[test]
    fn gaussian_beats_laplace_at_loose_delta_only_for_l2_heavy_workloads() {
        // Calibration sanity: Laplace var = 2/ε², Gaussian var =
        // 2 ln(1.25/δ)/ε² — the Gaussian per-coordinate noise is larger
        // for sensitivity-1 histograms (its win comes from L2 vs L1
        // composition, not from single queries).
        let (e, d) = ed();
        let g = gaussian_variance(1.0, e, d).unwrap();
        let l = crate::noise::laplace_variance(1.0 / e.value());
        assert!(g > l);
    }
}
