//! The hierarchical mechanism of Hay et al. \[10\].
//!
//! A binary interval tree over the domain: every node's count receives
//! `Lap(h/ε)` noise (`h` = number of levels = sensitivity, since one record
//! touches one node per level), then a weighted least-squares pass enforces
//! consistency (each parent equals the sum of its children). Consistent
//! leaf estimates answer any range query with `O(log³k/ε²)` error.
//!
//! This is the O(k log k) estimator counterpart of the explicit
//! [`crate::matrix::hierarchical_strategy`] matrix.

use rand::Rng;

use blowfish_core::Epsilon;

use crate::noise::laplace_vec;
use crate::MechanismError;

/// Releases a consistent noisy histogram via the binary hierarchical
/// mechanism under unbounded ε-DP (sensitivity = tree height).
///
/// The returned leaves answer range queries through prefix sums with the
/// classic polylogarithmic error.
pub fn hierarchical_histogram<R: Rng + ?Sized>(
    x: &[f64],
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, MechanismError> {
    if x.is_empty() {
        return Err(MechanismError::InvalidParameter {
            what: "empty histogram",
        });
    }
    let k = x.len();
    let n = k.next_power_of_two();
    let levels = n.trailing_zeros() as usize + 1; // root .. leaves
    let scale = levels as f64 / eps.value();

    // Perfect binary tree in heap layout: node 1 is the root, nodes
    // n..2n are leaves. true_count[v] = sum of x over v's leaf interval.
    let mut tree = vec![0.0; 2 * n];
    tree[n..n + k].copy_from_slice(x);
    for v in (1..n).rev() {
        tree[v] = tree[2 * v] + tree[2 * v + 1];
    }
    // Noisy observations.
    let noise = laplace_vec(rng, scale, 2 * n - 1);
    let mut noisy = vec![0.0; 2 * n];
    for v in 1..2 * n {
        noisy[v] = tree[v] + noise[v - 1];
    }

    // Bottom-up weighted combination (Hay et al. §4.1): for a node at
    // height ℓ (leaves at ℓ=0),
    //   z_v = α_ℓ · ỹ_v + (1 − α_ℓ)(z_left + z_right),
    //   α_ℓ = (4^ℓ − 2^ℓ) / (4^ℓ − 1).
    let mut z = noisy.clone();
    let mut height = 1usize;
    let mut level_start = n / 2; // first node index of this height
    while level_start >= 1 {
        let pow2 = (1u64 << height) as f64;
        let pow4 = pow2 * pow2;
        let alpha = (pow4 - pow2) / (pow4 - 1.0);
        for v in level_start..(2 * level_start) {
            z[v] = alpha * noisy[v] + (1.0 - alpha) * (z[2 * v] + z[2 * v + 1]);
        }
        height += 1;
        level_start /= 2;
    }

    // Top-down consistency: distribute each node's discrepancy equally
    // between its children.
    let mut h = vec![0.0; 2 * n];
    h[1] = z[1];
    for v in 1..n {
        let adjust = (h[v] - z[2 * v] - z[2 * v + 1]) / 2.0;
        h[2 * v] = z[2 * v] + adjust;
        h[2 * v + 1] = z[2 * v + 1] + adjust;
    }

    Ok(h[n..n + k].to_vec())
}

/// Analytic per-range-query error order for the hierarchical mechanism:
/// `O(log³k / ε²)` (a range decomposes into ≤ 2·log k node counts, each
/// with variance `2·(log k / ε)²`). Returned as the explicit constant-free
/// product used for shape checks.
pub fn hierarchical_range_error_order(k: usize, eps: Epsilon) -> f64 {
    let logk = (k.next_power_of_two().trailing_zeros() as f64 + 1.0).max(1.0);
    logk.powi(3) / (eps.value() * eps.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn consistent_estimates_are_unbiased() {
        let k = 32;
        let x: Vec<f64> = (0..k).map(|i| (i % 5) as f64).collect();
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 400;
        let mut mean = vec![0.0; k];
        for _ in 0..trials {
            let est = hierarchical_histogram(&x, eps, &mut rng).unwrap();
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        // The estimator is linear in the noise, hence exactly unbiased;
        // check the *average* absolute deviation of the empirical means
        // (robust to the occasional 3σ leaf over 32 simultaneous tests).
        let avg_dev: f64 = mean
            .iter()
            .enumerate()
            .map(|(i, m)| (m / trials as f64 - x[i]).abs())
            .sum::<f64>()
            / k as f64;
        assert!(avg_dev < 0.4, "average leaf bias {avg_dev} too large");
    }

    #[test]
    fn range_error_beats_plain_prefix_sum_of_laplace() {
        // For wide ranges, the hierarchy's polylog error must beat summing
        // k independent Laplace leaves (error Θ(k)).
        let k = 256;
        let x = vec![1.0; k];
        let eps = Epsilon::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let truth: f64 = x.iter().sum();
        let trials = 200;
        let mut hier_sq = 0.0;
        let mut flat_sq = 0.0;
        for _ in 0..trials {
            let est = hierarchical_histogram(&x, eps, &mut rng).unwrap();
            let full: f64 = est.iter().sum();
            hier_sq += (full - truth) * (full - truth);
            let flat = crate::laplace::laplace_histogram(&x, 1.0, eps, &mut rng).unwrap();
            let flat_full: f64 = flat.iter().sum();
            flat_sq += (flat_full - truth) * (flat_full - truth);
        }
        assert!(
            hier_sq < flat_sq / 2.0,
            "hierarchical {hier_sq} not better than flat {flat_sq}"
        );
    }

    #[test]
    fn handles_non_power_of_two() {
        let x = vec![5.0; 10];
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let est = hierarchical_histogram(&x, eps, &mut rng).unwrap();
        assert_eq!(est.len(), 10);
    }

    #[test]
    fn rejects_empty() {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(hierarchical_histogram(&[], eps, &mut rng).is_err());
    }

    #[test]
    fn error_order_monotone() {
        let eps = Epsilon::new(1.0).unwrap();
        assert!(
            hierarchical_range_error_order(1024, eps) > hierarchical_range_error_order(64, eps)
        );
    }

    #[test]
    fn single_cell_domain() {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let est = hierarchical_histogram(&[7.0], eps, &mut rng).unwrap();
        assert_eq!(est.len(), 1);
        // Only one level: noise scale 1/ε, so the estimate is close-ish.
        assert!((est[0] - 7.0).abs() < 30.0);
    }
}
