//! The matrix mechanism over CSR strategies: apply `A⁺`, never store it.
//!
//! The dense [`MatrixMechanism`](crate::MatrixMechanism) materializes the
//! k×k reconstruction `W A⁺`, which caps planning near k≈512: at
//! k = 65 536 that object alone is 32 GiB. But every strategy the paper
//! plans with — identity, binary hierarchical, Haar — is O(k log k)
//! sparse, and for a full-column-rank strategy the pseudoinverse
//! *application* factors as `A⁺ ỹ = (AᵀA)⁻¹ Aᵀ ỹ`: a normal-equation
//! solve. [`SparseMatrixMechanism`] keeps `W` and `A` in CSR and runs one
//! Jacobi-preconditioned CG solve per release
//! ([`blowfish_linalg::solve_normal_equations`], matrix-free — `AᵀA` of a
//! hierarchical strategy is dense and is never formed), so peak memory is
//! O(nnz) and the domain ceiling lifts to k≈10⁵.
//!
//! The sparse strategy constructors ([`hierarchical_strategy_sparse`]
//! et al.) emit *exactly* the rows of their dense counterparts, in the
//! same order. That makes the two mechanisms draw identical Laplace noise
//! from the same seed — so sparse and dense releases agree to solver
//! tolerance (≤1e-9 relative with `tol = 1e-12`), which the equivalence
//! tests pin.

use rand::Rng;

use blowfish_linalg::{
    solve_gram_system, solve_normal_equations, CgOptions, LinalgError, PinvMethod, SparseMatrix,
    TripletBuilder,
};

use blowfish_core::Epsilon;

use crate::noise::{laplace_variance, laplace_vec};
use crate::MechanismError;

/// How a matrix mechanism applies the strategy pseudoinverse per release.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinvApply {
    /// `W A⁺` was materialized dense up front (the k≲512 path); the tag
    /// records which factorization derived it.
    Materialized(PinvMethod),
    /// `A⁺ ỹ` is computed per release by matrix-free normal-equation CG
    /// (the O(nnz) path).
    IterativeCg,
}

impl std::fmt::Display for PinvApply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinvApply::Materialized(m) => write!(f, "materialized ({m:?})"),
            PinvApply::IterativeCg => write!(f, "iterative-cg"),
        }
    }
}

/// A matrix mechanism whose workload and strategy stay in CSR form and
/// whose pseudoinverse is applied per release by preconditioned CG.
///
/// Requires the strategy to have full column rank (every strategy the
/// engine plans with does) — that is what collapses the support condition
/// `W A⁺ A = W` to the left-inverse identity `A⁺A = I`, verified here by
/// seeded round-trip probes exactly as the dense path does.
#[derive(Debug)]
pub struct SparseMatrixMechanism {
    w: SparseMatrix,
    strategy: SparseMatrix,
    delta_a: f64,
    opts: CgOptions,
    solves: std::sync::atomic::AtomicUsize,
    cg_iterations: std::sync::atomic::AtomicUsize,
}

impl SparseMatrixMechanism {
    /// Prepares the mechanism with the default solver options
    /// (`tol = 1e-12`: releases agree with the dense reconstruction to
    /// ≤1e-9 relative).
    pub fn new(w: SparseMatrix, strategy: SparseMatrix) -> Result<Self, MechanismError> {
        SparseMatrixMechanism::with_options(
            w,
            strategy,
            CgOptions {
                tol: 1e-12,
                max_iter: 0,
            },
        )
    }

    /// Prepares the mechanism with explicit solver options, verifying
    /// shapes, sensitivity, and the left-inverse identity `A⁺A v = v` on
    /// seeded probes. A structurally or numerically column-rank-deficient
    /// strategy is rejected as
    /// [`MechanismError::StrategyDoesNotSupportWorkload`]; a solver that
    /// runs out of iterations bubbles the typed
    /// [`LinalgError::NoConvergence`].
    pub fn with_options(
        w: SparseMatrix,
        strategy: SparseMatrix,
        opts: CgOptions,
    ) -> Result<Self, MechanismError> {
        if w.cols() != strategy.cols() {
            return Err(MechanismError::InvalidParameter {
                what: "workload and strategy must share the domain size",
            });
        }
        let delta_a = strategy.max_col_l1();
        if delta_a <= 0.0 {
            return Err(MechanismError::InvalidParameter {
                what: "strategy has zero sensitivity (all-zero matrix)",
            });
        }
        if !probe_round_trip_holds(&strategy, opts)? {
            return Err(MechanismError::StrategyDoesNotSupportWorkload);
        }
        Ok(SparseMatrixMechanism {
            w,
            strategy,
            delta_a,
            opts,
            solves: std::sync::atomic::AtomicUsize::new(0),
            cg_iterations: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// The workload `W`.
    pub fn workload(&self) -> &SparseMatrix {
        &self.w
    }

    /// The strategy `A`.
    pub fn strategy(&self) -> &SparseMatrix {
        &self.strategy
    }

    /// The strategy sensitivity `Δ_A`.
    pub fn delta_a(&self) -> f64 {
        self.delta_a
    }

    /// How this mechanism applies `A⁺` (always [`PinvApply::IterativeCg`];
    /// the accessor mirrors the dense mechanism's for uniform reporting).
    pub fn apply_method(&self) -> PinvApply {
        PinvApply::IterativeCg
    }

    /// Normal-equation solves performed so far (one per release plus the
    /// construction probes).
    pub fn solve_count(&self) -> usize {
        self.solves.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total CG iterations across those solves — ~log₂ k per solve on
    /// hierarchical strategies, the observable that makes per-release CG
    /// affordable at k = 65 536.
    pub fn cg_iterations(&self) -> usize {
        self.cg_iterations
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn apply_pinv(&self, y: &[f64]) -> Result<Vec<f64>, MechanismError> {
        let sol = solve_normal_equations(&self.strategy, y, self.opts).map_err(lift_rank_error)?;
        self.solves
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.cg_iterations
            .fetch_add(sol.iterations, std::sync::atomic::Ordering::Relaxed);
        Ok(sol.x)
    }

    /// Runs the mechanism: `Wx + W A⁺ Lap(Δ_A/ε)^p`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, MechanismError> {
        let truth = self.w.matvec(x)?;
        let noise = self.noise_only(eps, rng)?;
        Ok(truth.iter().zip(&noise).map(|(t, n)| t + n).collect())
    }

    /// Draws only the reconstructed noise vector `W A⁺ Lap(Δ_A/ε)^p`.
    ///
    /// The Laplace draw count and order match the dense mechanism's
    /// (`strategy.rows()` samples), so from equal seeds the two paths
    /// produce the same release up to solver tolerance.
    pub fn noise_only<R: Rng + ?Sized>(
        &self,
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, MechanismError> {
        let scale = self.delta_a / eps.value();
        let raw = laplace_vec(rng, scale, self.strategy.rows());
        let z = self.apply_pinv(&raw)?;
        Ok(self.w.matvec(&z)?)
    }

    /// Expected squared error of query `i`:
    /// `2 (Δ_A/ε)² ‖A (AᵀA)⁻¹ wᵢ‖₂²` — one CG solve per call (the dense
    /// path reads a precomputed row instead; use it when error reports
    /// over large workloads dominate).
    pub fn query_error(&self, i: usize, eps: Epsilon) -> Result<f64, MechanismError> {
        let mut wi = vec![0.0; self.w.cols()];
        for (j, v) in self.w.row(i) {
            wi[j] = v;
        }
        let u = solve_gram_system(&self.strategy, &wi, self.opts).map_err(lift_rank_error)?;
        let au = self.strategy.matvec(&u.x)?;
        let sq: f64 = au.iter().map(|v| v * v).sum();
        Ok(laplace_variance(self.delta_a / eps.value()) * sq)
    }

    /// Expected total squared error over all queries — `W.rows()` CG
    /// solves; intended for offline reporting, not the serving path.
    pub fn total_error(&self, eps: Epsilon) -> Result<f64, MechanismError> {
        let mut acc = 0.0;
        for i in 0..self.w.rows() {
            acc += self.query_error(i, eps)?;
        }
        Ok(acc)
    }
}

/// A rank-deficient strategy surfaces from CG as `NotPositiveDefinite`;
/// the mechanism layer reports that the same way the dense path reports a
/// failed support check. Anything else (non-convergence, shapes) stays a
/// typed linalg error.
fn lift_rank_error(e: LinalgError) -> MechanismError {
    match e {
        LinalgError::NotPositiveDefinite { .. } => MechanismError::StrategyDoesNotSupportWorkload,
        other => MechanismError::Linalg(other),
    }
}

/// Verifies `A⁺A v = v` on seeded pseudo-random probes via round-trip
/// solves, mirroring the dense path's `left_inverse_probe_holds` (same
/// probe count, distribution, and tolerance rationale).
fn probe_round_trip_holds(a: &SparseMatrix, opts: CgOptions) -> Result<bool, MechanismError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let n = a.cols();
    let mut rng = StdRng::seed_from_u64(0x5EED_1DE4);
    for _ in 0..3 {
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let av = a.matvec(&v)?;
        let back = solve_normal_equations(a, &av, opts).map_err(lift_rank_error)?;
        let scale = 1.0 + v.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
        if back
            .x
            .iter()
            .zip(&v)
            .any(|(b, x)| (b - x).abs() > 1e-8 * scale)
        {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The identity strategy `A = I_k` in CSR form.
pub fn identity_strategy_sparse(k: usize) -> SparseMatrix {
    SparseMatrix::identity(k)
}

/// The binary hierarchical strategy `H_k` in CSR form — row-for-row
/// identical to [`crate::hierarchical_strategy`], at O(k log k) nonzeros
/// instead of O(k²·log k) dense cells.
pub fn hierarchical_strategy_sparse(k: usize) -> SparseMatrix {
    let padded = k.next_power_of_two();
    let mut triplets: Vec<(usize, usize)> = Vec::new();
    let mut row = 0usize;
    let mut size = padded;
    loop {
        let mut start = 0;
        while start < padded {
            let lo = start.min(k);
            let hi = (start + size).min(k);
            if lo < hi {
                // Non-empty after clipping padding: this row exists.
                for j in lo..hi {
                    triplets.push((row, j));
                }
                row += 1;
            }
            start += size;
        }
        if size == 1 {
            break;
        }
        size /= 2;
    }
    let mut b = TripletBuilder::new(row, k);
    for (r, j) in triplets {
        b.push(r, j, 1.0);
    }
    b.build()
}

/// The Haar wavelet strategy `Y_k` in CSR form — row-for-row identical to
/// [`crate::wavelet_strategy`].
pub fn wavelet_strategy_sparse(k: usize) -> SparseMatrix {
    let padded = k.next_power_of_two();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    let mut row = 0usize;
    // Total-average row.
    for j in 0..k {
        triplets.push((row, j, 1.0));
    }
    row += 1;
    let mut size = padded;
    while size >= 2 {
        let half = size / 2;
        let mut start = 0;
        while start < padded {
            let plo = start.min(k);
            let phi = (start + half).min(k);
            let nlo = (start + half).min(k);
            let nhi = (start + size).min(k);
            if plo < phi || nlo < nhi {
                for j in plo..phi {
                    triplets.push((row, j, 1.0));
                }
                for j in nlo..nhi {
                    triplets.push((row, j, -1.0));
                }
                row += 1;
            }
            start += size;
        }
        size /= 2;
    }
    let mut b = TripletBuilder::new(row, k);
    for (r, j, v) in triplets {
        b.push(r, j, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{hierarchical_strategy, identity_strategy, wavelet_strategy};
    use crate::MatrixMechanism;
    use blowfish_core::Workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sparse_strategies_match_dense_row_for_row() {
        for k in [1, 2, 3, 5, 6, 7, 8, 13, 16, 21, 32, 37] {
            let hd = hierarchical_strategy(k);
            let hs = hierarchical_strategy_sparse(k);
            assert_eq!(hs.rows(), hd.rows(), "hierarchical rows at k={k}");
            assert!(
                hs.to_dense().approx_eq(&hd, 0.0),
                "hierarchical mismatch at k={k}"
            );
            let wd = wavelet_strategy(k);
            let ws = wavelet_strategy_sparse(k);
            assert_eq!(ws.rows(), wd.rows(), "wavelet rows at k={k}");
            assert!(
                ws.to_dense().approx_eq(&wd, 0.0),
                "wavelet mismatch at k={k}"
            );
            assert!(identity_strategy_sparse(k)
                .to_dense()
                .approx_eq(&identity_strategy(k), 0.0));
        }
    }

    #[test]
    fn hierarchical_sparse_is_k_log_k() {
        let k = 1024;
        let h = hierarchical_strategy_sparse(k);
        // Each of the k columns appears once per level: height = log2(k)+1.
        assert_eq!(h.nnz(), k * 11);
        assert_eq!(h.max_col_l1(), 11.0);
    }

    #[test]
    fn sparse_release_matches_dense_release_from_equal_seeds() {
        let eps = Epsilon::new(0.7).unwrap();
        for k in [8usize, 16, 30] {
            let w = Workload::all_ranges_1d(k);
            let dense =
                MatrixMechanism::new(w.to_dense_matrix(), hierarchical_strategy(k)).unwrap();
            let sparse =
                SparseMatrixMechanism::new(w.to_sparse_matrix(), hierarchical_strategy_sparse(k))
                    .unwrap();
            let x: Vec<f64> = (0..k).map(|i| (i * 3 % 7) as f64).collect();
            let rd = dense.run(&x, eps, &mut StdRng::seed_from_u64(42)).unwrap();
            let rs = sparse.run(&x, eps, &mut StdRng::seed_from_u64(42)).unwrap();
            for (d, s) in rd.iter().zip(&rs) {
                assert!((d - s).abs() <= 1e-9 * (1.0 + d.abs()), "k={k}: {d} vs {s}");
            }
            assert_eq!(sparse.apply_method(), PinvApply::IterativeCg);
            assert!(sparse.solve_count() >= 1);
            // Clustered spectrum: the release solve stays ~log k iterations.
            assert!(sparse.cg_iterations() <= 30 * sparse.solve_count());
        }
    }

    #[test]
    fn sparse_error_formulas_match_dense() {
        let k = 16;
        let eps = Epsilon::new(1.0).unwrap();
        let w = Workload::all_ranges_1d(k);
        let dense = MatrixMechanism::new(w.to_dense_matrix(), hierarchical_strategy(k)).unwrap();
        let sparse =
            SparseMatrixMechanism::new(w.to_sparse_matrix(), hierarchical_strategy_sparse(k))
                .unwrap();
        for i in [0usize, 3, w.len() - 1] {
            let d = dense.query_error(i, eps);
            let s = sparse.query_error(i, eps).unwrap();
            assert!((d - s).abs() <= 1e-8 * (1.0 + d), "query {i}: {d} vs {s}");
        }
        let dt = dense.total_error(eps);
        let st = sparse.total_error(eps).unwrap();
        assert!((dt - st).abs() <= 1e-7 * (1.0 + dt), "{dt} vs {st}");
    }

    #[test]
    fn rank_deficient_strategy_is_rejected_typed() {
        // A strategy with an empty column cannot left-invert.
        let mut b = TripletBuilder::new(2, 3);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        let a = b.build();
        let res = SparseMatrixMechanism::new(SparseMatrix::identity(3), a);
        assert!(matches!(
            res,
            Err(MechanismError::StrategyDoesNotSupportWorkload)
        ));
        // Duplicated column: numerically rank deficient, same rejection.
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        b.push(1, 1, 1.0);
        let res = SparseMatrixMechanism::new(SparseMatrix::identity(2), b.build());
        assert!(res.is_err());
    }

    #[test]
    fn shape_and_sensitivity_validation() {
        let a = identity_strategy_sparse(4);
        assert!(matches!(
            SparseMatrixMechanism::new(SparseMatrix::identity(3), a.clone()),
            Err(MechanismError::InvalidParameter { .. })
        ));
        assert!(matches!(
            SparseMatrixMechanism::new(SparseMatrix::identity(4), SparseMatrix::zeros(2, 4)),
            Err(MechanismError::InvalidParameter { .. })
        ));
        let mm = SparseMatrixMechanism::new(SparseMatrix::identity(4), a).unwrap();
        assert_eq!(mm.delta_a(), 1.0);
        assert_eq!(mm.workload().rows(), 4);
        assert_eq!(mm.strategy().cols(), 4);
        assert!(mm.apply_method().to_string().contains("cg"));
    }
}
