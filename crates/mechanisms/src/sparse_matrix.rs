//! The matrix mechanism over CSR strategies: apply `A⁺`, never store it.
//!
//! The dense [`MatrixMechanism`](crate::MatrixMechanism) materializes the
//! k×k reconstruction `W A⁺`, which caps planning near k≈512: at
//! k = 65 536 that object alone is 32 GiB. But every strategy the paper
//! plans with — identity, binary hierarchical, Haar — is O(k log k)
//! sparse, and for a full-column-rank strategy the pseudoinverse
//! *application* factors as `A⁺ ỹ = (AᵀA)⁻¹ Aᵀ ỹ`: a normal-equation
//! solve. [`SparseMatrixMechanism`] keeps `W` and `A` in CSR and runs one
//! Jacobi-preconditioned CG solve per release
//! ([`blowfish_linalg::solve_normal_equations`], matrix-free — `AᵀA` of a
//! hierarchical strategy is dense and is never formed), so peak memory is
//! O(nnz) and the domain ceiling lifts to k≈10⁵.
//!
//! The sparse strategy constructors ([`hierarchical_strategy_sparse`]
//! et al.) emit *exactly* the rows of their dense counterparts, in the
//! same order. That makes the two mechanisms draw identical Laplace noise
//! from the same seed — so sparse and dense releases agree to solver
//! tolerance (≤1e-9 relative with `tol = 1e-12`), which the equivalence
//! tests pin.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rand::Rng;

use blowfish_linalg::{
    dyadic_haar_basis, incomplete_cholesky0, solve_gram_system_with, CgOptions, CgWorkspace,
    CholeskyOrdering, GramPreconditioner, LinalgError, PinvMethod, SparseCholesky, SparseMatrix,
    SymbolicCholesky, TripletBuilder,
};

use blowfish_core::Epsilon;

use crate::noise::{laplace_variance, laplace_vec};
use crate::MechanismError;

/// How a matrix mechanism applies the strategy pseudoinverse per release.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinvApply {
    /// `W A⁺` was materialized dense up front (the k≲512 path); the tag
    /// records which factorization derived it.
    Materialized(PinvMethod),
    /// `A⁺ ỹ` is computed per release by matrix-free normal-equation CG
    /// (the O(nnz) path).
    IterativeCg,
    /// `AᵀA` (possibly after a Haar-basis rotation) was factored once by
    /// sparse Cholesky at plan time; each release is two O(nnz(L))
    /// triangular solves.
    Factored,
}

impl std::fmt::Display for PinvApply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinvApply::Materialized(m) => write!(f, "materialized ({m:?})"),
            PinvApply::IterativeCg => write!(f, "iterative-cg"),
            PinvApply::Factored => write!(f, "factored-cholesky"),
        }
    }
}

/// Gram-formability budget: `AᵀA` is only formed when its
/// O(Σᵢ nnz(rowᵢ)²) accumulation cost stays within
/// `GRAM_COST_FACTOR · (nnz(A) + k)` — a constant number of strategy
/// sweeps. Hierarchical/wavelet strategies blow this at large k (their
/// coarse rows make `AᵀA` structurally dense), which routes them to the
/// Haar-rotation branch instead of a doomed Gram product.
pub const GRAM_COST_FACTOR: usize = 32;

/// Factor-fill budget: a complete factorization is kept only while the
/// **symbolic** pass predicts `nnz(L) ≤ FILL_GROWTH_FACTOR ·
/// nnz(lower(G))`. Past that the factor would break the O(nnz) memory
/// story, so the solver downgrades to IC(0)-preconditioned CG (and to
/// plain Jacobi CG if IC(0) breaks down) — no input ever regresses past
/// the pre-factorization path.
pub const FILL_GROWTH_FACTOR: usize = 8;

/// Reusable per-solve scratch: the CG workspace plus two column-space
/// buffers for the factored path. Lives behind a `try_lock` so
/// concurrent releases never serialize — a contended solve just runs
/// with a fresh (allocating) scratch.
#[derive(Debug, Default)]
struct SolveScratch {
    ws: CgWorkspace,
    a: Vec<f64>,
    b: Vec<f64>,
}

fn ensure_len(buf: &mut Vec<f64>, len: usize) {
    if buf.len() != len {
        buf.clear();
        buf.resize(len, 0.0);
    }
}

#[derive(Debug)]
enum GramPath {
    /// `P G Pᵀ = L Lᵀ` held ready; `basis = Some(Q)` means the factored
    /// operator is `(AQ)ᵀ(AQ)` and solves run through the congruence
    /// `x = Q z`, `(AQ)ᵀ(AQ) z = Qᵀ b`.
    Factored {
        basis: Option<SparseMatrix>,
        chol: SparseCholesky,
    },
    /// Matrix-free PCG with a plan-time-cached Jacobi diagonal, upgraded
    /// to an IC(0) preconditioner when one was within budget.
    Cg {
        diag: Vec<f64>,
        precond: Option<SparseCholesky>,
    },
}

/// The plan-time solver for one strategy's normal equations
/// `AᵀA x = b` — the shareable, factor-once artifact behind
/// [`PinvApply::Factored`]. Decides its own path by budget cascade:
///
/// 1. **Direct factor** — if `AᵀA` is affordable to form
///    ([`GRAM_COST_FACTOR`]) and its symbolic fill is within
///    [`FILL_GROWTH_FACTOR`], factor it once (Auto ordering).
/// 2. **Rotated factor** — otherwise rotate by the orthonormal
///    [`dyadic_haar_basis`]: `B = AQ` is O(log k)-per-row sparse for
///    dyadic strategies and `BᵀB` has chordal tree-ancestor sparsity
///    with zero fill in its natural order, so the same budgets now pass
///    at k = 65 536.
/// 3. **IC(0) PCG** — Gram formable but fill over budget: keep the
///    no-fill incomplete factor as a CG preconditioner.
/// 4. **Jacobi PCG** — anything else (including IC(0) breakdown):
///    exactly the pre-factorization path, so nothing regresses.
#[derive(Debug)]
pub struct GramSolver {
    path: GramPath,
    opts: CgOptions,
}

impl GramSolver {
    /// Plans the solver for `strategy` by the budget cascade above.
    /// Never fails: every rejected branch falls through to Jacobi PCG.
    pub fn plan(strategy: &SparseMatrix, opts: CgOptions) -> GramSolver {
        let k = strategy.cols();
        let gram_cost = |m: &SparseMatrix| -> usize {
            (0..m.rows())
                .map(|i| {
                    let c = m.row_nnz(i);
                    c.saturating_mul(c)
                })
                .fold(0usize, usize::saturating_add)
        };
        let budget = |m: &SparseMatrix| GRAM_COST_FACTOR.saturating_mul(m.nnz() + k);

        if gram_cost(strategy) <= budget(strategy) {
            if let Ok(g) = strategy.transpose().matmul(strategy) {
                match Self::factor_within_fill_budget(&g) {
                    Ok(chol) => {
                        return GramSolver {
                            path: GramPath::Factored { basis: None, chol },
                            opts,
                        }
                    }
                    Err(LinalgError::FillBudgetExceeded { .. }) => {
                        // Gram formable, factor too filled: IC(0) PCG,
                        // with typed breakdown falling through to Jacobi.
                        if let Ok(pc) = incomplete_cholesky0(&g) {
                            return GramSolver {
                                path: GramPath::Cg {
                                    diag: strategy.col_sq_norms(),
                                    precond: Some(pc),
                                },
                                opts,
                            };
                        }
                    }
                    // Rank deficiency etc.: let the CG path (and the
                    // construction probes) pass judgment.
                    Err(_) => {}
                }
            }
            return Self::plan_cg(strategy, opts);
        }

        // Gram too dense to form: try the Haar congruence. The sparse
        // product `AQ` leaves ~1e-13 rounding residue at entries the
        // wavelet cancellation makes mathematically zero; dropped here
        // (the smallest true entry of a dyadic rotation is ≥ 1/(2√k),
        // many orders above the prune line), because the residue would
        // densify `BᵀB` and break its chordal zero-fill pattern. The
        // construction probes vet the pruned operator numerically
        // before it can serve a release.
        let q = dyadic_haar_basis(k);
        if let Ok(b) = strategy.matmul(&q).map(|b| {
            let tol = b.max_abs() * 1e-10;
            b.dropping_below(tol)
        }) {
            if gram_cost(&b) <= budget(&b) {
                if let Ok(g) = b.transpose().matmul(&b) {
                    if let Ok(chol) = Self::factor_within_fill_budget(&g) {
                        return GramSolver {
                            path: GramPath::Factored {
                                basis: Some(q),
                                chol,
                            },
                            opts,
                        };
                    }
                }
            }
        }
        Self::plan_cg(strategy, opts)
    }

    /// The pre-factorization solver, unconditionally: Jacobi PCG with a
    /// plan-time-cached diagonal. Public so equivalence tests and
    /// benches can pin the factored path against the CG path on the
    /// same strategy.
    pub fn plan_cg(strategy: &SparseMatrix, opts: CgOptions) -> GramSolver {
        GramSolver {
            path: GramPath::Cg {
                diag: strategy.col_sq_norms(),
                precond: None,
            },
            opts,
        }
    }

    fn factor_within_fill_budget(g: &SparseMatrix) -> Result<SparseCholesky, LinalgError> {
        let lower = (g.nnz() + g.rows()) / 2;
        let cap = FILL_GROWTH_FACTOR.saturating_mul(lower.max(g.rows()));
        let sym = SymbolicCholesky::analyze(g, CholeskyOrdering::Auto, Some(cap))?;
        sym.factorize(g)
    }

    /// Whether this solver serves releases from a cached factorization.
    pub fn is_factored(&self) -> bool {
        matches!(self.path, GramPath::Factored { .. })
    }

    /// Whether the factorization runs through the Haar congruence.
    pub fn rotated(&self) -> bool {
        matches!(self.path, GramPath::Factored { basis: Some(_), .. })
    }

    /// Whether the CG path carries an IC(0) preconditioner.
    pub fn uses_ic0(&self) -> bool {
        matches!(
            self.path,
            GramPath::Cg {
                precond: Some(_),
                ..
            }
        )
    }

    /// Stored nonzeros of the cached factor, when one exists.
    pub fn factor_nnz(&self) -> Option<usize> {
        match &self.path {
            GramPath::Factored { chol, .. } => Some(chol.nnz()),
            GramPath::Cg { .. } => None,
        }
    }

    /// How a mechanism holding this solver reports its apply path.
    pub fn apply_method(&self) -> PinvApply {
        if self.is_factored() {
            PinvApply::Factored
        } else {
            PinvApply::IterativeCg
        }
    }

    /// Solves `AᵀA x = b` (column space). Returns the solution and the
    /// CG iterations spent (0 on the factored path).
    fn solve_gram(
        &self,
        strategy: &SparseMatrix,
        b: &[f64],
        scratch: &mut SolveScratch,
    ) -> Result<(Vec<f64>, usize), LinalgError> {
        match &self.path {
            GramPath::Factored { basis: None, chol } => {
                let mut out = b.to_vec();
                ensure_len(&mut scratch.a, chol.n());
                chol.solve_in_place(&mut out, &mut scratch.a);
                Ok((out, 0))
            }
            GramPath::Factored {
                basis: Some(q),
                chol,
            } => {
                ensure_len(&mut scratch.a, q.cols());
                ensure_len(&mut scratch.b, q.cols());
                q.matvec_transpose_into(b, &mut scratch.a)?;
                chol.solve_in_place(&mut scratch.a, &mut scratch.b);
                Ok((q.matvec(&scratch.a)?, 0))
            }
            GramPath::Cg { diag, precond } => {
                let pc = match precond {
                    Some(c) => GramPreconditioner::Ic0(c),
                    None => GramPreconditioner::JacobiWith(diag),
                };
                let sol = solve_gram_system_with(strategy, b, self.opts, pc, &mut scratch.ws)?;
                Ok((sol.x, sol.iterations))
            }
        }
    }
}

/// A matrix mechanism whose workload and strategy stay in CSR form and
/// whose pseudoinverse is applied per release by preconditioned CG.
///
/// Requires the strategy to have full column rank (every strategy the
/// engine plans with does) — that is what collapses the support condition
/// `W A⁺ A = W` to the left-inverse identity `A⁺A = I`, verified here by
/// seeded round-trip probes exactly as the dense path does.
#[derive(Debug)]
pub struct SparseMatrixMechanism {
    w: SparseMatrix,
    strategy: SparseMatrix,
    delta_a: f64,
    solver: Arc<GramSolver>,
    scratch: Mutex<SolveScratch>,
    solves: AtomicUsize,
    cg_iterations: AtomicUsize,
}

impl SparseMatrixMechanism {
    /// The default solver options (`tol = 1e-12`: releases agree with
    /// the dense reconstruction to ≤1e-9 relative).
    pub const DEFAULT_CG_OPTIONS: CgOptions = CgOptions {
        tol: 1e-12,
        max_iter: 0,
    };

    /// Prepares the mechanism with [`Self::DEFAULT_CG_OPTIONS`].
    pub fn new(w: SparseMatrix, strategy: SparseMatrix) -> Result<Self, MechanismError> {
        SparseMatrixMechanism::with_options(w, strategy, Self::DEFAULT_CG_OPTIONS)
    }

    /// Prepares the mechanism with explicit solver options, planning the
    /// normal-equation solver by the [`GramSolver`] budget cascade —
    /// factor `AᵀA` once here, serve every release from triangular
    /// solves — and verifying shapes, sensitivity, and the left-inverse
    /// identity `A⁺A v = v` on seeded probes **through the planned
    /// path** (so a numerically unsound factor is caught at build time).
    /// A structurally or numerically column-rank-deficient strategy is
    /// rejected as [`MechanismError::StrategyDoesNotSupportWorkload`]; a
    /// solver that runs out of iterations bubbles the typed
    /// [`LinalgError::NoConvergence`].
    pub fn with_options(
        w: SparseMatrix,
        strategy: SparseMatrix,
        opts: CgOptions,
    ) -> Result<Self, MechanismError> {
        let solver = Arc::new(GramSolver::plan(&strategy, opts));
        SparseMatrixMechanism::with_solver(w, strategy, solver)
    }

    /// Prepares the mechanism around an already-planned (typically
    /// cache-shared) [`GramSolver`], so several workloads over one
    /// strategy pay for one factorization. Validation is identical to
    /// [`Self::with_options`].
    pub fn with_solver(
        w: SparseMatrix,
        strategy: SparseMatrix,
        solver: Arc<GramSolver>,
    ) -> Result<Self, MechanismError> {
        if w.cols() != strategy.cols() {
            return Err(MechanismError::InvalidParameter {
                what: "workload and strategy must share the domain size",
            });
        }
        let delta_a = strategy.max_col_l1();
        if delta_a <= 0.0 {
            return Err(MechanismError::InvalidParameter {
                what: "strategy has zero sensitivity (all-zero matrix)",
            });
        }
        if !probe_round_trip_holds(&strategy, &solver)? {
            return Err(MechanismError::StrategyDoesNotSupportWorkload);
        }
        Ok(SparseMatrixMechanism {
            w,
            strategy,
            delta_a,
            solver,
            scratch: Mutex::new(SolveScratch::default()),
            solves: AtomicUsize::new(0),
            cg_iterations: AtomicUsize::new(0),
        })
    }

    /// The workload `W`.
    pub fn workload(&self) -> &SparseMatrix {
        &self.w
    }

    /// The strategy `A`.
    pub fn strategy(&self) -> &SparseMatrix {
        &self.strategy
    }

    /// The strategy sensitivity `Δ_A`.
    pub fn delta_a(&self) -> f64 {
        self.delta_a
    }

    /// How this mechanism applies `A⁺`: [`PinvApply::Factored`] when the
    /// planner's budgets admitted a cached Cholesky factor,
    /// [`PinvApply::IterativeCg`] otherwise.
    pub fn apply_method(&self) -> PinvApply {
        self.solver.apply_method()
    }

    /// The shared normal-equation solver (for cache reuse and stats).
    pub fn solver(&self) -> &Arc<GramSolver> {
        &self.solver
    }

    /// Normal-equation solves performed so far (one per release or
    /// per-query error report; the construction probes are not counted).
    pub fn solve_count(&self) -> usize {
        self.solves.load(Ordering::Relaxed)
    }

    /// Total CG iterations across those solves — ~log₂ k per solve on
    /// hierarchical strategies when CG runs at all, and exactly 0 on the
    /// factored path.
    pub fn cg_iterations(&self) -> usize {
        self.cg_iterations.load(Ordering::Relaxed)
    }

    /// Buffer (re)allocations inside the shared solve scratch so far —
    /// flat after the first release of a given shape.
    pub fn scratch_allocations(&self) -> usize {
        self.scratch.lock().map(|s| s.ws.allocations()).unwrap_or(0)
    }

    /// Solves `AᵀA u = b` through the planned path, reusing the shared
    /// scratch when it is uncontended and bumping the solve counters.
    fn solve_gram_tracked(&self, b: &[f64]) -> Result<Vec<f64>, MechanismError> {
        let solved = match self.scratch.try_lock() {
            Ok(mut s) => self.solver.solve_gram(&self.strategy, b, &mut s),
            Err(_) => self
                .solver
                .solve_gram(&self.strategy, b, &mut SolveScratch::default()),
        };
        let (x, iterations) = solved.map_err(lift_rank_error)?;
        self.solves.fetch_add(1, Ordering::Relaxed);
        self.cg_iterations.fetch_add(iterations, Ordering::Relaxed);
        Ok(x)
    }

    fn apply_pinv(&self, y: &[f64]) -> Result<Vec<f64>, MechanismError> {
        let rhs = self.strategy.matvec_transpose(y)?;
        self.solve_gram_tracked(&rhs)
    }

    /// Runs the mechanism: `Wx + W A⁺ Lap(Δ_A/ε)^p`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, MechanismError> {
        let truth = self.w.matvec(x)?;
        let noise = self.noise_only(eps, rng)?;
        Ok(truth.iter().zip(&noise).map(|(t, n)| t + n).collect())
    }

    /// Draws only the reconstructed noise vector `W A⁺ Lap(Δ_A/ε)^p`.
    ///
    /// The Laplace draw count and order match the dense mechanism's
    /// (`strategy.rows()` samples), so from equal seeds the two paths
    /// produce the same release up to solver tolerance.
    pub fn noise_only<R: Rng + ?Sized>(
        &self,
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, MechanismError> {
        let scale = self.delta_a / eps.value();
        let raw = laplace_vec(rng, scale, self.strategy.rows());
        let z = self.apply_pinv(&raw)?;
        Ok(self.w.matvec(&z)?)
    }

    /// Releases the full noisy domain estimate `x̂ = x + A⁺ Lap(Δ_A/ε)^p`
    /// — the reconstruction every workload answer is a linear function
    /// of. Draw count and order match [`Self::run`]/[`Self::noise_only`]
    /// exactly (`strategy.rows()` samples), so from equal seeds
    /// `W x̂ = run(x)` up to solver tolerance. This is what lets one
    /// mechanism serve a W ≠ I range workload: answer `W x̂` instead of
    /// rematerializing `W A⁺`.
    pub fn reconstruct<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, MechanismError> {
        if x.len() != self.strategy.cols() {
            return Err(MechanismError::InvalidParameter {
                what: "data vector must match the domain size",
            });
        }
        let scale = self.delta_a / eps.value();
        let raw = laplace_vec(rng, scale, self.strategy.rows());
        let z = self.apply_pinv(&raw)?;
        Ok(x.iter().zip(&z).map(|(xi, zi)| xi + zi).collect())
    }

    /// Expected squared error of query `i`:
    /// `2 (Δ_A/ε)² ‖A (AᵀA)⁻¹ wᵢ‖₂²` — one gram solve per call (the
    /// dense path reads a precomputed row instead; use it when error
    /// reports over large workloads dominate).
    pub fn query_error(&self, i: usize, eps: Epsilon) -> Result<f64, MechanismError> {
        let mut wi = vec![0.0; self.w.cols()];
        for (j, v) in self.w.row(i) {
            wi[j] = v;
        }
        let u = self.solve_gram_tracked(&wi)?;
        let au = self.strategy.matvec(&u)?;
        let sq: f64 = au.iter().map(|v| v * v).sum();
        Ok(laplace_variance(self.delta_a / eps.value()) * sq)
    }

    /// Expected total squared error over all queries — `W.rows()` CG
    /// solves; intended for offline reporting, not the serving path.
    pub fn total_error(&self, eps: Epsilon) -> Result<f64, MechanismError> {
        let mut acc = 0.0;
        for i in 0..self.w.rows() {
            acc += self.query_error(i, eps)?;
        }
        Ok(acc)
    }
}

/// A rank-deficient strategy surfaces from CG as `NotPositiveDefinite`;
/// the mechanism layer reports that the same way the dense path reports a
/// failed support check. Anything else (non-convergence, shapes) stays a
/// typed linalg error.
fn lift_rank_error(e: LinalgError) -> MechanismError {
    match e {
        LinalgError::NotPositiveDefinite { .. } => MechanismError::StrategyDoesNotSupportWorkload,
        other => MechanismError::Linalg(other),
    }
}

/// Verifies `A⁺A v = v` on seeded pseudo-random probes via round-trip
/// solves **through the planned solver path**, mirroring the dense
/// path's `left_inverse_probe_holds` (same probe count, distribution,
/// and tolerance rationale). Running probes through the real path means
/// a factored solver is numerically vetted before it serves a release.
fn probe_round_trip_holds(a: &SparseMatrix, solver: &GramSolver) -> Result<bool, MechanismError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let n = a.cols();
    let mut rng = StdRng::seed_from_u64(0x5EED_1DE4);
    let mut scratch = SolveScratch::default();
    for _ in 0..3 {
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let av = a.matvec(&v)?;
        let rhs = a.matvec_transpose(&av)?;
        let (back, _) = solver
            .solve_gram(a, &rhs, &mut scratch)
            .map_err(lift_rank_error)?;
        let scale = 1.0 + v.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
        if back
            .iter()
            .zip(&v)
            .any(|(b, x)| (b - x).abs() > 1e-8 * scale)
        {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The identity strategy `A = I_k` in CSR form.
pub fn identity_strategy_sparse(k: usize) -> SparseMatrix {
    SparseMatrix::identity(k)
}

/// The binary hierarchical strategy `H_k` in CSR form — row-for-row
/// identical to [`crate::hierarchical_strategy`], at O(k log k) nonzeros
/// instead of O(k²·log k) dense cells.
pub fn hierarchical_strategy_sparse(k: usize) -> SparseMatrix {
    let padded = k.next_power_of_two();
    let mut triplets: Vec<(usize, usize)> = Vec::new();
    let mut row = 0usize;
    let mut size = padded;
    loop {
        let mut start = 0;
        while start < padded {
            let lo = start.min(k);
            let hi = (start + size).min(k);
            if lo < hi {
                // Non-empty after clipping padding: this row exists.
                for j in lo..hi {
                    triplets.push((row, j));
                }
                row += 1;
            }
            start += size;
        }
        if size == 1 {
            break;
        }
        size /= 2;
    }
    let mut b = TripletBuilder::new(row, k);
    for (r, j) in triplets {
        b.push(r, j, 1.0);
    }
    b.build()
}

/// The Haar wavelet strategy `Y_k` in CSR form — row-for-row identical to
/// [`crate::wavelet_strategy`].
pub fn wavelet_strategy_sparse(k: usize) -> SparseMatrix {
    let padded = k.next_power_of_two();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    let mut row = 0usize;
    // Total-average row.
    for j in 0..k {
        triplets.push((row, j, 1.0));
    }
    row += 1;
    let mut size = padded;
    while size >= 2 {
        let half = size / 2;
        let mut start = 0;
        while start < padded {
            let plo = start.min(k);
            let phi = (start + half).min(k);
            let nlo = (start + half).min(k);
            let nhi = (start + size).min(k);
            if plo < phi || nlo < nhi {
                for j in plo..phi {
                    triplets.push((row, j, 1.0));
                }
                for j in nlo..nhi {
                    triplets.push((row, j, -1.0));
                }
                row += 1;
            }
            start += size;
        }
        size /= 2;
    }
    let mut b = TripletBuilder::new(row, k);
    for (r, j, v) in triplets {
        b.push(r, j, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{hierarchical_strategy, identity_strategy, wavelet_strategy};
    use crate::MatrixMechanism;
    use blowfish_core::Workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sparse_strategies_match_dense_row_for_row() {
        for k in [1, 2, 3, 5, 6, 7, 8, 13, 16, 21, 32, 37] {
            let hd = hierarchical_strategy(k);
            let hs = hierarchical_strategy_sparse(k);
            assert_eq!(hs.rows(), hd.rows(), "hierarchical rows at k={k}");
            assert!(
                hs.to_dense().approx_eq(&hd, 0.0),
                "hierarchical mismatch at k={k}"
            );
            let wd = wavelet_strategy(k);
            let ws = wavelet_strategy_sparse(k);
            assert_eq!(ws.rows(), wd.rows(), "wavelet rows at k={k}");
            assert!(
                ws.to_dense().approx_eq(&wd, 0.0),
                "wavelet mismatch at k={k}"
            );
            assert!(identity_strategy_sparse(k)
                .to_dense()
                .approx_eq(&identity_strategy(k), 0.0));
        }
    }

    #[test]
    fn hierarchical_sparse_is_k_log_k() {
        let k = 1024;
        let h = hierarchical_strategy_sparse(k);
        // Each of the k columns appears once per level: height = log2(k)+1.
        assert_eq!(h.nnz(), k * 11);
        assert_eq!(h.max_col_l1(), 11.0);
    }

    #[test]
    fn sparse_release_matches_dense_release_from_equal_seeds() {
        let eps = Epsilon::new(0.7).unwrap();
        for k in [8usize, 16, 30] {
            let w = Workload::all_ranges_1d(k);
            let dense =
                MatrixMechanism::new(w.to_dense_matrix(), hierarchical_strategy(k)).unwrap();
            let sparse =
                SparseMatrixMechanism::new(w.to_sparse_matrix(), hierarchical_strategy_sparse(k))
                    .unwrap();
            let x: Vec<f64> = (0..k).map(|i| (i * 3 % 7) as f64).collect();
            let rd = dense.run(&x, eps, &mut StdRng::seed_from_u64(42)).unwrap();
            let rs = sparse.run(&x, eps, &mut StdRng::seed_from_u64(42)).unwrap();
            for (d, s) in rd.iter().zip(&rs) {
                assert!((d - s).abs() <= 1e-9 * (1.0 + d.abs()), "k={k}: {d} vs {s}");
            }
            // Small hierarchical grams are within both budgets: the
            // planner factors them and releases spend zero CG iterations.
            assert_eq!(sparse.apply_method(), PinvApply::Factored);
            assert!(sparse.solve_count() >= 1);
            assert_eq!(sparse.cg_iterations(), 0);
        }
    }

    #[test]
    fn factored_cg_and_dense_releases_three_way_agree() {
        let eps = Epsilon::new(0.9).unwrap();
        for k in [12usize, 24, 48] {
            let w = Workload::all_ranges_1d(k);
            let opts = CgOptions {
                tol: 1e-12,
                max_iter: 0,
            };
            let dense =
                MatrixMechanism::new(w.to_dense_matrix(), hierarchical_strategy(k)).unwrap();
            let factored =
                SparseMatrixMechanism::new(w.to_sparse_matrix(), hierarchical_strategy_sparse(k))
                    .unwrap();
            let strategy = hierarchical_strategy_sparse(k);
            let cg_solver = Arc::new(GramSolver::plan_cg(&strategy, opts));
            let cg = SparseMatrixMechanism::with_solver(w.to_sparse_matrix(), strategy, cg_solver)
                .unwrap();
            assert_eq!(factored.apply_method(), PinvApply::Factored);
            assert_eq!(cg.apply_method(), PinvApply::IterativeCg);
            let x: Vec<f64> = (0..k).map(|i| (i * 5 % 11) as f64).collect();
            let rd = dense.run(&x, eps, &mut StdRng::seed_from_u64(7)).unwrap();
            let rf = factored
                .run(&x, eps, &mut StdRng::seed_from_u64(7))
                .unwrap();
            let rc = cg.run(&x, eps, &mut StdRng::seed_from_u64(7)).unwrap();
            for ((d, f), c) in rd.iter().zip(&rf).zip(&rc) {
                assert!((d - f).abs() <= 1e-9 * (1.0 + d.abs()), "k={k}: {d} vs {f}");
                assert!((f - c).abs() <= 1e-9 * (1.0 + f.abs()), "k={k}: {f} vs {c}");
            }
            assert!(cg.cg_iterations() > 0);
        }
    }

    #[test]
    fn oversized_gram_routes_through_the_haar_rotation() {
        // At k = 256 the hierarchical Gram cost (~2k²) blows the
        // GRAM_COST_FACTOR budget, so the planner must reach the factored
        // path via the Haar congruence — and still match the CG path.
        let k = 256usize;
        let eps = Epsilon::new(0.5).unwrap();
        let opts = CgOptions {
            tol: 1e-12,
            max_iter: 0,
        };
        let strategy = hierarchical_strategy_sparse(k);
        let factored =
            SparseMatrixMechanism::new(SparseMatrix::identity(k), strategy.clone()).unwrap();
        assert_eq!(factored.apply_method(), PinvApply::Factored);
        assert!(factored.solver().rotated());
        assert!(factored.solver().factor_nnz().is_some());
        let cg_solver = Arc::new(GramSolver::plan_cg(&strategy, opts));
        let cg = SparseMatrixMechanism::with_solver(SparseMatrix::identity(k), strategy, cg_solver)
            .unwrap();
        let x: Vec<f64> = (0..k).map(|i| (i % 13) as f64).collect();
        let rf = factored
            .run(&x, eps, &mut StdRng::seed_from_u64(99))
            .unwrap();
        let rc = cg.run(&x, eps, &mut StdRng::seed_from_u64(99)).unwrap();
        for (f, c) in rf.iter().zip(&rc) {
            assert!((f - c).abs() <= 1e-9 * (1.0 + f.abs()), "{f} vs {c}");
        }
        assert_eq!(factored.cg_iterations(), 0);
    }

    #[test]
    fn reconstruct_matches_run_under_the_workload() {
        // W x̂ from reconstruct() equals run() from the same seed: the
        // contract that lets MatrixRange serve answers from the domain
        // estimate.
        let k = 32usize;
        let eps = Epsilon::new(1.3).unwrap();
        let w = Workload::all_ranges_1d(k);
        let mm = SparseMatrixMechanism::new(w.to_sparse_matrix(), hierarchical_strategy_sparse(k))
            .unwrap();
        let x: Vec<f64> = (0..k).map(|i| (i * 2 % 9) as f64).collect();
        let run = mm.run(&x, eps, &mut StdRng::seed_from_u64(5)).unwrap();
        let xhat = mm
            .reconstruct(&x, eps, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let via_xhat = mm.workload().matvec(&xhat).unwrap();
        for (a, b) in run.iter().zip(&via_xhat) {
            assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()), "{a} vs {b}");
        }
        assert!(matches!(
            mm.reconstruct(&x[..k - 1], eps, &mut StdRng::seed_from_u64(5)),
            Err(MechanismError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn scratch_allocations_flatten_across_releases() {
        let k = 64usize;
        let eps = Epsilon::new(1.0).unwrap();
        let strategy = hierarchical_strategy_sparse(k);
        let opts = CgOptions {
            tol: 1e-12,
            max_iter: 0,
        };
        let cg_solver = Arc::new(GramSolver::plan_cg(&strategy, opts));
        let mm = SparseMatrixMechanism::with_solver(SparseMatrix::identity(k), strategy, cg_solver)
            .unwrap();
        let x = vec![1.0; k];
        let mut rng = StdRng::seed_from_u64(11);
        mm.run(&x, eps, &mut rng).unwrap();
        let after_first = mm.scratch_allocations();
        assert!(after_first > 0);
        for _ in 0..5 {
            mm.run(&x, eps, &mut rng).unwrap();
        }
        assert_eq!(mm.scratch_allocations(), after_first);
    }

    #[test]
    fn sparse_error_formulas_match_dense() {
        let k = 16;
        let eps = Epsilon::new(1.0).unwrap();
        let w = Workload::all_ranges_1d(k);
        let dense = MatrixMechanism::new(w.to_dense_matrix(), hierarchical_strategy(k)).unwrap();
        let sparse =
            SparseMatrixMechanism::new(w.to_sparse_matrix(), hierarchical_strategy_sparse(k))
                .unwrap();
        for i in [0usize, 3, w.len() - 1] {
            let d = dense.query_error(i, eps);
            let s = sparse.query_error(i, eps).unwrap();
            assert!((d - s).abs() <= 1e-8 * (1.0 + d), "query {i}: {d} vs {s}");
        }
        let dt = dense.total_error(eps);
        let st = sparse.total_error(eps).unwrap();
        assert!((dt - st).abs() <= 1e-7 * (1.0 + dt), "{dt} vs {st}");
    }

    #[test]
    fn rank_deficient_strategy_is_rejected_typed() {
        // A strategy with an empty column cannot left-invert.
        let mut b = TripletBuilder::new(2, 3);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        let a = b.build();
        let res = SparseMatrixMechanism::new(SparseMatrix::identity(3), a);
        assert!(matches!(
            res,
            Err(MechanismError::StrategyDoesNotSupportWorkload)
        ));
        // Duplicated column: numerically rank deficient, same rejection.
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        b.push(1, 1, 1.0);
        let res = SparseMatrixMechanism::new(SparseMatrix::identity(2), b.build());
        assert!(res.is_err());
    }

    #[test]
    fn shape_and_sensitivity_validation() {
        let a = identity_strategy_sparse(4);
        assert!(matches!(
            SparseMatrixMechanism::new(SparseMatrix::identity(3), a.clone()),
            Err(MechanismError::InvalidParameter { .. })
        ));
        assert!(matches!(
            SparseMatrixMechanism::new(SparseMatrix::identity(4), SparseMatrix::zeros(2, 4)),
            Err(MechanismError::InvalidParameter { .. })
        ));
        let mm = SparseMatrixMechanism::new(SparseMatrix::identity(4), a).unwrap();
        assert_eq!(mm.delta_a(), 1.0);
        assert_eq!(mm.workload().rows(), 4);
        assert_eq!(mm.strategy().cols(), 4);
        // The identity Gram is trivially within budget: factored.
        assert!(mm.apply_method().to_string().contains("factored"));
    }
}
