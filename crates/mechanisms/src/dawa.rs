//! DAWA — the data- and workload-aware mechanism of Li, Hay & Miklau \[14\],
//! implemented exactly as the paper under reproduction describes it
//! (Section 5.4.1):
//!
//! > "(a) partition the domain such that domain values within a group have
//! > roughly the same counts, (b) estimate the total counts for each of
//! > these groups using the Laplace mechanism, and (c) uniformly divide the
//! > noisy group totals amongst its constituents."
//!
//! Stage (a) spends a fraction `α` of the budget on a Laplace-noised
//! histogram from which an optimal partition (restricted to power-of-two
//! bucket lengths, DAWA's own efficiency restriction) is found by dynamic
//! programming; because the partition is post-processing of an ε₁-DP
//! release, the whole pipeline is `ε₁ + ε₂ = ε` differentially private by
//! sequential composition. The DP objective is the bias-variance tradeoff
//! `Σ_b [ dev²(b) + 2/(ε₂²·|b|) ]`: buckets pay their internal deviation
//! plus the (uniformly spread) Laplace noise on their total.
//!
//! On sparse data (long near-constant runs) DAWA adds noise to far fewer
//! effective counts than the Laplace mechanism — the data-dependent
//! behaviour the paper exploits on the transformed database `x_G`.

use rand::Rng;

use blowfish_core::Epsilon;

use crate::laplace::laplace_histogram;
use crate::noise::laplace;
use crate::MechanismError;

/// Tuning options for [`dawa_histogram`].
#[derive(Clone, Copy, Debug)]
pub struct DawaOptions {
    /// Fraction of the budget spent on the partition stage (DAWA's
    /// default 0.25).
    pub partition_budget_fraction: f64,
}

impl Default for DawaOptions {
    fn default() -> Self {
        DawaOptions {
            partition_budget_fraction: 0.25,
        }
    }
}

/// The DAWA estimate of a histogram under unbounded ε-DP.
pub fn dawa_histogram<R: Rng + ?Sized>(
    x: &[f64],
    eps: Epsilon,
    opts: DawaOptions,
    rng: &mut R,
) -> Result<Vec<f64>, MechanismError> {
    if x.is_empty() {
        return Err(MechanismError::InvalidParameter {
            what: "empty histogram",
        });
    }
    let alpha = opts.partition_budget_fraction;
    if !(0.0..1.0).contains(&alpha) || alpha == 0.0 {
        return Err(MechanismError::InvalidParameter {
            what: "partition budget fraction must lie in (0, 1)",
        });
    }
    let eps1 = Epsilon::new(eps.value() * alpha).expect("positive");
    let eps2 = Epsilon::new(eps.value() * (1.0 - alpha)).expect("positive");

    // Stage (a): ε₁-DP noisy histogram, then a partition by post-processing.
    // Two standard denoising steps before the cost computation:
    // * universal threshold at (noise scale)·ln k: Pr[|Lap(b)| > b·ln k] =
    //   1/k, so in expectation at most one zero cell survives — zero-runs
    //   of sparse data become exactly zero and merge reliably;
    // * debias the remaining L1 deviation by the expected per-cell noise
    //   magnitude E|Lap(1/ε₁)| = 1/ε₁ on the *surviving* cells (its
    //   fluctuations grow like √len, not len, which is why the L1 cost is
    //   used — as in DAWA itself).
    let noisy = laplace_histogram(x, 1.0, eps1, rng)?;
    let noise_scale = 1.0 / eps1.value();
    let threshold = noise_scale * (x.len() as f64).ln().max(2.0);
    let thresholded: Vec<f64> = noisy
        .iter()
        .map(|&v| if v.abs() < threshold { 0.0 } else { v })
        .collect();
    let boundaries = optimal_partition_debiased(&thresholded, eps2.value(), noise_scale);

    // Stage (b) + (c): ε₂-DP bucket totals, spread uniformly.
    let mut out = vec![0.0; x.len()];
    let scale = 1.0 / eps2.value();
    for w in boundaries.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let total: f64 = x[lo..hi].iter().sum();
        let noisy_total = total + laplace(rng, scale);
        let per_cell = noisy_total / (hi - lo) as f64;
        for cell in &mut out[lo..hi] {
            *cell = per_cell;
        }
    }
    Ok(out)
}

/// Finds the partition minimizing DAWA\'s L1 objective
/// `Σ_b [ dev₁(b) + 1/ε₂ ]` over buckets of power-of-two length, by
/// dynamic programming on the (already noisy/public) histogram — `dev₁` is
/// the L1 deviation around the bucket mean, and `1/ε₂` the expected L1
/// error a bucket pays for its noisy total. Returns bucket boundaries
/// `0 = b₀ < b₁ < … = k`.
pub fn optimal_partition(hist: &[f64], eps2: f64) -> Vec<usize> {
    optimal_partition_debiased(hist, eps2, 0.0)
}

/// [`optimal_partition`] with a noise correction: when `hist` is a
/// (possibly thresholded) Laplace release with per-cell expected noise
/// magnitude `noise_mean_abs`, the deviation of an interval is debiased by
/// `noise_mean_abs` per *nonzero* cell (clamped at 0) — exactly-zero cells
/// carry no noise after thresholding, while surviving cells still wobble
/// by the Laplace scale.
pub fn optimal_partition_debiased(hist: &[f64], eps2: f64, noise_mean_abs: f64) -> Vec<usize> {
    let k = hist.len();
    // Prefix sums (values and nonzero counts) for O(1) interval means and
    // debias weights.
    let mut s = vec![0.0; k + 1];
    let mut nz = vec![0.0; k + 1];
    for (i, &v) in hist.iter().enumerate() {
        s[i + 1] = s[i] + v;
        nz[i + 1] = nz[i] + if v != 0.0 { 1.0 } else { 0.0 };
    }
    // L1 deviation around the mean, debiased; O(len) per interval. The DP
    // below only evaluates power-of-two lengths, so the total work is
    // O(k²) in the worst case and cache-friendly in practice.
    let dev1 = |lo: usize, hi: usize| -> f64 {
        let len = (hi - lo) as f64;
        let mean = (s[hi] - s[lo]) / len;
        let raw: f64 = hist[lo..hi].iter().map(|v| (v - mean).abs()).sum();
        (raw - (nz[hi] - nz[lo]) * noise_mean_abs).max(0.0)
    };
    let per_bucket_noise = 1.0 / eps2;

    let mut best = vec![f64::INFINITY; k + 1];
    let mut back = vec![0usize; k + 1];
    best[0] = 0.0;
    for i in 1..=k {
        let mut len = 1usize;
        while len <= i {
            let j = i - len;
            let cost = best[j] + dev1(j, i) + per_bucket_noise;
            if cost < best[i] {
                best[i] = cost;
                back[i] = j;
            }
            if len == i {
                break;
            }
            len = (len * 2).min(i);
        }
    }
    // Backtrack.
    let mut boundaries = vec![k];
    let mut cur = k;
    while cur > 0 {
        cur = back[cur];
        boundaries.push(cur);
    }
    boundaries.reverse();
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partition_finds_uniform_blocks() {
        // Two clearly distinct plateaus: the partition should cut near the
        // plateau boundary (power-of-two lengths allowing).
        let mut hist = vec![10.0; 32];
        hist[16..].iter_mut().for_each(|v| *v = 50.0);
        let b = optimal_partition(&hist, 1.0);
        assert!(b.contains(&16), "boundaries {b:?} miss the plateau edge");
        assert_eq!(*b.first().unwrap(), 0);
        assert_eq!(*b.last().unwrap(), 32);
    }

    #[test]
    fn partition_on_uniform_data_prefers_large_buckets() {
        let hist = vec![5.0; 64];
        let b = optimal_partition(&hist, 0.1);
        // With zero deviation everywhere and noise cost decreasing in
        // bucket size, a single bucket is optimal.
        assert_eq!(b, vec![0, 64]);
    }

    #[test]
    fn partition_boundaries_are_well_formed() {
        let hist: Vec<f64> = (0..100).map(|i| ((i * 7) % 13) as f64).collect();
        let b = optimal_partition(&hist, 0.5);
        assert_eq!(*b.first().unwrap(), 0);
        assert_eq!(*b.last().unwrap(), 100);
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn dawa_beats_laplace_on_sparse_data() {
        // The headline property (paper Section 5.4.1): on sparse data DAWA
        // incurs much lower error than the Laplace mechanism.
        // Spikes sized like the paper's datasets (scales 1e4–1e7 over 4096
        // cells): far above the stage-1 noise so isolation is reliable.
        let k = 512;
        let mut x = vec![0.0; k];
        x[100] = 3000.0;
        x[101] = 3100.0;
        x[400] = 1500.0;
        let eps = Epsilon::new(0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 30;
        let mut dawa_err = 0.0;
        let mut lap_err = 0.0;
        for _ in 0..trials {
            let d = dawa_histogram(&x, eps, DawaOptions::default(), &mut rng).unwrap();
            let l = laplace_histogram(&x, 1.0, eps, &mut rng).unwrap();
            dawa_err += x
                .iter()
                .zip(&d)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            lap_err += x
                .iter()
                .zip(&l)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        assert!(
            dawa_err < lap_err / 3.0,
            "DAWA {dawa_err} not clearly better than Laplace {lap_err}"
        );
    }

    #[test]
    fn dawa_on_dense_data_is_not_catastrophic() {
        // On rough data DAWA may lose to Laplace but must stay within a
        // small factor (it can always fall back to singleton buckets).
        let k = 128;
        let mut rng = StdRng::seed_from_u64(9);
        let x: Vec<f64> = (0..k).map(|i| ((i * 37) % 101) as f64).collect();
        let eps = Epsilon::new(1.0).unwrap();
        let trials = 30;
        let mut dawa_err = 0.0;
        let mut lap_err = 0.0;
        for _ in 0..trials {
            let d = dawa_histogram(&x, eps, DawaOptions::default(), &mut rng).unwrap();
            let l = laplace_histogram(&x, 1.0, eps, &mut rng).unwrap();
            dawa_err += x
                .iter()
                .zip(&d)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            lap_err += x
                .iter()
                .zip(&l)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        assert!(
            dawa_err < lap_err * 50.0,
            "DAWA {dawa_err} catastrophically worse than Laplace {lap_err}"
        );
    }

    #[test]
    fn option_validation() {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(dawa_histogram(&[], eps, DawaOptions::default(), &mut rng).is_err());
        let bad = DawaOptions {
            partition_budget_fraction: 0.0,
        };
        assert!(dawa_histogram(&[1.0], eps, bad, &mut rng).is_err());
        let bad2 = DawaOptions {
            partition_budget_fraction: 1.0,
        };
        assert!(dawa_histogram(&[1.0], eps, bad2, &mut rng).is_err());
    }

    #[test]
    fn estimates_preserve_total_roughly() {
        let k = 64;
        let x = vec![10.0; k];
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let est = dawa_histogram(&x, eps, DawaOptions::default(), &mut rng).unwrap();
        let total: f64 = est.iter().sum();
        assert!((total - 640.0).abs() < 100.0, "total {total}");
    }
}
