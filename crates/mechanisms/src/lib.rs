//! # blowfish-mechanisms
//!
//! Differentially private mechanism substrates for the `blowfish-privacy`
//! workspace — every building block the paper (*Haney, Machanavajjhala &
//! Ding, VLDB 2015*) composes its policy-aware strategies from, implemented
//! from scratch:
//!
//! * [`noise`] — seeded Laplace / two-sided-geometric samplers.
//! * [`laplace`](mod@laplace) — the Laplace mechanism (Theorem 2.1) with
//!   analytic error.
//! * [`exponential`] — the exponential mechanism and the graph-distance
//!   mechanism witnessing the Theorem 4.4 negative result.
//! * [`matrix`] — the matrix mechanism framework (Li et al. \[15\], Eq. 2)
//!   with identity / hierarchical / wavelet strategy matrices.
//! * [`sparse_matrix`] — the same framework over CSR strategies with the
//!   pseudoinverse *applied* per release by matrix-free normal-equation
//!   CG (O(nnz) memory; the k≈10⁵ planning path).
//! * [`hierarchical`] — the Hay et al. \[10\] binary-tree estimator with
//!   weighted least-squares consistency.
//! * [`privelet`] — Privelet \[20\]: Haar wavelet noise in 1 and d
//!   dimensions (`O(log³k/ε²)` per range query), the paper's data-oblivious
//!   DP baseline.
//! * [`dawa`] — DAWA \[14\] in the three-step form the paper describes
//!   (private partition → noisy bucket totals → uniform spread), the
//!   paper's data-dependent DP baseline.
//! * [`consistency`] — isotonic regression (PAVA) for the
//!   `Transformed + ConsistentEst` estimator of Section 5.4.2.
//!
//! All mechanisms take an explicit `&mut impl Rng`, so experiments are
//! reproducible bit-for-bit from a seed.

pub mod consistency;
pub mod dawa;
pub mod exponential;
pub mod gaussian;
pub mod hierarchical;
pub mod laplace;
pub mod matrix;
pub mod noise;
pub mod privelet;
pub mod sparse_matrix;

pub use consistency::{
    consistent_prefix_estimate, isotonic_non_decreasing, isotonic_non_decreasing_with_floor,
};
pub use dawa::{dawa_histogram, optimal_partition, DawaOptions};
pub use exponential::{
    exponential_mechanism, graph_distance_distribution, graph_distance_mechanism,
};
pub use gaussian::{gaussian_histogram, gaussian_sigma, gaussian_variance, standard_normal};
pub use hierarchical::{hierarchical_histogram, hierarchical_range_error_order};
pub use laplace::{
    laplace_histogram, laplace_per_query_error, laplace_total_error, laplace_workload,
};
pub use matrix::{hierarchical_strategy, identity_strategy, wavelet_strategy, MatrixMechanism};
pub use noise::{laplace, laplace_variance, laplace_vec, two_sided_geometric};
pub use privelet::{
    haar_forward, haar_generalized_sensitivity, haar_inverse, haar_weights, privelet_histogram,
    privelet_histogram_1d, privelet_histogram_planned, privelet_range_error_order, HaarPlan,
};
pub use sparse_matrix::{
    hierarchical_strategy_sparse, identity_strategy_sparse, wavelet_strategy_sparse, GramSolver,
    PinvApply, SparseMatrixMechanism,
};

/// Errors reported by mechanism construction or execution.
#[derive(Clone, Debug, PartialEq)]
pub enum MechanismError {
    /// A parameter failed validation.
    InvalidParameter {
        /// What was wrong.
        what: &'static str,
    },
    /// The matrix-mechanism support condition `W A⁺ A = W` failed: the
    /// strategy cannot reconstruct the workload without bias.
    StrategyDoesNotSupportWorkload,
    /// An error from the core crate.
    Core(blowfish_core::CoreError),
    /// An error from the linear-algebra substrate.
    Linalg(blowfish_linalg::LinalgError),
}

impl std::fmt::Display for MechanismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechanismError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            MechanismError::StrategyDoesNotSupportWorkload => {
                write!(f, "strategy does not support the workload (W A⁺A ≠ W)")
            }
            MechanismError::Core(e) => write!(f, "core error: {e}"),
            MechanismError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for MechanismError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MechanismError::Core(e) => Some(e),
            MechanismError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<blowfish_core::CoreError> for MechanismError {
    fn from(e: blowfish_core::CoreError) -> Self {
        MechanismError::Core(e)
    }
}

impl From<blowfish_linalg::LinalgError> for MechanismError {
    fn from(e: blowfish_linalg::LinalgError) -> Self {
        MechanismError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources() {
        let e = MechanismError::StrategyDoesNotSupportWorkload;
        assert!(e.to_string().contains("strategy"));
        let e: MechanismError = blowfish_core::CoreError::EmptyDomain.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: MechanismError = blowfish_linalg::LinalgError::RaggedRows.into();
        assert!(e.to_string().contains("linear algebra"));
    }
}
