//! The exponential mechanism.
//!
//! Used in two roles:
//!
//! * the generic McSherry–Talwar selection mechanism over a finite range,
//! * the *graph-distance mechanism* of the Theorem 4.4 negative result:
//!   given a policy graph `G` and a single-record input with value `x`, it
//!   outputs `y` with probability `∝ exp(−ε·dist_G(x, y))`. This mechanism
//!   is `(ε, G)`-Blowfish private for every `G`, but for graphs without an
//!   isometric L1 embedding (cycles) *no* workload/database transformation
//!   can make it ε-differentially private — the data-dependent witness that
//!   transformational equivalence cannot hold in general.

use rand::Rng;

use blowfish_core::{Epsilon, PolicyGraph};

use crate::MechanismError;

/// Samples an index with probability `∝ exp(eps · score[i] / (2·Δ))` —
/// the standard exponential mechanism with score sensitivity `Δ`.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    scores: &[f64],
    eps: Epsilon,
    sensitivity: f64,
    rng: &mut R,
) -> Result<usize, MechanismError> {
    if scores.is_empty() {
        return Err(MechanismError::InvalidParameter {
            what: "empty score vector",
        });
    }
    if sensitivity <= 0.0 {
        return Err(MechanismError::InvalidParameter {
            what: "sensitivity must be positive",
        });
    }
    let factor = eps.value() / (2.0 * sensitivity);
    sample_from_log_weights(&scores.iter().map(|s| s * factor).collect::<Vec<_>>(), rng)
}

/// The Theorem 4.4 witness mechanism: outputs vertex `y` with probability
/// `∝ exp(−ε · dist_G(x, y))` where `x` is the value of the database's
/// single record.
///
/// Satisfies `(2ε, G)`-Blowfish privacy in general (weights shift by
/// `e^{ε·d}` and the normalizer by another `e^{ε·d}`); on vertex-transitive
/// policies — cycles in particular, the Theorem 4.4 witness — the
/// normalizers cancel and it is exactly `(ε, G)`-Blowfish private.
pub fn graph_distance_mechanism<R: Rng + ?Sized>(
    g: &PolicyGraph,
    x: usize,
    eps: Epsilon,
    rng: &mut R,
) -> Result<usize, MechanismError> {
    let probs = graph_distance_distribution(g, x, eps)?;
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return Ok(i);
        }
    }
    Ok(probs.len() - 1)
}

/// The full output distribution of [`graph_distance_mechanism`] — exact
/// probabilities, so tests can verify privacy ratios analytically rather
/// than statistically.
pub fn graph_distance_distribution(
    g: &PolicyGraph,
    x: usize,
    eps: Epsilon,
) -> Result<Vec<f64>, MechanismError> {
    let k = g.num_values();
    if x >= k {
        return Err(MechanismError::InvalidParameter {
            what: "input vertex out of range",
        });
    }
    let dists = g.bfs_distances(x);
    let mut weights = Vec::with_capacity(k);
    for &d in dists.iter().take(k) {
        if d == usize::MAX {
            return Err(MechanismError::InvalidParameter {
                what: "policy graph must be connected",
            });
        }
        weights.push((-eps.value() * d as f64).exp());
    }
    let z: f64 = weights.iter().sum();
    Ok(weights.into_iter().map(|w| w / z).collect())
}

/// Numerically stable sampling given unnormalized log-weights.
fn sample_from_log_weights<R: Rng + ?Sized>(
    log_w: &[f64],
    rng: &mut R,
) -> Result<usize, MechanismError> {
    let m = log_w.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let weights: Vec<f64> = log_w.iter().map(|&l| (l - m).exp()).collect();
    let z: f64 = weights.iter().sum();
    let u: f64 = rng.gen::<f64>() * z;
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return Ok(i);
        }
    }
    Ok(log_w.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prefers_high_scores() {
        let scores = [0.0, 0.0, 10.0];
        let eps = Epsilon::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..2_000)
            .filter(|_| exponential_mechanism(&scores, eps, 1.0, &mut rng).unwrap() == 2)
            .count();
        assert!(hits > 1_900, "only {hits}/2000 picked the best option");
    }

    #[test]
    fn uniform_scores_uniform_output() {
        let scores = [1.0; 4];
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[exponential_mechanism(&scores, eps, 1.0, &mut rng).unwrap()] += 1;
        }
        for c in counts {
            assert!(
                (c as f64 - 2_000.0).abs() < 200.0,
                "counts {counts:?} not uniform"
            );
        }
    }

    #[test]
    fn graph_distance_distribution_ratios() {
        // On the line graph, Pr[y | x] / Pr[y | x'] ≤ e^{2ε·dist(x, x')}:
        // the unnormalized weights change by e^{ε·d} and the normalizer by
        // another e^{ε·d} — the standard factor-2 of the exponential
        // mechanism. (On vertex-transitive graphs like cycles the
        // normalizers cancel and the bound tightens to e^{ε·d}.)
        let g = PolicyGraph::line(6).unwrap();
        let eps = Epsilon::new(0.8).unwrap();
        let p0 = graph_distance_distribution(&g, 0, eps).unwrap();
        let p1 = graph_distance_distribution(&g, 1, eps).unwrap();
        for y in 0..6 {
            let ratio = (p0[y] / p1[y]).ln().abs();
            assert!(
                ratio <= 2.0 * eps.value() + 1e-9,
                "log ratio {ratio} exceeds 2ε at y={y}"
            );
        }
    }

    #[test]
    fn cycle_mechanism_is_blowfish_but_not_dp_after_embedding() {
        // The Theorem 4.4 witness, checked analytically. On the cycle C_6,
        // vertices 0 and 5 are policy-adjacent (distance 1), so the
        // mechanism's output ratios are bounded by e^ε — Blowfish holds.
        let g = PolicyGraph::cycle(6).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        let pa = graph_distance_distribution(&g, 0, eps).unwrap();
        let pb = graph_distance_distribution(&g, 5, eps).unwrap();
        for y in 0..6 {
            assert!((pa[y] / pb[y]).ln().abs() <= eps.value() + 1e-9);
        }
        // But any path spanner puts 0 and 5 at distance 5: the same
        // mechanism run on the *tree-transformed* instance would need
        // e^{5ε} — the ratio the mechanism actually exhibits between
        // inputs at graph distance 5 (here: 0 and 3 at distance 3 ≤ 5
        // shows intermediate growth; 0 vs the antipode realizes the
        // maximum cycle distance).
        let p_far = graph_distance_distribution(&g, 3, eps).unwrap();
        let worst = (0..6)
            .map(|y| (pa[y] / p_far[y]).ln().abs())
            .fold(0.0_f64, f64::max);
        // dist_C6(0, 3) = 3: the ratio must exceed ε (so a transformation
        // claiming these became unit-distance DP neighbors would fail).
        assert!(worst > eps.value() * 2.0, "worst ratio {worst}");
    }

    #[test]
    fn rejects_bad_input() {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(exponential_mechanism(&[], eps, 1.0, &mut rng).is_err());
        assert!(exponential_mechanism(&[1.0], eps, 0.0, &mut rng).is_err());
        let g = PolicyGraph::line(3).unwrap();
        assert!(graph_distance_mechanism(&g, 9, eps, &mut rng).is_err());
    }

    #[test]
    fn sampler_matches_distribution() {
        let g = PolicyGraph::line(4).unwrap();
        let eps = Epsilon::new(1.5).unwrap();
        let probs = graph_distance_distribution(&g, 1, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 40_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[graph_distance_mechanism(&g, 1, eps, &mut rng).unwrap()] += 1;
        }
        for (c, p) in counts.iter().zip(&probs) {
            let emp = *c as f64 / n as f64;
            assert!((emp - p).abs() < 0.01, "empirical {emp} vs analytic {p}");
        }
    }
}
