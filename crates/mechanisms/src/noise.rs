//! Noise primitives.
//!
//! Seeded, explicit-RNG samplers for the Laplace distribution (the paper's
//! `Lap(σ)` of Section 2) and the two-sided geometric distribution (its
//! integer-valued analogue). Every mechanism in this crate takes its RNG as
//! an argument so experiments are exactly reproducible.

use rand::Rng;

/// Draws one sample from the Laplace distribution with the given `scale`
/// (density `∝ exp(−|x|/scale)`), via inverse-CDF sampling.
pub fn laplace<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    debug_assert!(scale > 0.0, "Laplace scale must be positive");
    // u uniform on (-1/2, 1/2]; invert the CDF piecewise.
    let u: f64 = rng.gen::<f64>() - 0.5;
    // Guard the exact 0.5 edge (ln(0)).
    let u = u.clamp(-0.499_999_999_999, 0.499_999_999_999);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Fills a fresh vector with `n` independent `Lap(scale)` samples — the
/// paper's `Lap(σ)^m`.
pub fn laplace_vec<R: Rng + ?Sized>(rng: &mut R, scale: f64, n: usize) -> Vec<f64> {
    (0..n).map(|_| laplace(rng, scale)).collect()
}

/// Draws one sample from the two-sided geometric distribution with
/// parameter `alpha = exp(-ε/Δ)`: `Pr[X = z] ∝ alpha^{|z|}`. The integer
/// analogue of the Laplace mechanism (Ghosh–Roughgarden–Sundararajan).
pub fn two_sided_geometric<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> i64 {
    debug_assert!((0.0..1.0).contains(&alpha));
    if alpha == 0.0 {
        return 0;
    }
    // Sample magnitude from a geometric, sign uniformly; resample the
    // zero-splitting mass correctly: Pr[0] = (1-α)/(1+α).
    let p_zero = (1.0 - alpha) / (1.0 + alpha);
    if rng.gen::<f64>() < p_zero {
        return 0;
    }
    // Magnitude ≥ 1, geometric with success prob (1-α).
    let mut magnitude = 1i64;
    while rng.gen::<f64>() < alpha {
        magnitude += 1;
        if magnitude > 1 << 40 {
            break; // numerically impossible in practice; guard regardless
        }
    }
    if rng.gen::<bool>() {
        magnitude
    } else {
        -magnitude
    }
}

/// Variance of `Lap(scale)`: `2·scale²`. Used by analytic error formulas
/// (Theorem 2.1 and the Section-5 bounds).
#[inline]
pub fn laplace_variance(scale: f64) -> f64 {
    2.0 * scale * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let scale = 3.0;
        let n = 200_000;
        let samples = laplace_vec(&mut rng, scale, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        let expected = laplace_variance(scale);
        assert!(
            (var - expected).abs() / expected < 0.05,
            "variance {var} vs expected {expected}"
        );
    }

    #[test]
    fn laplace_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let pos = (0..n).filter(|_| laplace(&mut rng, 1.0) > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn geometric_zero_mass() {
        let mut rng = StdRng::seed_from_u64(3);
        let alpha = 0.5;
        let n = 100_000;
        let zeros = (0..n)
            .filter(|_| two_sided_geometric(&mut rng, alpha) == 0)
            .count();
        let frac = zeros as f64 / n as f64;
        let expected = (1.0 - alpha) / (1.0 + alpha); // 1/3
        assert!(
            (frac - expected).abs() < 0.01,
            "zero mass {frac} vs {expected}"
        );
    }

    #[test]
    fn geometric_symmetric_and_integer() {
        let mut rng = StdRng::seed_from_u64(4);
        let sum: i64 = (0..50_000)
            .map(|_| two_sided_geometric(&mut rng, 0.7))
            .sum();
        // Mean should be near zero: |sum| well below n·std.
        assert!(sum.abs() < 5_000, "sum {sum} suggests asymmetry");
        assert_eq!(two_sided_geometric(&mut rng, 0.0), 0);
    }

    #[test]
    fn seeded_reproducibility() {
        let a = laplace_vec(&mut StdRng::seed_from_u64(42), 1.0, 10);
        let b = laplace_vec(&mut StdRng::seed_from_u64(42), 1.0, 10);
        assert_eq!(a, b);
    }
}
