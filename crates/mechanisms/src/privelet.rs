//! Privelet — differential privacy via Haar wavelet transforms
//! (Xiao, Wang & Gehrke \[20\]).
//!
//! The 1-D mechanism computes the Haar transform of the histogram, adds
//! Laplace noise to each coefficient with scale inversely proportional to
//! the coefficient's *weight*, and inverts the transform. With weights
//! `W(c) = subtree size` (and `W(c₀) = k`), one record changes the weighted
//! coefficient vector by generalized sensitivity `ρ = 1 + log₂k`, yielding
//! `O(log³k / ε²)` error per range query — the best known data-oblivious
//! baseline the paper compares against throughout Section 6.
//!
//! The d-dimensional variant applies the 1-D transform along each axis
//! (standard tensor decomposition); weights multiply and the generalized
//! sensitivity becomes `Π_axes (1 + log₂ k_axis)`.

use rand::Rng;

use blowfish_core::Epsilon;

use crate::noise::laplace;
use crate::MechanismError;

/// In-place fast Haar analysis of a power-of-two-length buffer, using the
/// average/semi-difference convention: layout `[c₀ | 1 | 2 | 4 | …]` where
/// the segment `[2^{j−1}, 2^j)` holds the level-j detail coefficients.
pub fn haar_forward(x: &mut [f64]) {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    let mut scratch = vec![0.0; n];
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = x[2 * i];
            let b = x[2 * i + 1];
            scratch[i] = (a + b) / 2.0;
            scratch[half + i] = (a - b) / 2.0;
        }
        x[..len].copy_from_slice(&scratch[..len]);
        len = half;
    }
}

/// Inverse of [`haar_forward`].
pub fn haar_inverse(x: &mut [f64]) {
    let n = x.len();
    debug_assert!(n.is_power_of_two());
    let mut scratch = vec![0.0; n];
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for i in 0..half {
            let avg = x[i];
            let diff = x[half + i];
            scratch[2 * i] = avg + diff;
            scratch[2 * i + 1] = avg - diff;
        }
        x[..len].copy_from_slice(&scratch[..len]);
        len *= 2;
    }
}

/// Per-position Privelet weights for a length-`n` (power-of-two) transform:
/// `weight[0] = n` (the average coefficient) and `weight[p] = n / 2^{j−1}`
/// (the subtree size) for detail positions `p ∈ [2^{j−1}, 2^j)`.
pub fn haar_weights(n: usize) -> Vec<f64> {
    debug_assert!(n.is_power_of_two());
    let mut w = vec![0.0; n];
    w[0] = n as f64;
    let mut seg = 1usize;
    while seg < n {
        let subtree = (n / seg) as f64;
        for wp in w.iter_mut().take(2 * seg).skip(seg) {
            *wp = subtree;
        }
        seg *= 2;
    }
    w
}

/// Generalized Haar sensitivity for a length-`n` transform: `1 + log₂n`.
pub fn haar_generalized_sensitivity(n: usize) -> f64 {
    debug_assert!(n.is_power_of_two());
    1.0 + n.trailing_zeros() as f64
}

/// A reusable Privelet plan: padded shape, per-coefficient weights, and
/// the generalized sensitivity ρ for a fixed histogram shape.
///
/// Deriving the weight tensor costs a full pass over the padded domain per
/// axis; a plan computes it once so repeated releases over the same shape
/// (trials, serving loops, per-row calls inside the grid strategies) skip
/// the re-derivation. [`privelet_histogram`] remains a thin wrapper that
/// builds a throwaway plan, and produces bit-identical output for a fixed
/// seed.
#[derive(Clone, Debug)]
pub struct HaarPlan {
    dims: Vec<usize>,
    padded_dims: Vec<usize>,
    /// Per-coefficient Privelet weights over the padded domain.
    weights: Vec<f64>,
    /// Generalized sensitivity `ρ = Π_axes (1 + log₂ k_axis)`.
    rho: f64,
    size: usize,
    padded_size: usize,
}

impl HaarPlan {
    /// Builds the plan for a row-major histogram with the given `dims`.
    pub fn new(dims: &[usize]) -> Result<Self, MechanismError> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(MechanismError::InvalidParameter {
                what: "dims must be non-empty and positive",
            });
        }
        let size: usize = dims.iter().product();
        let padded_dims: Vec<usize> = dims.iter().map(|&d| d.next_power_of_two()).collect();
        let padded_size: usize = padded_dims.iter().product();
        // Accumulate per-cell weights axis by axis, in the same order the
        // unplanned mechanism historically did, so values match exactly.
        let mut weights = vec![1.0; padded_size];
        let mut rho = 1.0;
        for axis in 0..padded_dims.len() {
            let n = padded_dims[axis];
            rho *= haar_generalized_sensitivity(n);
            let axis_w = haar_weights(n);
            for_each_line(
                &padded_dims,
                axis,
                |line_idx: &mut dyn FnMut(usize) -> usize| {
                    for (i, w) in axis_w.iter().enumerate() {
                        weights[line_idx(i)] *= w;
                    }
                },
            );
        }
        Ok(HaarPlan {
            dims: dims.to_vec(),
            padded_dims,
            weights,
            rho,
            size,
            padded_size,
        })
    }

    /// The histogram shape this plan serves.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The power-of-two padded shape the transform runs over.
    pub fn padded_dims(&self) -> &[usize] {
        &self.padded_dims
    }

    /// The generalized Haar sensitivity ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The per-coefficient weight tensor over the padded domain.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// The 1-D Privelet mechanism: releases a noisy histogram whose range
/// queries have `O(log³k/ε²)` error, under unbounded ε-DP.
pub fn privelet_histogram_1d<R: Rng + ?Sized>(
    x: &[f64],
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, MechanismError> {
    privelet_histogram(x, &[x.len()], eps, rng)
}

/// The d-dimensional Privelet mechanism over a row-major histogram with
/// the given `dims`. Pads every dimension to a power of two internally.
///
/// Thin wrapper building a throwaway [`HaarPlan`]; callers releasing many
/// histograms over one shape should build the plan once and use
/// [`privelet_histogram_planned`].
pub fn privelet_histogram<R: Rng + ?Sized>(
    x: &[f64],
    dims: &[usize],
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, MechanismError> {
    let plan = HaarPlan::new(dims)?;
    privelet_histogram_planned(&plan, x, eps, rng)
}

/// Runs the Privelet mechanism against a prepared [`HaarPlan`], skipping
/// the per-call weight/padding derivation. Bit-for-bit identical to
/// [`privelet_histogram`] for the same seed.
pub fn privelet_histogram_planned<R: Rng + ?Sized>(
    plan: &HaarPlan,
    x: &[f64],
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, MechanismError> {
    if x.len() != plan.size {
        return Err(MechanismError::InvalidParameter {
            what: "histogram length must equal the product of dims",
        });
    }
    let dims = &plan.dims;
    let padded_dims = &plan.padded_dims;

    // Copy into the padded row-major buffer.
    let mut buf = vec![0.0; plan.padded_size];
    copy_block(x, dims, &mut buf, padded_dims);

    // 1-D fast path: the buffer *is* the single line, so transform it in
    // place — no per-line scratch copies. Same operations in the same
    // order as the generic path, hence bit-identical output; this is the
    // inner loop of the grid strategies (2(k−1) planned calls per fit).
    if padded_dims.len() == 1 {
        haar_forward(&mut buf);
        for (c, &w) in buf.iter_mut().zip(&plan.weights) {
            *c += laplace(rng, plan.rho / (eps.value() * w));
        }
        haar_inverse(&mut buf);
        buf.truncate(plan.size);
        return Ok(buf);
    }

    // Forward transform along each axis (weights come from the plan).
    for axis in 0..padded_dims.len() {
        let n = padded_dims[axis];
        for_each_line(
            padded_dims,
            axis,
            |line_idx: &mut dyn FnMut(usize) -> usize| {
                let mut line = vec![0.0; n];
                for (i, v) in line.iter_mut().enumerate() {
                    *v = buf[line_idx(i)];
                }
                haar_forward(&mut line);
                for (i, v) in line.into_iter().enumerate() {
                    buf[line_idx(i)] = v;
                }
            },
        );
    }

    // Noise each coefficient: Lap(ρ / (ε · weight)).
    for (c, &w) in buf.iter_mut().zip(&plan.weights) {
        *c += laplace(rng, plan.rho / (eps.value() * w));
    }

    // Inverse transform along axes (order does not matter for a tensor
    // transform; reverse for symmetry).
    for axis in (0..padded_dims.len()).rev() {
        let n = padded_dims[axis];
        for_each_line(
            padded_dims,
            axis,
            |line_idx: &mut dyn FnMut(usize) -> usize| {
                let mut line = vec![0.0; n];
                for (i, v) in line.iter_mut().enumerate() {
                    *v = buf[line_idx(i)];
                }
                haar_inverse(&mut line);
                for (i, v) in line.into_iter().enumerate() {
                    buf[line_idx(i)] = v;
                }
            },
        );
    }

    // Truncate padding.
    let mut out = vec![0.0; plan.size];
    copy_block(&buf, padded_dims, &mut out, dims);
    Ok(out)
}

/// Analytic order of Privelet's per-range-query error: `log³k/ε²` (used by
/// shape tests and the Figure-3 table; constants omitted).
pub fn privelet_range_error_order(k: usize, eps: Epsilon) -> f64 {
    let logk = (k.next_power_of_two().trailing_zeros() as f64 + 1.0).max(1.0);
    logk.powi(3) / (eps.value() * eps.value())
}

/// Copies the common block between two row-major buffers whose shapes
/// differ only by trailing padding per dimension; iteration is over the
/// smaller shape in each dimension.
fn copy_block(src: &[f64], src_dims: &[usize], dst: &mut [f64], dst_dims: &[usize]) {
    let small_dims: Vec<usize> = src_dims
        .iter()
        .zip(dst_dims)
        .map(|(&a, &b)| a.min(b))
        .collect();
    let d = small_dims.len();
    let mut coords = vec![0usize; d];
    let flat = |coords: &[usize], dims: &[usize]| -> usize {
        let mut idx = 0;
        for (c, k) in coords.iter().zip(dims) {
            idx = idx * k + c;
        }
        idx
    };
    loop {
        let (si, di) = (flat(&coords, src_dims), flat(&coords, dst_dims));
        dst[di] = src[si];
        // Odometer.
        let mut dim = d;
        loop {
            if dim == 0 {
                return;
            }
            dim -= 1;
            coords[dim] += 1;
            if coords[dim] < small_dims[dim] {
                break;
            }
            coords[dim] = 0;
        }
    }
}

/// Invokes `f` once per 1-D line along `axis` of a row-major array with
/// the given dims. `f` receives a closure mapping position-on-line to the
/// flat index.
fn for_each_line<F>(dims: &[usize], axis: usize, mut f: F)
where
    F: FnMut(&mut dyn FnMut(usize) -> usize),
{
    let d = dims.len();
    // Stride of the axis in row-major layout.
    let stride: usize = dims[axis + 1..].iter().product();
    // Iterate over all coordinates with the axis fixed at 0.
    let mut coords = vec![0usize; d];
    loop {
        // Base flat index of this line.
        let mut base = 0usize;
        for (i, (&c, &k)) in coords.iter().zip(dims).enumerate() {
            base = base * k + if i == axis { 0 } else { c };
        }
        f(&mut |i: usize| base + i * stride);
        // Odometer skipping the axis dimension.
        let mut dim = d;
        loop {
            if dim == 0 {
                return;
            }
            dim -= 1;
            if dim == axis {
                continue;
            }
            coords[dim] += 1;
            if coords[dim] < dims[dim] {
                break;
            }
            coords[dim] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn haar_roundtrip() {
        let orig = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut x = orig.clone();
        haar_forward(&mut x);
        // c0 is the average.
        assert!((x[0] - orig.iter().sum::<f64>() / 8.0).abs() < 1e-12);
        haar_inverse(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_and_sensitivity() {
        let w = haar_weights(8);
        assert_eq!(w, vec![8.0, 8.0, 4.0, 4.0, 2.0, 2.0, 2.0, 2.0]);
        assert_eq!(haar_generalized_sensitivity(8), 4.0);
        // Generalized sensitivity identity: one unit at any leaf changes
        // Σ W(c)·|Δc| by exactly ρ.
        let n = 8;
        for leaf in 0..n {
            let mut x = vec![0.0; n];
            x[leaf] = 1.0;
            haar_forward(&mut x);
            let total: f64 = x.iter().zip(&w).map(|(c, wi)| c.abs() * wi).sum();
            assert!(
                (total - haar_generalized_sensitivity(n)).abs() < 1e-12,
                "leaf {leaf}: weighted change {total}"
            );
        }
    }

    #[test]
    fn privelet_1d_unbiased() {
        let k = 64;
        let x: Vec<f64> = (0..k).map(|i| ((i * 13) % 11) as f64).collect();
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 300;
        let mut mean = vec![0.0; k];
        for _ in 0..trials {
            let est = privelet_histogram_1d(&x, eps, &mut rng).unwrap();
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        for i in 0..k {
            let avg = mean[i] / trials as f64;
            assert!((avg - x[i]).abs() < 1.5, "cell {i}: {avg} vs {}", x[i]);
        }
    }

    #[test]
    fn privelet_range_error_polylog() {
        // The total-count query error must grow far slower than the k·2/ε²
        // of a flat Laplace histogram.
        let eps = Epsilon::new(1.0).unwrap();
        // 500 trials: the sample-MSE std is ~10% of the true MSE (2ρ² = 98
        // at k=64), keeping the 2·k flat-Laplace bound ≳3σ away.
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 500;
        for k in [64usize, 512] {
            let x = vec![1.0; k];
            let truth = k as f64;
            let mut sq = 0.0;
            for _ in 0..trials {
                let est = privelet_histogram_1d(&x, eps, &mut rng).unwrap();
                let s: f64 = est.iter().sum();
                sq += (s - truth) * (s - truth);
            }
            let mse = sq / trials as f64;
            let flat_error = 2.0 * k as f64; // k cells × Var 2/ε²
            assert!(
                mse < flat_error,
                "k={k}: privelet full-range MSE {mse} worse than flat {flat_error}"
            );
        }
    }

    #[test]
    fn privelet_2d_runs_and_is_calibrated() {
        let dims = [8usize, 8];
        let x = vec![2.0; 64];
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 200;
        let mut mean = vec![0.0; 64];
        for _ in 0..trials {
            let est = privelet_histogram(&x, &dims, eps, &mut rng).unwrap();
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        for m in &mean {
            let avg = m / trials as f64;
            assert!((avg - 2.0).abs() < 3.0, "cell mean {avg}");
        }
    }

    #[test]
    fn privelet_handles_non_power_of_two() {
        let x = vec![1.0; 100];
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let est = privelet_histogram_1d(&x, eps, &mut rng).unwrap();
        assert_eq!(est.len(), 100);
        // 2-D non-power-of-two.
        let x2 = vec![1.0; 5 * 6];
        let est2 = privelet_histogram(&x2, &[5, 6], eps, &mut rng).unwrap();
        assert_eq!(est2.len(), 30);
    }

    #[test]
    fn rejects_bad_shapes() {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(privelet_histogram(&[1.0; 4], &[], eps, &mut rng).is_err());
        assert!(privelet_histogram(&[1.0; 4], &[3], eps, &mut rng).is_err());
        assert!(privelet_histogram(&[1.0; 4], &[2, 0], eps, &mut rng).is_err());
    }

    #[test]
    fn error_order_helper() {
        let eps = Epsilon::new(0.1).unwrap();
        assert!(privelet_range_error_order(4096, eps) > privelet_range_error_order(512, eps));
    }

    #[test]
    fn planned_matches_unplanned_bit_for_bit() {
        let eps = Epsilon::new(0.7).unwrap();
        for dims in [vec![37usize], vec![8, 8], vec![5, 6]] {
            let size: usize = dims.iter().product();
            let x: Vec<f64> = (0..size).map(|i| ((i * 7) % 13) as f64).collect();
            let plan = HaarPlan::new(&dims).unwrap();
            let mut rng_a = StdRng::seed_from_u64(11);
            let mut rng_b = StdRng::seed_from_u64(11);
            let a = privelet_histogram(&x, &dims, eps, &mut rng_a).unwrap();
            let b = privelet_histogram_planned(&plan, &x, eps, &mut rng_b).unwrap();
            assert_eq!(a, b, "dims {dims:?}");
        }
    }

    #[test]
    fn plan_accessors_and_validation() {
        let plan = HaarPlan::new(&[5, 6]).unwrap();
        assert_eq!(plan.dims(), &[5, 6]);
        assert_eq!(plan.padded_dims(), &[8, 8]);
        assert_eq!(plan.rho(), 16.0);
        assert_eq!(plan.weights().len(), 64);
        assert!(HaarPlan::new(&[]).is_err());
        assert!(HaarPlan::new(&[4, 0]).is_err());
        // Wrong input length against a valid plan.
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(privelet_histogram_planned(&plan, &[1.0; 4], eps, &mut rng).is_err());
    }
}
