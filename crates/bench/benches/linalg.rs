//! Criterion benchmarks of the linear-algebra substrate at the sizes the
//! lower-bound machinery uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use blowfish_linalg::{eigh, pseudoinverse, Cholesky, Matrix};

fn random_matrix(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(n, m, (0..n * m).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .expect("shape matches")
}

fn random_spd(n: usize, seed: u64) -> Matrix {
    let a = random_matrix(n, n, seed);
    let mut g = a.gram();
    for i in 0..n {
        g[(i, i)] += n as f64;
    }
    g
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    group.sample_size(10);

    let a = random_matrix(128, 128, 1);
    let b = random_matrix(128, 128, 2);
    group.bench_function(BenchmarkId::new("matmul", 128), |bch| {
        bch.iter(|| a.matmul(&b).expect("shapes agree"));
    });
    group.bench_function(BenchmarkId::new("matmul_naive", 128), |bch| {
        bch.iter(|| a.matmul_naive(&b).expect("shapes agree"));
    });

    let tall = random_matrix(128, 64, 5);
    group.bench_function(BenchmarkId::new("gram_128x64", 64), |bch| {
        bch.iter(|| tall.gram());
    });
    group.bench_function(BenchmarkId::new("gram_t_64x128", 64), |bch| {
        bch.iter(|| tall.transpose().gram_t());
    });

    let spd = random_spd(128, 3);
    group.bench_function(BenchmarkId::new("cholesky", 128), |bch| {
        bch.iter(|| Cholesky::factor(&spd).expect("SPD"));
    });

    let factored = Cholesky::factor(&spd).expect("SPD");
    group.bench_function(BenchmarkId::new("cholesky_inverse", 128), |bch| {
        bch.iter(|| factored.inverse().expect("invertible"));
    });

    group.bench_function(BenchmarkId::new("eigh", 128), |bch| {
        bch.iter(|| eigh(&spd).expect("symmetric"));
    });

    let wide = random_matrix(64, 128, 4);
    group.bench_function(BenchmarkId::new("pseudoinverse_64x128", 64), |bch| {
        bch.iter(|| pseudoinverse(&wide).expect("full row rank"));
    });
    // The matrix-mechanism planning shape: a tall full-column-rank
    // strategy, A⁺ via Cholesky on the normal equations.
    group.bench_function(BenchmarkId::new("pseudoinverse_128x64", 128), |bch| {
        bch.iter(|| pseudoinverse(&tall).expect("full column rank"));
    });

    group.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
