//! The plan-once/answer-many hot path of the `blowfish-engine` layer.
//!
//! Three questions, matching the serving story:
//!
//! 1. **cold vs cached plan** — how much a fit costs when the policy
//!    artifacts (θ-line spanner + incidence, grid Haar plans) are
//!    re-derived per request vs served from a session's [`PlanCache`];
//! 2. **serve path** — answering 10,000 random ranges from one fitted
//!    `Estimate` (prefix sums: O(1) per query);
//! 3. **plan cost in isolation** — building the session artifacts.
//!
//! The cached numbers are asserted to come from a cache that derived each
//! artifact exactly once (see the `PlanStats` assertions), so this bench
//! doubles as a regression guard for silent re-planning. After measuring,
//! the bench *asserts* that cached-plan paths beat cold-plan paths (via
//! the shim's readable results), so a cache-layer perf regression fails
//! `cargo bench --bench engine` — CI runs it with `BLOWFISH_BENCH_QUICK=1`
//! as a smoke step. Results are snapshotted in `BENCH_engine.json` /
//! `BENCH_plan.json` at the repo root.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_core::{DataVector, Domain, Epsilon};
use blowfish_engine::{MatrixStrategyKind, MechanismSpec, Policy, Session};
use blowfish_linalg::SparseMatrix;
use blowfish_mechanisms::{
    hierarchical_strategy, hierarchical_strategy_sparse, identity_strategy, GramSolver,
    MatrixMechanism, SparseMatrixMechanism,
};
use blowfish_strategies::ThetaEstimator;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);

    let eps = Epsilon::new(0.5).expect("valid ε");

    // --- θ-line strategy over k = 512, θ = 4 (the Figure 8d setting).
    let k = 512;
    let theta = 4;
    let x = DataVector::new(Domain::one_dim(k), vec![2.0; k]).expect("uniform");
    let spec = MechanismSpec::ThetaLine {
        theta,
        estimator: ThetaEstimator::Laplace,
    };

    // Cold: plan + fit per request — what per-call strategy construction
    // costs without the engine.
    g.bench_function(BenchmarkId::new("theta_line_cold_plan_fit", k), |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let s = Session::with_policy(Domain::one_dim(k), Policy::Theta1d { theta }, eps)
                .expect("session");
            let m = s.mechanism(&spec).expect("mechanism");
            black_box(m.fit(&x, &mut rng).expect("fit"))
        })
    });

    // Cached: the session plans once; iterations only fit.
    let session =
        Session::with_policy(Domain::one_dim(k), Policy::Theta1d { theta }, eps).expect("session");
    let mech = session.mechanism(&spec).expect("mechanism");
    g.bench_function(BenchmarkId::new("theta_line_cached_plan_fit", k), |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(mech.fit(&x, &mut rng).expect("fit")))
    });
    assert_eq!(
        session.cache().stats().theta_line_builds(),
        1,
        "cached fits must not re-derive the spanner/incidence artifact"
    );

    // Plan cost in isolation.
    g.bench_function(BenchmarkId::new("theta_line_plan_only", k), |b| {
        b.iter(|| {
            let s = Session::with_policy(Domain::one_dim(k), Policy::Theta1d { theta }, eps)
                .expect("session");
            black_box(s.mechanism(&spec).expect("mechanism"))
        })
    });

    // Serve: 10,000 random ranges from one fitted estimate — the batched
    // `answer_many` entry point (one dimensionality dispatch per batch)
    // vs the per-query `answer` loop it replaced.
    let d = Domain::one_dim(k);
    let mut qrng = StdRng::seed_from_u64(2);
    let specs = blowfish_core::random_range_specs(&d, 10_000, &mut qrng);
    let mut rng = StdRng::seed_from_u64(3);
    let est = mech.fit(&x, &mut rng).expect("fit");
    g.bench_function("answer_10k_ranges", |b| {
        b.iter(|| black_box(est.answer_many(&specs).expect("answers")))
    });
    g.bench_function("answer_10k_ranges_per_query", |b| {
        b.iter(|| {
            let per: Result<Vec<f64>, _> = specs.iter().map(|q| est.answer(q)).collect();
            black_box(per.expect("answers"))
        })
    });

    // --- Grid strategy over 64×64 (Haar plans cached vs re-derived).
    let kg = 64;
    let xg = DataVector::new(Domain::square(kg), vec![1.0; kg * kg]).expect("uniform");
    let gsession = Session::with_policy(Domain::square(kg), Policy::Theta2d { theta: 1 }, eps)
        .expect("session");
    let gmech = gsession.mechanism(&MechanismSpec::Grid).expect("mechanism");
    g.bench_function(BenchmarkId::new("grid_cold_plan_fit", kg), |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let s = Session::with_policy(Domain::square(kg), Policy::Theta2d { theta: 1 }, eps)
                .expect("session");
            let m = s.mechanism(&MechanismSpec::Grid).expect("mechanism");
            black_box(m.fit(&xg, &mut rng).expect("fit"))
        })
    });
    g.bench_function(BenchmarkId::new("grid_cached_plan_fit", kg), |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(gmech.fit(&xg, &mut rng).expect("fit")))
    });
    assert_eq!(
        gsession.cache().stats().haar_plan_builds(),
        1,
        "cached grid fits must not re-derive the Haar plans"
    );
    // Why grid cold ≈ cached in wall time: the structural hoist is real —
    // every cold request derives a fresh Haar plan pair, the cached
    // session derived exactly one across all its fits (asserted below via
    // PlanStats) — but at k = 64 the plan pair is ~2·64 weights while the
    // fit itself runs 2(k−1) = 126 length-64 Privelet transforms, so the
    // hoisted work is ~0.1% of a fit and invisible next to run-to-run
    // noise. The distinction is therefore asserted structurally, not by
    // timing.
    {
        let mut cold_builds = 0;
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..3 {
            let s = Session::with_policy(Domain::square(kg), Policy::Theta2d { theta: 1 }, eps)
                .expect("session");
            let m = s.mechanism(&MechanismSpec::Grid).expect("mechanism");
            black_box(m.fit(&xg, &mut rng).expect("fit"));
            cold_builds += s.cache().stats().haar_plan_builds();
        }
        assert_eq!(
            cold_builds, 3,
            "each cold grid request derives its own Haar plan pair"
        );
        assert_eq!(
            gsession.cache().stats().haar_plan_builds(),
            1,
            "the cached session never re-derived its pair"
        );
    }

    // --- Matrix-mechanism pseudoinverse (A⁺) artifact: the dominant cost
    // of a matrix-mechanism release is the SVD behind A⁺; the cache pays
    // it once per strategy key.
    let km = 64;
    let w = identity_strategy(km);
    let strat_a = hierarchical_strategy(km);
    g.bench_function(BenchmarkId::new("pinv_cold_plan_release", km), |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let mm = MatrixMechanism::new(w.clone(), strat_a.clone()).expect("supported");
            black_box(mm.noise_only(eps, &mut rng).expect("noise"))
        })
    });
    let cache = session.cache();
    g.bench_function(BenchmarkId::new("pinv_cached_plan_release", km), |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let mm = cache
                .matrix_mechanism("identity/hierarchical/64", || {
                    MatrixMechanism::new(w.clone(), strat_a.clone())
                })
                .expect("supported");
            black_box(mm.noise_only(eps, &mut rng).expect("noise"))
        })
    });
    assert_eq!(
        cache.stats().pseudoinverse_builds(),
        1,
        "cached releases must not re-derive the A⁺ pseudoinverse"
    );

    g.finish();

    // --- Sparse planning at large k: the domain sizes the dense path
    // cannot reach (a dense A⁺ at k = 65 536 is 34 GB). Plans route
    // through the CSR strategy (`SparseMatrixMechanism`); the gram is
    // factored once at plan time by the cached sparse Cholesky
    // (`matrix_hist_factored_release`, two O(nnz(L)) triangular solves
    // per release), with the explicitly CG-pinned release kept as the
    // pre-factorization comparison point (`matrix_hist_sparse_release`,
    // same key as the committed PR 7 baseline). Snapshotted into
    // BENCH_plan.json (`plan_sparse_ns`) and gated in CI.
    let mut gs = c.benchmark_group("plan-sparse");
    gs.sample_size(10);
    let mspec = MechanismSpec::MatrixHist {
        strategy: MatrixStrategyKind::Hierarchical,
    };
    let mut sparse_release_ids = Vec::new();
    let mut factored_release_ids = Vec::new();
    for ks in [4096usize, 16_384, 65_536] {
        let theta = 4;
        gs.bench_function(BenchmarkId::new("theta_line_sparse_plan", ks), |b| {
            b.iter(|| {
                let s = Session::with_policy(Domain::one_dim(ks), Policy::Theta1d { theta }, eps)
                    .expect("session");
                black_box(s.mechanism(&mspec).expect("mechanism"))
            })
        });

        // Factor-once cost in isolation: Haar-rotated gram + symbolic +
        // numeric sparse Cholesky for the hierarchical strategy. Paid
        // once per (strategy, k) at plan time, amortized over every
        // release the session serves afterwards.
        gs.bench_function(BenchmarkId::new("gram_factorization", ks), |b| {
            b.iter(|| {
                let a = hierarchical_strategy_sparse(ks);
                black_box(GramSolver::plan(
                    &a,
                    SparseMatrixMechanism::DEFAULT_CG_OPTIONS,
                ))
            })
        });

        let ss = Session::with_policy(Domain::one_dim(ks), Policy::Theta1d { theta }, eps)
            .expect("session");
        let sm = ss.mechanism(&mspec).expect("mechanism");
        assert_eq!(
            ss.cache().stats().sparse_matrix_builds(),
            1,
            "k = {ks} > SPARSE_DOMAIN_THRESHOLD must plan through the sparse path"
        );
        assert_eq!(
            ss.cache().stats().pseudoinverse_builds(),
            0,
            "the large-k plan must never materialize a dense A⁺"
        );
        assert_eq!(
            ss.cache().stats().sparse_factorizations(),
            1,
            "k = {ks} hierarchical plan must keep its sparse Cholesky factor"
        );
        let xs = DataVector::new(Domain::one_dim(ks), vec![2.0; ks]).expect("uniform");

        // The session-served release: two O(nnz(L)) triangular solves
        // against the cached factor per fit.
        gs.bench_function(BenchmarkId::new("matrix_hist_factored_release", ks), |b| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| black_box(sm.fit(&xs, &mut rng).expect("fit")))
        });
        factored_release_ids.push(format!("plan-sparse/matrix_hist_factored_release/{ks}"));
        assert_eq!(
            ss.cache().solver_stats().cg_iterations,
            0,
            "k = {ks} factored releases must not fall back to CG iterations"
        );
        assert_eq!(
            ss.cache().stats().sparse_factorizations(),
            1,
            "k = {ks} repeated releases must reuse the one cached factorization"
        );

        // The pre-factorization path, pinned explicitly to CG so this key
        // keeps measuring what its committed baseline measured (each
        // release = one Jacobi-PCG solve of AᵀA x = Aᵀỹ).
        let cg_a = hierarchical_strategy_sparse(ks);
        let cg_solver = Arc::new(GramSolver::plan_cg(
            &cg_a,
            SparseMatrixMechanism::DEFAULT_CG_OPTIONS,
        ));
        let cgm = SparseMatrixMechanism::with_solver(SparseMatrix::identity(ks), cg_a, cg_solver)
            .expect("cg mechanism");
        let xv = vec![2.0; ks];
        gs.bench_function(BenchmarkId::new("matrix_hist_sparse_release", ks), |b| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| black_box(cgm.run(&xv, eps, &mut rng).expect("run")))
        });
        sparse_release_ids.push(format!("plan-sparse/matrix_hist_sparse_release/{ks}"));
        // Satellite note: the CG scratch workspace is reused across
        // releases — allocation count must flatten after warm-up.
        let allocs = cgm.scratch_allocations();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..3 {
            cgm.run(&xv, eps, &mut rng).expect("run");
        }
        assert_eq!(
            cgm.scratch_allocations(),
            allocs,
            "k = {ks} warm CG releases must reuse the cached solve scratch"
        );
        eprintln!(
            "plan-sparse/{ks}: scratch allocations after warm-up = {allocs} (flat across releases)"
        );
    }
    gs.finish();

    // Machine-readable results for the CI bench-regression gate (no-op
    // unless BLOWFISH_BENCH_SNAPSHOT_DIR is set; shim extension).
    if let Some(path) = c.write_snapshot("engine") {
        eprintln!("bench snapshot written to {}", path.display());
    }

    // Perf invariants: the cache layer must keep paying off. These fail
    // the bench binary (and the CI `BLOWFISH_BENCH_QUICK=1` smoke step)
    // if cached-plan serving regresses to cold-plan cost. Margins are
    // deliberately loose — 2x against a ~7x measured θ-line ratio and 5x
    // against a ~55x measured pinv ratio (post-optimization; see
    // BENCH_plan.json) — so noisy quick-mode timings cannot flake.
    //
    // NOTE: `is_test_mode`/`mean_ns` are extensions of the offline
    // criterion *shim* — when swapping the real criterion crate in,
    // delete this block (upstream tracks regressions via its own
    // baseline machinery).
    if !c.is_test_mode() {
        let mean = |id: &str| {
            c.mean_ns(id)
                .unwrap_or_else(|| panic!("no timing for {id}"))
        };
        let (cold, cached) = (
            mean("engine/theta_line_cold_plan_fit/512"),
            mean("engine/theta_line_cached_plan_fit/512"),
        );
        assert!(
            cached * 2.0 < cold,
            "θ-line cached fit ({cached:.0} ns) no longer clearly beats cold plan+fit ({cold:.0} ns)"
        );
        let (cold, cached) = (
            mean("engine/pinv_cold_plan_release/64"),
            mean("engine/pinv_cached_plan_release/64"),
        );
        assert!(
            cached * 5.0 < cold,
            "cached A⁺ release ({cached:.0} ns) no longer clearly beats cold pseudoinverse derivation ({cold:.0} ns)"
        );
        // Sparse releases must scale like O(nnz) = O(k log k): going from
        // k = 4096 to k = 65 536 multiplies nnz by ~21, so a 100x margin
        // passes with headroom while an accidental O(k²)+ fallback
        // (≥256x) fails.
        let (small, large) = (mean(&sparse_release_ids[0]), mean(&sparse_release_ids[2]));
        assert!(
            large < small * 100.0,
            "sparse release no longer scales like O(nnz): k=4096 {small:.0} ns vs k=65536 {large:.0} ns"
        );
        // Factor-once payoff, gated two ways: against the live CG
        // measurement on this machine, and against the committed PR 7
        // baseline (BENCH_plan.json plan_sparse_ns, 131.41 ms for the
        // k = 65 536 CG release). Both must show ≥10x.
        let factored = mean(&factored_release_ids[2]);
        let cg_live = mean(&sparse_release_ids[2]);
        assert!(
            factored * 10.0 < cg_live,
            "factored k=65536 release ({factored:.0} ns) is no longer ≥10x faster than the live CG release ({cg_live:.0} ns)"
        );
        const PR7_CG_RELEASE_65536_NS: f64 = 131_411_740.5;
        assert!(
            factored * 10.0 < PR7_CG_RELEASE_65536_NS,
            "factored k=65536 release ({factored:.0} ns) is no longer ≥10x faster than the committed CG baseline ({PR7_CG_RELEASE_65536_NS:.0} ns)"
        );
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
