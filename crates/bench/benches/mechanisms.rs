//! Criterion micro-benchmarks of the DP mechanism substrates at the
//! paper's domain scale (k = 4096).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_core::Epsilon;
use blowfish_data::{dataset, DatasetId};
use blowfish_mechanisms::{
    dawa_histogram, hierarchical_histogram, laplace_histogram, privelet_histogram_1d, DawaOptions,
};

fn bench_mechanisms(c: &mut Criterion) {
    let x = dataset(DatasetId::D);
    let eps = Epsilon::new(0.1).expect("valid");
    let mut group = c.benchmark_group("mechanisms_k4096");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("laplace", 4096), |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| laplace_histogram(x.counts(), 1.0, eps, &mut rng).expect("laplace"));
    });
    group.bench_function(BenchmarkId::new("hierarchical", 4096), |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| hierarchical_histogram(x.counts(), eps, &mut rng).expect("hierarchical"));
    });
    group.bench_function(BenchmarkId::new("privelet", 4096), |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| privelet_histogram_1d(x.counts(), eps, &mut rng).expect("privelet"));
    });
    group.bench_function(BenchmarkId::new("dawa", 4096), |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| dawa_histogram(x.counts(), eps, DawaOptions::default(), &mut rng).expect("dawa"));
    });
    group.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
