//! Criterion benchmarks of the end-to-end Blowfish strategies (one full
//! private histogram release each, at the experiment scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_core::Epsilon;
use blowfish_data::{dataset, DatasetId};
use blowfish_strategies::{
    grid_blowfish_histogram, line_blowfish_histogram, ThetaEstimator, ThetaLineStrategy,
    TreeEstimator,
};

fn bench_strategies(c: &mut Criterion) {
    let eps = Epsilon::new(0.1).expect("valid");
    let mut group = c.benchmark_group("strategies");
    group.sample_size(10);

    let x1d = dataset(DatasetId::D);
    group.bench_function(BenchmarkId::new("line_laplace", 4096), |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            line_blowfish_histogram(&x1d, eps, TreeEstimator::Laplace, &mut rng).expect("line")
        });
    });
    group.bench_function(BenchmarkId::new("line_dawa_cons", 4096), |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            line_blowfish_histogram(&x1d, eps, TreeEstimator::DawaConsistent, &mut rng)
                .expect("line")
        });
    });

    let theta = ThetaLineStrategy::new(4096, 4).expect("k > θ");
    group.bench_function(BenchmarkId::new("theta4_group_privelet", 4096), |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            theta
                .histogram(&x1d, eps, ThetaEstimator::GroupPrivelet, &mut rng)
                .expect("theta")
        });
    });

    let x2d = dataset(DatasetId::T100);
    group.bench_function(BenchmarkId::new("grid_privelet", 100 * 100), |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| grid_blowfish_histogram(&x2d, eps, &mut rng).expect("grid"));
    });

    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
