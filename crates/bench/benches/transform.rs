//! Criterion benchmarks of the transformational-equivalence machinery:
//! `P_G` construction, query transformation, and the `x_G` solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use blowfish_core::{DataVector, Domain, Incidence, LinearQuery, PolicyGraph};

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group.sample_size(10);

    // P_G construction for the three policy families.
    group.bench_function(BenchmarkId::new("incidence_line", 4096), |b| {
        let g = PolicyGraph::line(4096).expect("valid");
        b.iter(|| Incidence::new(&g).expect("incidence"));
    });
    group.bench_function(BenchmarkId::new("incidence_theta4", 4096), |b| {
        let g = PolicyGraph::theta_line(4096, 4).expect("valid");
        b.iter(|| Incidence::new(&g).expect("incidence"));
    });
    group.bench_function(BenchmarkId::new("incidence_grid", 100 * 100), |b| {
        let g = PolicyGraph::distance_threshold(Domain::square(100), 1).expect("valid");
        b.iter(|| Incidence::new(&g).expect("incidence"));
    });

    // Tree solve (subtree sums) at k = 4096.
    let line = PolicyGraph::line(4096).expect("valid");
    let inc = Incidence::new(&line).expect("incidence");
    let x = DataVector::new(
        Domain::one_dim(4096),
        (0..4096).map(|i| (i % 17) as f64).collect(),
    )
    .expect("shape");
    let reduced = inc.reduce_database(&x).expect("reduce");
    group.bench_function(BenchmarkId::new("solve_tree_line", 4096), |b| {
        b.iter(|| inc.solve_tree(&reduced).expect("tree"));
    });

    // Min-norm (CG) solve on a 40x40 grid policy.
    let grid = PolicyGraph::distance_threshold(Domain::square(40), 1).expect("valid");
    let ginc = Incidence::new(&grid).expect("incidence");
    let gx = DataVector::new(
        Domain::square(40),
        (0..1600).map(|i| (i % 11) as f64).collect(),
    )
    .expect("shape");
    let greduced = ginc.reduce_database(&gx).expect("reduce");
    group.bench_function(BenchmarkId::new("min_norm_grid", 40 * 40), |b| {
        b.iter(|| ginc.min_norm_solution(&greduced).expect("cg"));
    });

    // Query transformation: a range query through P_G.
    let q = LinearQuery::range(4096, 1000, 3000).expect("valid range");
    group.bench_function(BenchmarkId::new("transform_range_query", 4096), |b| {
        b.iter(|| inc.transform_query(&q).expect("transform"));
    });

    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
