//! Multi-tenant service throughput: N client threads vs one.
//!
//! One [`Service`] hosts four tenants sharing a `G^4_256` θ-line policy
//! (so the shared plan cache holds exactly one strategy artifact across
//! all of them) with effectively unbounded budgets. Two workloads:
//!
//! * **fit-dominated** — 512 release requests round-robined over the
//!   tenants: the realistic "many tenants releasing estimates" traffic
//!   where each request carries real mechanism work;
//! * **mixed** — alternating releases and 200-query answer batches
//!   against stored estimates (the `answer_many` O(1)-per-query path).
//!
//! Each workload is served twice: sequentially (`Service::handle` in a
//! loop — one client thread) and fanned across cores
//! (`Service::handle_many` → `parallel_map` — N client threads against
//! the same `&Service`). After measuring, the bench *asserts* that
//! multi-threaded fit throughput is at least 2x single-threaded (when
//! ≥ 4 cores are available), and that `PlanStats` still shows the shared
//! artifact was derived exactly once under all that concurrency — so a
//! service-layer scalability regression fails `cargo bench --bench
//! service` (and the CI `BLOWFISH_BENCH_QUICK=1` smoke step) instead of
//! rotting silently. Results are snapshotted in `BENCH_service.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_core::{DataVector, Domain, Epsilon, PolicyGraph};
use blowfish_engine::{MechanismSpec, Request, Service, Task, TenantConfig};
use blowfish_strategies::ThetaEstimator;

const TENANTS: usize = 4;
const K: usize = 256;
const THETA: usize = 4;
const REQUESTS: usize = 512;

fn tenant_id(i: usize) -> String {
    format!("tenant-{}", i % TENANTS)
}

fn build_service() -> Service {
    let service = Service::new();
    let graph = PolicyGraph::theta_line(K, THETA).expect("policy");
    for t in 0..TENANTS {
        let counts: Vec<f64> = (0..K).map(|i| ((i * 13 + t * 7) % 17) as f64).collect();
        service
            .add_tenant(TenantConfig {
                id: tenant_id(t),
                graph: graph.clone(),
                eps: Epsilon::new(0.5).expect("ε"),
                // Effectively unbounded: the bench measures throughput,
                // not exhaustion (fits across all iterations must admit).
                budget: Epsilon::new(1e12).expect("ε"),
                data: DataVector::new(Domain::one_dim(K), counts).expect("data"),
            })
            .expect("tenant");
    }
    service
}

fn fit_request(i: usize) -> Request {
    Request::Fit {
        tenant: tenant_id(i),
        spec: Some(MechanismSpec::ThetaLine {
            theta: THETA,
            estimator: ThetaEstimator::Laplace,
        }),
        task: Task::Histogram,
        seed: i as u64,
        handle: format!("h{}", i % 8),
    }
}

fn fit_requests(n: usize) -> Vec<Request> {
    (0..n).map(fit_request).collect()
}

fn mixed_requests(n: usize) -> Vec<Request> {
    let d = Domain::one_dim(K);
    let mut qrng = StdRng::seed_from_u64(42);
    let queries = blowfish_core::random_range_specs(&d, 200, &mut qrng);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                fit_request(i)
            } else {
                Request::Answer {
                    tenant: tenant_id(i),
                    // The warm-up fitted handle h<t> for tenant-<t>.
                    handle: format!("h{}", i % TENANTS),
                    queries: queries.clone(),
                }
            }
        })
        .collect()
}

fn serve_serial(service: &Service, requests: &[Request]) -> usize {
    let mut ok = 0;
    for request in requests {
        service.handle(request).expect("request");
        ok += 1;
    }
    ok
}

fn serve_parallel(service: &Service, requests: &[Request]) -> usize {
    let results = service.handle_many(requests);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, requests.len(), "all bench requests must be admitted");
    ok
}

fn bench_service(c: &mut Criterion) {
    let mut g = c.benchmark_group("service");
    g.sample_size(10);

    let service = build_service();
    // Warm-up: derive the one shared artifact and store an answerable
    // estimate h<t> per tenant, so answer requests always resolve.
    for request in fit_requests(TENANTS) {
        service.handle(&request).expect("warm-up fit");
    }

    let fits = fit_requests(REQUESTS);
    g.bench_function("fit_512_serial", |b| {
        b.iter(|| black_box(serve_serial(&service, &fits)))
    });
    g.bench_function("fit_512_parallel", |b| {
        b.iter(|| black_box(serve_parallel(&service, &fits)))
    });

    let mixed = mixed_requests(REQUESTS);
    g.bench_function("mixed_512_serial", |b| {
        b.iter(|| black_box(serve_serial(&service, &mixed)))
    });
    g.bench_function("mixed_512_parallel", |b| {
        b.iter(|| black_box(serve_parallel(&service, &mixed)))
    });

    g.finish();

    // Structural invariant: all that concurrent traffic derived the
    // shared θ-line artifact exactly once, across tenants and threads.
    assert_eq!(
        service.cache().stats().theta_line_builds(),
        1,
        "the four tenants must share one cached strategy artifact"
    );

    // Perf invariant: fanning clients across cores must pay. The 2x
    // floor is deliberately loose: fits share no mutable state beyond
    // O(1) ledger/memo lock windows, so the fit workload is expected to
    // scale near-linearly with client threads. The assertion is gated to
    // keep it from flaking where it cannot hold honestly:
    //
    // * < 4 cores — skipped entirely (on one core `parallel_map` falls
    //   back to the serial path and the two sides time identically; see
    //   BENCH_service.json for recorded environments);
    // * quick mode (`BLOWFISH_BENCH_QUICK=1`, the CI smoke) — the ~10 ms
    //   window times each batch over ~1 iteration, so on shared 4-vCPU
    //   CI runners a noisy-neighbor run could land under 2x with no real
    //   regression: quick mode asserts the 2x floor only with ≥ 8 cores
    //   and otherwise checks the weaker "parallel must not *lose* to
    //   serial by more than 25%" sanity bound. Full `cargo bench
    //   --bench service` on ≥ 4 cores always enforces the 2x floor.
    //
    // NOTE: `is_test_mode`/`mean_ns` are extensions of the offline
    // criterion *shim* — when swapping the real criterion crate in,
    // delete this block (upstream tracks regressions via baselines).
    // Machine-readable results for the CI bench-regression gate (no-op
    // unless BLOWFISH_BENCH_SNAPSHOT_DIR is set; shim extension).
    if let Some(path) = c.write_snapshot("service") {
        eprintln!("bench snapshot written to {}", path.display());
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let quick = criterion::quick_mode();
    if !c.is_test_mode() && threads >= 4 {
        let mean = |id: &str| {
            c.mean_ns(id)
                .unwrap_or_else(|| panic!("no timing for {id}"))
        };
        let (serial, parallel) = (
            mean("service/fit_512_serial"),
            mean("service/fit_512_parallel"),
        );
        if !quick || threads >= 8 {
            assert!(
                parallel * 2.0 < serial,
                "multi-threaded service fit throughput ({parallel:.0} ns/batch) is no longer \
                 ≥ 2x single-threaded ({serial:.0} ns/batch)"
            );
        } else {
            assert!(
                parallel < serial * 1.25,
                "multi-threaded service fit ({parallel:.0} ns/batch) lost outright to \
                 single-threaded ({serial:.0} ns/batch) on {threads} cores"
            );
        }
    }
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
