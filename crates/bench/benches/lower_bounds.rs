//! Criterion benchmarks of the Figure-10 SVD lower-bound computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use blowfish_core::{range_gram, range_gram_1d, Delta, Domain, Epsilon, PolicyGraph};
use blowfish_strategies::svd_lower_bound;

fn bench_lower_bounds(c: &mut Criterion) {
    let eps = Epsilon::new(1.0).expect("valid");
    let delta = Delta::new(0.001).expect("valid");
    let mut group = c.benchmark_group("lower_bounds");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("fig10a_theta4", 100), |b| {
        let gram = range_gram_1d(100);
        let g = PolicyGraph::theta_line(100, 4).expect("valid");
        b.iter(|| svd_lower_bound(&gram, &g, eps, delta).expect("bound"));
    });

    group.bench_function(BenchmarkId::new("fig10a_theta16", 200), |b| {
        let gram = range_gram_1d(200);
        let g = PolicyGraph::theta_line(200, 16).expect("valid");
        b.iter(|| svd_lower_bound(&gram, &g, eps, delta).expect("bound"));
    });

    group.bench_function(BenchmarkId::new("fig10b_grid_theta2", 81), |b| {
        let d2 = Domain::square(9);
        let gram = range_gram(&d2).expect("small domain");
        let g = PolicyGraph::distance_threshold(d2.clone(), 2).expect("valid");
        b.iter(|| svd_lower_bound(&gram, &g, eps, delta).expect("bound"));
    });

    // Bounded DP (complete graph) exercises the O(k³) eigenvalue trick
    // that avoids the |E|² Gram matrix.
    group.bench_function(BenchmarkId::new("fig10b_bounded_dp", 81), |b| {
        let d2 = Domain::square(9);
        let gram = range_gram(&d2).expect("small domain");
        let g = PolicyGraph::complete(81).expect("valid");
        b.iter(|| svd_lower_bound(&gram, &g, eps, delta).expect("bound"));
    });

    group.finish();
}

criterion_group!(benches, bench_lower_bounds);
criterion_main!(benches);
