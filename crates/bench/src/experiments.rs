//! The shared experiment loops behind Figures 8 and 9, driven through the
//! `blowfish-engine` registry.
//!
//! Section 6 protocol: for each task, compare `ε/2`-differentially-private
//! baselines against `(ε, G)`-Blowfish strategies, reporting average mean
//! squared error per query over independent runs (the paper uses 5) on
//! 10,000 random range queries (or the full histogram workload).
//!
//! Every panel opens one engine [`Session`] per dataset — planning the
//! policy artifacts once — and iterates the registry lineup for its task,
//! so the panels and any future serving path share one code path and one
//! mechanism catalogue. Per-cell seeds are derived exactly as the
//! pre-engine harness did, keeping panel outputs bit-identical.

use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_core::{
    measure_error, DataVector, Domain, Epsilon, ErrorReport, RangeQuery, Workload,
};
use blowfish_data::{aggregate_1d, dataset, DatasetId};
use blowfish_engine::{Policy, Session, Task};
use blowfish_strategies::{true_ranges_1d, true_ranges_2d, Estimate, Mechanism};

use crate::error::BenchError;
use crate::report::Measurement;

/// Experiment configuration shared by every panel.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Total Blowfish budget ε (baselines run at ε/2).
    pub epsilon: f64,
    /// Independent runs per (dataset, algorithm) cell (paper: 5).
    pub trials: usize,
    /// Random range queries per run (paper: 10,000).
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// Paper defaults at the given ε.
    pub fn paper(epsilon: f64) -> Self {
        Config {
            epsilon,
            trials: 5,
            queries: 10_000,
            seed: 0x5EED,
        }
    }

    fn eps(&self) -> Result<Epsilon, BenchError> {
        Ok(Epsilon::new(self.epsilon)?)
    }
}

/// Runs `trials` independent executions of a fallible estimator and
/// reports the per-trial MSE statistics with [`BenchError`] propagation.
/// Shared by the panel loops, `fig3`, and `ablations`; the statistics
/// themselves are delegated to core's `measure_error` so they cannot
/// drift between the bench harnesses and the core error harness.
pub fn measure_bench<F>(truth: &[f64], trials: usize, mut run: F) -> Result<ErrorReport, BenchError>
where
    F: FnMut(usize) -> Result<Vec<f64>, BenchError>,
{
    if trials == 0 || truth.is_empty() {
        return Err(BenchError::Config {
            what: "trials must be positive and truth non-empty",
        });
    }
    // Collect the fallible estimates first (BenchError), then feed them
    // to the infallible core statistics loop (CoreError).
    let mut estimates = Vec::with_capacity(trials);
    for t in 0..trials {
        estimates.push(run(t)?);
    }
    let mut next = estimates.into_iter();
    Ok(measure_error(truth, trials, |_| {
        Ok(next.next().expect("one estimate per trial"))
    })?)
}

/// Runs one (dataset, mechanism) cell: `trials` independent fits, each
/// answered through the fitted [`Estimate`].
fn run_cell(
    x: &DataVector,
    truth: &[f64],
    mech: &dyn Mechanism,
    answer: impl Fn(&Estimate) -> Result<Vec<f64>, BenchError>,
    trials: usize,
    seed: u64,
) -> Result<(f64, f64), BenchError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let report = measure_bench(truth, trials, |_| {
        let est = mech.fit(x, &mut rng)?;
        answer(&est)
    })?;
    Ok((report.mean_mse, report.std_mse))
}

/// One dataset column of a panel: the session, the data/truth pair, and
/// the per-cell seed base (master seed ⊕ column salt; the algorithm-name
/// hash is mixed in per registry entry, reproducing the historical
/// per-cell seeds exactly).
struct PanelColumn<'a> {
    session: &'a Session,
    task: Task,
    x: &'a DataVector,
    truth: &'a [f64],
    column: &'a str,
    trials: usize,
    seed_base: u64,
}

impl PanelColumn<'_> {
    /// Runs every registry mechanism of the column's task, fanning the
    /// cells out across cores ([`blowfish_engine::parallel_map`]). Each
    /// cell's RNG is seeded exactly as the serial harness seeded it, and
    /// cells never share a random stream, so the measurements are
    /// bit-identical to the historical serial loop (pinned by
    /// `tests/engine_equivalence.rs`).
    fn run(
        &self,
        answer: impl Fn(&Estimate) -> Result<Vec<f64>, BenchError> + Sync,
        out: &mut Vec<Measurement>,
    ) -> Result<(), BenchError> {
        let specs = self.session.registry(self.task)?;
        let cells =
            blowfish_engine::parallel_map(&specs, |_, spec| -> Result<Measurement, BenchError> {
                let mech = self.session.mechanism(spec)?;
                let name = spec.label();
                let (mse, std) = run_cell(
                    self.x,
                    self.truth,
                    mech.as_ref(),
                    &answer,
                    self.trials,
                    self.seed_base ^ hash(name),
                )?;
                Ok(Measurement {
                    column: self.column.to_string(),
                    algorithm: name.to_string(),
                    mse,
                    std,
                })
            });
        for cell in cells {
            out.push(cell?);
        }
        Ok(())
    }
}

/// The Hist panel (Figures 8b/8f, 9b/9f): the identity workload on
/// datasets A–G under `G¹_k`.
pub fn hist_panel(cfg: &Config) -> Result<Vec<Measurement>, BenchError> {
    let eps = cfg.eps()?;
    let mut out = Vec::new();
    for id in DatasetId::one_dimensional() {
        let x = dataset(id);
        let truth = x.counts().to_vec();
        let session = Session::with_policy(x.domain().clone(), Policy::Theta1d { theta: 1 }, eps)?;
        PanelColumn {
            session: &session,
            task: Task::Histogram,
            x: &x,
            truth: &truth,
            column: id.name(),
            trials: cfg.trials,
            seed_base: cfg.seed ^ hash(id.name()),
        }
        .run(|est| Ok(est.histogram().to_vec()), &mut out)?;
    }
    Ok(out)
}

/// The 1D-Range panel (Figures 8c/8g, 9c/9g): random 1-D ranges on A–G
/// under `G¹_k`.
pub fn range1d_panel(cfg: &Config) -> Result<Vec<Measurement>, BenchError> {
    let eps = cfg.eps()?;
    let mut out = Vec::new();
    for id in DatasetId::one_dimensional() {
        let x = dataset(id);
        let d = Domain::one_dim(x.len());
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD);
        let specs = blowfish_core::random_range_specs(&d, cfg.queries, &mut qrng);
        let truth = true_ranges_1d(&x, &specs)?;
        let session = Session::with_policy(d, Policy::Theta1d { theta: 1 }, eps)?;
        PanelColumn {
            session: &session,
            task: Task::Range1d,
            x: &x,
            truth: &truth,
            column: id.name(),
            trials: cfg.trials,
            seed_base: cfg.seed ^ hash(id.name()),
        }
        .run(|est| Ok(est.answer_all(&specs)?), &mut out)?;
    }
    Ok(out)
}

/// The `G⁴_k` panel (Figures 8d/8h, 9d/9h): dataset D aggregated to
/// domain sizes 512–4096, random 1-D ranges.
pub fn theta_panel(cfg: &Config) -> Result<Vec<Measurement>, BenchError> {
    let eps = cfg.eps()?;
    let base = dataset(DatasetId::D);
    let mut out = Vec::new();
    for k in [512usize, 1024, 2048, 4096] {
        let x = if k == 4096 {
            base.clone()
        } else {
            aggregate_1d(&base, k)?
        };
        let d = Domain::one_dim(k);
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ 0xDCBA ^ k as u64);
        let specs = blowfish_core::random_range_specs(&d, cfg.queries, &mut qrng);
        let truth = true_ranges_1d(&x, &specs)?;
        let session = Session::with_policy(d, Policy::Theta1d { theta: 4 }, eps)?;
        PanelColumn {
            session: &session,
            task: Task::Range1d,
            x: &x,
            truth: &truth,
            column: &k.to_string(),
            trials: cfg.trials,
            seed_base: cfg.seed ^ k as u64,
        }
        .run(|est| Ok(est.answer_all(&specs)?), &mut out)?;
    }
    Ok(out)
}

/// The 2D-Range panel (Figures 8a/8e, 9a/9e): random 2-D ranges on the
/// tweet grids under `G¹_{k²}`.
pub fn range2d_panel(cfg: &Config) -> Result<Vec<Measurement>, BenchError> {
    let eps = cfg.eps()?;
    let mut out = Vec::new();
    for id in DatasetId::two_dimensional() {
        let x = dataset(id);
        let k = x.domain().dim(0);
        let d = Domain::square(k);
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ 0x2D2D ^ k as u64);
        let specs: Vec<RangeQuery> = blowfish_core::random_range_specs(&d, cfg.queries, &mut qrng);
        let truth = true_ranges_2d(&x, &specs)?;
        let session = Session::with_policy(d, Policy::Theta2d { theta: 1 }, eps)?;
        PanelColumn {
            session: &session,
            task: Task::Range2d,
            x: &x,
            truth: &truth,
            column: id.name(),
            trials: cfg.trials,
            seed_base: cfg.seed ^ k as u64,
        }
        .run(|est| Ok(est.answer_all(&specs)?), &mut out)?;
    }
    Ok(out)
}

/// Small deterministic string hash for seed derivation.
fn hash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Returns the workload description line printed by the figure binaries.
pub fn panel_description(name: &str, cfg: &Config) -> String {
    format!(
        "{name}: ε={} (baselines at ε/2), {} trials, {} random queries",
        cfg.epsilon, cfg.trials, cfg.queries
    )
}

/// Convenience: the Workload object (not used in the hot loops, which go
/// through prefix sums, but exported for tests and examples).
pub fn random_workload_1d(
    k: usize,
    queries: usize,
    seed: u64,
) -> Result<(Workload, Vec<RangeQuery>), BenchError> {
    let d = Domain::one_dim(k);
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(Workload::random_ranges(&d, queries, &mut rng)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            epsilon: 1.0,
            trials: 2,
            queries: 50,
            seed: 1,
        }
    }

    #[test]
    fn hist_panel_shape() {
        let rows = hist_panel(&tiny()).unwrap();
        // 7 datasets × 5 algorithms.
        assert_eq!(rows.len(), 35);
        assert!(rows.iter().all(|m| m.mse.is_finite() && m.mse >= 0.0));
    }

    #[test]
    fn range1d_panel_shape() {
        let rows = range1d_panel(&tiny()).unwrap();
        assert_eq!(rows.len(), 35);
    }

    #[test]
    fn theta_panel_shape() {
        let rows = theta_panel(&tiny()).unwrap();
        // 4 domain sizes × 4 algorithms.
        assert_eq!(rows.len(), 16);
    }

    #[test]
    fn range2d_panel_shape() {
        let mut cfg = tiny();
        cfg.queries = 30;
        let rows = range2d_panel(&cfg).unwrap();
        // 3 datasets × 3 algorithms.
        assert_eq!(rows.len(), 9);
    }

    #[test]
    fn parallel_panel_output_is_identical_to_serial_runner() {
        // PanelColumn::run fans cells across threads; re-deriving every
        // cell serially with the same per-cell seeds must reproduce the
        // measurements bit-for-bit (f64 equality, no tolerance).
        let cfg = tiny();
        let rows = hist_panel(&cfg).unwrap();
        let eps = cfg.eps().unwrap();
        let mut serial = Vec::new();
        for id in DatasetId::one_dimensional() {
            let x = dataset(id);
            let truth = x.counts().to_vec();
            let session =
                Session::with_policy(x.domain().clone(), Policy::Theta1d { theta: 1 }, eps)
                    .unwrap();
            for spec in session.registry(Task::Histogram).unwrap() {
                let mech = session.mechanism(&spec).unwrap();
                let name = spec.label();
                let (mse, std) = run_cell(
                    &x,
                    &truth,
                    mech.as_ref(),
                    |est| Ok(est.histogram().to_vec()),
                    cfg.trials,
                    (cfg.seed ^ hash(id.name())) ^ hash(name),
                )
                .unwrap();
                serial.push((id.name().to_string(), name.to_string(), mse, std));
            }
        }
        assert_eq!(rows.len(), serial.len());
        for (m, (column, algorithm, mse, std)) in rows.iter().zip(&serial) {
            assert_eq!(&m.column, column);
            assert_eq!(&m.algorithm, algorithm);
            assert!(
                m.mse == *mse && m.std == *std,
                "parallel panel diverged from serial: {column}/{algorithm}"
            );
        }
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = tiny();
        cfg.epsilon = -1.0;
        assert!(hist_panel(&cfg).is_err());
        let mut cfg = tiny();
        cfg.trials = 0;
        assert!(range1d_panel(&cfg).is_err());
    }

    #[test]
    fn helpers() {
        let cfg = tiny();
        assert!(panel_description("Hist", &cfg).contains("ε=1"));
        let (w, specs) = random_workload_1d(16, 5, 3).unwrap();
        assert_eq!(w.len(), 5);
        assert_eq!(specs.len(), 5);
        assert_ne!(hash("a"), hash("b"));
    }
}
