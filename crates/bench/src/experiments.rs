//! The shared experiment loops behind Figures 8 and 9.
//!
//! Section 6 protocol: for each task, compare `ε/2`-differentially-private
//! baselines against `(ε, G)`-Blowfish strategies, reporting average mean
//! squared error per query over independent runs (the paper uses 5) on
//! 10,000 random range queries (or the full histogram workload).

use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_core::{measure_error, DataVector, Domain, Epsilon, RangeQuery, Workload};
use blowfish_data::{aggregate_1d, dataset, DatasetId};
use blowfish_strategies::{
    answer_ranges_1d, answer_ranges_2d, dp_dawa_1d, dp_dawa_2d, dp_laplace, dp_privelet_1d,
    dp_privelet_nd, grid_blowfish_histogram, line_blowfish_histogram, true_ranges_1d,
    true_ranges_2d, ThetaEstimator, ThetaLineStrategy, TreeEstimator,
};

use crate::report::Measurement;

/// Experiment configuration shared by every panel.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Total Blowfish budget ε (baselines run at ε/2).
    pub epsilon: f64,
    /// Independent runs per (dataset, algorithm) cell (paper: 5).
    pub trials: usize,
    /// Random range queries per run (paper: 10,000).
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// Paper defaults at the given ε.
    pub fn paper(epsilon: f64) -> Self {
        Config {
            epsilon,
            trials: 5,
            queries: 10_000,
            seed: 0x5EED,
        }
    }

    fn eps(&self) -> Epsilon {
        Epsilon::new(self.epsilon).expect("validated by caller")
    }

    fn eps_half(&self) -> Epsilon {
        self.eps().half()
    }
}

/// A named histogram estimator: dataset in, estimate out.
type Estimator<'a> = Box<dyn FnMut(&DataVector, &mut StdRng) -> Vec<f64> + 'a>;

fn run_cell(
    x: &DataVector,
    truth: &[f64],
    answer: impl Fn(&[f64]) -> Vec<f64>,
    est: &mut Estimator,
    trials: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let report = measure_error(truth, trials, |_| {
        let hist = est(x, &mut rng);
        Ok(answer(&hist))
    })
    .expect("trials > 0 and truth non-empty");
    (report.mean_mse, report.std_mse)
}

/// The Hist panel (Figures 8b/8f, 9b/9f): the identity workload on
/// datasets A–G under `G¹_k`.
pub fn hist_panel(cfg: &Config) -> Vec<Measurement> {
    let eps = cfg.eps();
    let eps2 = cfg.eps_half();
    let mut out = Vec::new();
    for id in DatasetId::one_dimensional() {
        let x = dataset(id);
        let truth = x.counts().to_vec();
        let algorithms: Vec<(&str, Estimator)> = vec![
            (
                "Laplace",
                Box::new(move |x, rng| dp_laplace(x, eps2, rng).expect("laplace")),
            ),
            (
                "Dawa",
                Box::new(move |x, rng| dp_dawa_1d(x, eps2, rng).expect("dawa")),
            ),
            (
                "Transformed + Laplace",
                Box::new(move |x, rng| {
                    line_blowfish_histogram(x, eps, TreeEstimator::Laplace, rng).expect("t+l")
                }),
            ),
            (
                "Transformed + ConsistentEst",
                Box::new(move |x, rng| {
                    line_blowfish_histogram(x, eps, TreeEstimator::LaplaceConsistent, rng)
                        .expect("t+c")
                }),
            ),
            (
                "Trans + Dawa + Cons",
                Box::new(move |x, rng| {
                    line_blowfish_histogram(x, eps, TreeEstimator::DawaConsistent, rng)
                        .expect("t+d+c")
                }),
            ),
        ];
        for (name, mut est) in algorithms {
            let (mse, std) = run_cell(
                &x,
                &truth,
                |h| h.to_vec(),
                &mut est,
                cfg.trials,
                cfg.seed ^ hash(name) ^ hash(id.name()),
            );
            out.push(Measurement {
                column: id.name().to_string(),
                algorithm: name.to_string(),
                mse,
                std,
            });
        }
    }
    out
}

/// The 1D-Range panel (Figures 8c/8g, 9c/9g): random 1-D ranges on A–G
/// under `G¹_k`.
pub fn range1d_panel(cfg: &Config) -> Vec<Measurement> {
    let eps = cfg.eps();
    let eps2 = cfg.eps_half();
    let mut out = Vec::new();
    for id in DatasetId::one_dimensional() {
        let x = dataset(id);
        let d = Domain::one_dim(x.len());
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD);
        let specs = blowfish_core::random_range_specs(&d, cfg.queries, &mut qrng);
        let truth = true_ranges_1d(&x, &specs).expect("truth");
        let algorithms: Vec<(&str, Estimator)> = vec![
            (
                "Privelet",
                Box::new(move |x, rng| dp_privelet_1d(x, eps2, rng).expect("privelet")),
            ),
            (
                "Dawa",
                Box::new(move |x, rng| dp_dawa_1d(x, eps2, rng).expect("dawa")),
            ),
            (
                "Transformed + Laplace",
                Box::new(move |x, rng| {
                    line_blowfish_histogram(x, eps, TreeEstimator::Laplace, rng).expect("t+l")
                }),
            ),
            (
                "Transformed + ConsistentEst",
                Box::new(move |x, rng| {
                    line_blowfish_histogram(x, eps, TreeEstimator::LaplaceConsistent, rng)
                        .expect("t+c")
                }),
            ),
            (
                "Trans + Dawa + Cons",
                Box::new(move |x, rng| {
                    line_blowfish_histogram(x, eps, TreeEstimator::DawaConsistent, rng)
                        .expect("t+d+c")
                }),
            ),
        ];
        for (name, mut est) in algorithms {
            let (mse, std) = run_cell(
                &x,
                &truth,
                |h| answer_ranges_1d(h, &specs).expect("answers"),
                &mut est,
                cfg.trials,
                cfg.seed ^ hash(name) ^ hash(id.name()),
            );
            out.push(Measurement {
                column: id.name().to_string(),
                algorithm: name.to_string(),
                mse,
                std,
            });
        }
    }
    out
}

/// The `G⁴_k` panel (Figures 8d/8h, 9d/9h): dataset D aggregated to
/// domain sizes 512–4096, random 1-D ranges.
pub fn theta_panel(cfg: &Config) -> Vec<Measurement> {
    let eps = cfg.eps();
    let eps2 = cfg.eps_half();
    let base = dataset(DatasetId::D);
    let mut out = Vec::new();
    for k in [512usize, 1024, 2048, 4096] {
        let x = if k == 4096 {
            base.clone()
        } else {
            aggregate_1d(&base, k).expect("divisible")
        };
        let strat = ThetaLineStrategy::new(k, 4).expect("k > θ");
        let d = Domain::one_dim(k);
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ 0xDCBA ^ k as u64);
        let specs = blowfish_core::random_range_specs(&d, cfg.queries, &mut qrng);
        let truth = true_ranges_1d(&x, &specs).expect("truth");
        let strat_ref = &strat;
        let algorithms: Vec<(&str, Estimator)> = vec![
            (
                "Privelet",
                Box::new(move |x: &DataVector, rng: &mut StdRng| {
                    dp_privelet_1d(x, eps2, rng).expect("privelet")
                }),
            ),
            (
                "Dawa",
                Box::new(move |x: &DataVector, rng: &mut StdRng| {
                    dp_dawa_1d(x, eps2, rng).expect("dawa")
                }),
            ),
            (
                "Transformed + Laplace",
                Box::new(move |x: &DataVector, rng: &mut StdRng| {
                    strat_ref
                        .histogram(x, eps, ThetaEstimator::Laplace, rng)
                        .expect("t+l")
                }),
            ),
            (
                "Trans + Dawa",
                Box::new(move |x: &DataVector, rng: &mut StdRng| {
                    strat_ref
                        .histogram(x, eps, ThetaEstimator::Dawa, rng)
                        .expect("t+d")
                }),
            ),
        ];
        for (name, mut est) in algorithms {
            let (mse, std) = run_cell(
                &x,
                &truth,
                |h| answer_ranges_1d(h, &specs).expect("answers"),
                &mut est,
                cfg.trials,
                cfg.seed ^ hash(name) ^ k as u64,
            );
            out.push(Measurement {
                column: k.to_string(),
                algorithm: name.to_string(),
                mse,
                std,
            });
        }
    }
    out
}

/// The 2D-Range panel (Figures 8a/8e, 9a/9e): random 2-D ranges on the
/// tweet grids under `G¹_{k²}`.
pub fn range2d_panel(cfg: &Config) -> Vec<Measurement> {
    let eps = cfg.eps();
    let eps2 = cfg.eps_half();
    let mut out = Vec::new();
    for id in DatasetId::two_dimensional() {
        let x = dataset(id);
        let k = x.domain().dim(0);
        let d = Domain::square(k);
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ 0x2D2D ^ k as u64);
        let specs: Vec<RangeQuery> = blowfish_core::random_range_specs(&d, cfg.queries, &mut qrng);
        let truth = true_ranges_2d(&x, &specs).expect("truth");
        let algorithms: Vec<(&str, Estimator)> = vec![
            (
                "Privelet",
                Box::new(move |x: &DataVector, rng: &mut StdRng| {
                    dp_privelet_nd(x, eps2, rng).expect("privelet")
                }),
            ),
            (
                "Dawa",
                Box::new(move |x: &DataVector, rng: &mut StdRng| {
                    dp_dawa_2d(x, eps2, rng).expect("dawa")
                }),
            ),
            (
                "Transformed + Privelet",
                Box::new(move |x: &DataVector, rng: &mut StdRng| {
                    grid_blowfish_histogram(x, eps, rng).expect("t+p")
                }),
            ),
        ];
        for (name, mut est) in algorithms {
            let (mse, std) = run_cell(
                &x,
                &truth,
                |h| answer_ranges_2d(h, k, k, &specs).expect("answers"),
                &mut est,
                cfg.trials,
                cfg.seed ^ hash(name) ^ k as u64,
            );
            out.push(Measurement {
                column: id.name().to_string(),
                algorithm: name.to_string(),
                mse,
                std,
            });
        }
    }
    out
}

/// Small deterministic string hash for seed derivation.
fn hash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Returns the workload description line printed by the figure binaries.
pub fn panel_description(name: &str, cfg: &Config) -> String {
    format!(
        "{name}: ε={} (baselines at ε/2), {} trials, {} random queries",
        cfg.epsilon, cfg.trials, cfg.queries
    )
}

/// Convenience: the Workload object (not used in the hot loops, which go
/// through prefix sums, but exported for tests and examples).
pub fn random_workload_1d(k: usize, queries: usize, seed: u64) -> (Workload, Vec<RangeQuery>) {
    let d = Domain::one_dim(k);
    let mut rng = StdRng::seed_from_u64(seed);
    Workload::random_ranges(&d, queries, &mut rng).expect("valid domain")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            epsilon: 1.0,
            trials: 2,
            queries: 50,
            seed: 1,
        }
    }

    #[test]
    fn hist_panel_shape() {
        let rows = hist_panel(&tiny());
        // 7 datasets × 5 algorithms.
        assert_eq!(rows.len(), 35);
        assert!(rows.iter().all(|m| m.mse.is_finite() && m.mse >= 0.0));
    }

    #[test]
    fn range1d_panel_shape() {
        let rows = range1d_panel(&tiny());
        assert_eq!(rows.len(), 35);
    }

    #[test]
    fn theta_panel_shape() {
        let rows = theta_panel(&tiny());
        // 4 domain sizes × 4 algorithms.
        assert_eq!(rows.len(), 16);
    }

    #[test]
    fn range2d_panel_shape() {
        let mut cfg = tiny();
        cfg.queries = 30;
        let rows = range2d_panel(&cfg);
        // 3 datasets × 3 algorithms.
        assert_eq!(rows.len(), 9);
    }

    #[test]
    fn helpers() {
        let cfg = tiny();
        assert!(panel_description("Hist", &cfg).contains("ε=1"));
        let (w, specs) = random_workload_1d(16, 5, 3);
        assert_eq!(w.len(), 5);
        assert_eq!(specs.len(), 5);
        assert_ne!(hash("a"), hash("b"));
    }
}
