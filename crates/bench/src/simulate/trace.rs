//! Deterministic trace expansion: a [`Scenario`] becomes a concrete
//! tenant population plus a typed [`Request`] stream, as a pure function
//! of the scenario seed. Same seed ⇒ byte-identical trace (the seeded
//! round-trip tests pin this with `Debug`-formatting equality).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use blowfish_core::{sample_query_mix, Domain, Epsilon, PolicyGraph};
use blowfish_data::scenario_population;
use blowfish_engine::{MatrixStrategyKind, MechanismSpec, Request, Task, TenantConfig};
use blowfish_strategies::TreeEstimator;

use crate::simulate::scenario::{ArrivalPattern, PolicyFamily, Scenario, SpecChoice};
use crate::BenchError;

/// The handle every simulated fit stores its estimate under (one live
/// estimate per tenant; each admitted fit replaces it, so answers always
/// target the most recent release).
pub const SIM_HANDLE: &str = "h";

/// One simulated tenant: its service onboarding config plus the scoring
/// metadata the scorer's oracle needs.
#[derive(Clone, Debug)]
pub struct TraceTenant {
    /// What [`Service::add_tenant`](blowfish_engine::Service::add_tenant)
    /// receives.
    pub config: TenantConfig,
    /// The policy family the tenant was generated from.
    pub family: PolicyFamily,
    /// The mechanism every fit of this tenant names; `None` routes fits
    /// through the session planner.
    pub spec: Option<MechanismSpec>,
}

impl TraceTenant {
    /// The ε one admitted fit debits from this tenant's account:
    /// mechanisms report the ε they actually consume, so baselines debit
    /// ε/2 and Blowfish strategies (including every planner default) the
    /// full grant.
    pub fn charge_per_fit(&self) -> f64 {
        let eps = self.config.eps.value();
        match &self.spec {
            Some(spec) if spec.is_baseline() => eps / 2.0,
            _ => eps,
        }
    }
}

/// A fully expanded, replayable workload trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Name of the generating scenario.
    pub name: String,
    /// The seed the trace was expanded from.
    pub seed: u64,
    /// The tenant population, in onboarding order.
    pub tenants: Vec<TraceTenant>,
    /// The request stream, in arrival order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Number of fit requests in the stream.
    pub fn fit_count(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| matches!(r, Request::Fit { .. }))
            .count()
    }
}

/// Builds the policy graph of one tenant.
fn build_graph(scenario: &Scenario, family: PolicyFamily) -> Result<PolicyGraph, BenchError> {
    Ok(match family {
        PolicyFamily::Line => PolicyGraph::line(scenario.domain_1d)?,
        PolicyFamily::ThetaLine { theta } => PolicyGraph::theta_line(scenario.domain_1d, theta)?,
        PolicyFamily::Grid => PolicyGraph::distance_threshold(Domain::square(scenario.grid_k), 1)?,
        PolicyFamily::ThetaGrid { theta } => {
            PolicyGraph::distance_threshold(Domain::square(scenario.grid_k), theta)?
        }
        PolicyFamily::Tree => PolicyGraph::star(scenario.domain_1d)?,
    })
}

/// The planner task matching a family's dimensionality.
fn task_for(family: PolicyFamily) -> Task {
    if family.is_2d() {
        Task::Range2d
    } else {
        Task::Range1d
    }
}

/// The explicit mechanism a tenant's fits name under a [`SpecChoice`].
fn spec_for(family: PolicyFamily, choice: SpecChoice) -> Option<MechanismSpec> {
    match choice {
        SpecChoice::Planner => None,
        // Closed-form utility: line tenants run Algorithm 1's
        // Transformed + Laplace (per-range variance is exactly
        // 2/ε² per noisy prefix endpoint); every other family runs the
        // ε/2-DP Laplace baseline (per-cell variance 2·(2/ε)²).
        SpecChoice::ClosedForm => Some(match family {
            PolicyFamily::Line => MechanismSpec::Line(TreeEstimator::Laplace),
            _ => MechanismSpec::Laplace,
        }),
        // The ε/2-DP matrix-mechanism baseline with the hierarchical
        // strategy: valid under every policy family, and planned through
        // the sparse CSR + CG path above SPARSE_DOMAIN_THRESHOLD.
        SpecChoice::SparseMatrix => Some(MechanismSpec::MatrixHist {
            strategy: MatrixStrategyKind::Hierarchical,
        }),
    }
}

/// Draws the next tenant index for each arrival pattern.
struct ArrivalState {
    pattern: ArrivalPattern,
    tenants: usize,
    /// Bursty: (current tenant, requests left in the burst).
    burst_state: (usize, usize),
    /// Hot-key: cumulative zipf weights.
    cumulative: Vec<f64>,
}

impl ArrivalState {
    fn new(scenario: &Scenario) -> ArrivalState {
        let cumulative = match scenario.arrival {
            ArrivalPattern::HotKey { skew } => {
                let mut acc = 0.0;
                (0..scenario.tenants)
                    .map(|i| {
                        acc += 1.0 / ((i + 1) as f64).powf(skew);
                        acc
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        ArrivalState {
            pattern: scenario.arrival,
            tenants: scenario.tenants,
            burst_state: (0, 0),
            cumulative,
        }
    }

    fn next_tenant(&mut self, rng: &mut StdRng) -> usize {
        match self.pattern {
            ArrivalPattern::Uniform => rng.gen_range(0..self.tenants),
            ArrivalPattern::Bursty { burst } => {
                let (current, left) = self.burst_state;
                if left > 0 {
                    self.burst_state = (current, left - 1);
                    return current;
                }
                let next = rng.gen_range(0..self.tenants);
                self.burst_state = (next, burst - 1);
                next
            }
            ArrivalPattern::HotKey { .. } => {
                let total = *self.cumulative.last().expect("non-empty population");
                let u = rng.gen_range(0.0..total);
                self.cumulative
                    .iter()
                    .position(|&c| u < c)
                    .unwrap_or(self.tenants - 1)
            }
        }
    }
}

/// Expands a scenario into a concrete trace, deterministically from its
/// seed: tenant populations, budget draws, the arrival-driven request
/// stream, per-fit noise seeds, and every sampled query batch all come
/// from one seeded RNG consumed in a fixed order.
pub fn generate(scenario: &Scenario) -> Result<Trace, BenchError> {
    scenario.validate()?;
    let mut rng = StdRng::seed_from_u64(scenario.seed);

    let mut tenants = Vec::with_capacity(scenario.tenants);
    for t in 0..scenario.tenants {
        let family = scenario.family(t);
        let graph = build_graph(scenario, family)?;
        let data_seed = rng.gen::<u64>();
        let data =
            scenario_population(graph.domain(), scenario.scale, scenario.shape(t), data_seed);
        let budget = scenario.budget.sample(t, &mut rng)?;
        tenants.push(TraceTenant {
            config: TenantConfig {
                id: format!("tenant-{t:02}"),
                graph,
                eps: Epsilon::new(scenario.eps)?,
                budget,
                data,
            },
            family,
            spec: spec_for(family, scenario.specs),
        });
    }

    let fit = |tenant: &TraceTenant, rng: &mut StdRng| Request::Fit {
        tenant: tenant.config.id.clone(),
        spec: tenant.spec,
        task: task_for(tenant.family),
        seed: rng.gen::<u64>(),
        handle: SIM_HANDLE.to_string(),
    };

    // Warm-up: one fit per tenant opens the trace, so answer requests
    // always target an existing handle (unless that first fit is
    // rejected by a sub-ε budget — the scorer's oracle models that too).
    let mut requests = Vec::with_capacity(scenario.requests);
    for tenant in &tenants {
        requests.push(fit(tenant, &mut rng));
    }

    let mut arrivals = ArrivalState::new(scenario);
    while requests.len() < scenario.requests {
        let t = arrivals.next_tenant(&mut rng);
        let tenant = &tenants[t];
        if rng.gen_bool(scenario.fit_fraction) {
            requests.push(fit(tenant, &mut rng));
        } else {
            let queries = sample_query_mix(
                tenant.config.graph.domain(),
                &scenario.mix,
                scenario.queries_per_answer,
                &mut rng,
            )?;
            requests.push(Request::Answer {
                tenant: tenant.config.id.clone(),
                handle: SIM_HANDLE.to_string(),
                queries,
            });
        }
    }

    Ok(Trace {
        name: scenario.name.clone(),
        seed: scenario.seed,
        tenants,
        requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let scenario = Scenario::quick_catalog().remove(0);
        let a = generate(&scenario).unwrap();
        let b = generate(&scenario).unwrap();
        // Byte-identical traces: the Debug rendering covers every field
        // of every tenant (including the full data vectors) and request.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let mut reseeded = scenario.clone();
        reseeded.seed ^= 1;
        let c = generate(&reseeded).unwrap();
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn traces_respect_the_scenario_shape() {
        for scenario in Scenario::quick_catalog() {
            let trace = generate(&scenario).unwrap();
            assert_eq!(trace.tenants.len(), scenario.tenants, "{}", scenario.name);
            assert_eq!(trace.requests.len(), scenario.requests, "{}", scenario.name);
            // The warm-up prefix is one fit per tenant.
            for (i, r) in trace.requests[..scenario.tenants].iter().enumerate() {
                match r {
                    Request::Fit { tenant, .. } => {
                        assert_eq!(tenant, &trace.tenants[i].config.id)
                    }
                    other => panic!("warm-up request {i} is {other:?}"),
                }
            }
            // Every request names a registered tenant.
            let ids: std::collections::HashSet<&str> =
                trace.tenants.iter().map(|t| t.config.id.as_str()).collect();
            for r in &trace.requests {
                let tenant = match r {
                    Request::Fit { tenant, .. } | Request::Answer { tenant, .. } => tenant,
                    other => panic!("unexpected request kind {other:?}"),
                };
                assert!(ids.contains(tenant.as_str()));
            }
        }
    }

    #[test]
    fn closed_form_specs_and_charges() {
        let scenario = Scenario::quick_catalog().remove(0); // smoke-mixed
        let trace = generate(&scenario).unwrap();
        // Line tenants run Transformed+Laplace at full ε, the θ-line and
        // tree tenants the ε/2 Laplace baseline.
        assert_eq!(
            trace.tenants[0].spec,
            Some(MechanismSpec::Line(TreeEstimator::Laplace))
        );
        assert_eq!(trace.tenants[2].spec, Some(MechanismSpec::Laplace));
        assert!((trace.tenants[0].charge_per_fit() - 0.5).abs() < 1e-15);
        assert!((trace.tenants[2].charge_per_fit() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn hotkey_arrivals_skew_toward_low_indices() {
        let mut scenario = Scenario::quick_catalog().remove(2); // grid-hotkey
        scenario.requests = 2000;
        let trace = generate(&scenario).unwrap();
        let mut per_tenant = vec![0usize; scenario.tenants];
        for r in &trace.requests[scenario.tenants..] {
            let tenant = match r {
                Request::Fit { tenant, .. } | Request::Answer { tenant, .. } => tenant,
                _ => unreachable!(),
            };
            let idx: usize = tenant.trim_start_matches("tenant-").parse().unwrap();
            per_tenant[idx] += 1;
        }
        assert!(
            per_tenant[0] > 2 * per_tenant[scenario.tenants - 1],
            "zipf skew missing: {per_tenant:?}"
        );
    }
}
