//! Loopback TCP load testing: replays a simulator
//! [`Trace`](crate::simulate::Trace) through a
//! real `blowfish/1` socket server from many concurrent client
//! connections, and holds the outcome to the same exactness standards as
//! the serial scorer — plus the network-only ones.
//!
//! The harness generates a scenario trace (so the arrival patterns are
//! the simulator's own bursty / zipf hot-key streams), onboards the
//! tenant population *over the wire* through a setup connection, deals
//! the request stream round-robin onto `connections` client sockets, and
//! releases all clients through one barrier — guaranteeing the full
//! connection count is simultaneously open before the first request is
//! written. Each client measures per-request latency (write → complete
//! reply line) and validates every reply's shape.
//!
//! What must hold afterward, in any interleaving:
//!
//! * **zero dropped or corrupted replies** — exactly one reply per
//!   request, each parsing as the shape its request demands (fit
//!   receipts with finite accounting fields and the exact per-fit
//!   charge; answer batches with one finite value per query);
//! * **exact admission** — every simulated fit of one tenant charges the
//!   same ε, so the admission floor (the ledger's [`overdraw_slack`]
//!   rule) is order-independent: admitted fits must equal
//!   `min(floor, requested)` even though the interleaving is racy;
//! * **bit-for-bit ledger reconciliation** — for the same reason the
//!   cumulative spend a final `stats` reports must equal the fold of the
//!   observed fit receipts exactly (f64 `Display` round-trips, so
//!   comparing parsed wire values is comparing bits);
//! * **tolerated failures are typed** — a fit may only fail budget-
//!   exhausted, an answer may only fail with the unknown-estimate error
//!   (its tenant's first fit may still be in flight on another
//!   connection — the one outcome concurrency legitimately reorders).
//!
//! Timing comes out as the same [`SimTiming`] p50/p95/p99 + throughput
//! section the serial scorer reports, and
//! [`LoadReport::snapshot_json`] renders it as `group/metric` keys that
//! `bench_gate` can hold against a committed baseline.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use blowfish_core::overdraw_slack;
use blowfish_engine::wire::{self, Codec};
use blowfish_engine::{NetConfig, NetModel, Request, Service, TcpServer};

use crate::report::snapshot::JsonValue;
use crate::simulate::scenario::{PolicyFamily, Scenario};
use crate::simulate::score::SimTiming;
use crate::simulate::trace::generate;

/// Per-reply client read timeout: far above any honest tail (the gate
/// for tails is `bench_gate`, not this), so hitting it means a reply was
/// genuinely dropped.
const REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// Maximum in-flight (connected but not yet banner-acknowledged) client
/// handshakes during ramp-up against an **external** server whose listen
/// backlog we do not control (std's `TcpListener::bind` hardcodes 128; a
/// thousand-connection burst overflowing it trips the kernel's SYN-flood
/// defenses). In-process servers are bound with
/// [`NetConfig::listen_backlog`] sized past the whole burst, so their
/// ramp is unpaced — every client connects at once.
const CONNECT_WINDOW: usize = 64;

/// Failures of the harness itself (the run not starting), as opposed to
/// scoring violations (the run starting and the server misbehaving).
#[derive(Debug)]
pub enum LoadError {
    /// Trace generation failed.
    Bench(crate::BenchError),
    /// Setup-phase socket failure (bind/connect/onboarding).
    Io(std::io::Error),
    /// The server answered the setup phase with something unexpected.
    Setup(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Bench(e) => write!(f, "{e}"),
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Setup(what) => write!(f, "setup failed: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<crate::BenchError> for LoadError {
    fn from(e: crate::BenchError) -> Self {
        LoadError::Bench(e)
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Per-tenant reconciliation row of a [`LoadReport`].
#[derive(Clone, Debug)]
pub struct LoadTenantScore {
    /// Tenant id.
    pub id: String,
    /// Registered total budget.
    pub budget: f64,
    /// ε one admitted fit debits.
    pub charge: f64,
    /// Fit requests sent to this tenant across all connections.
    pub fits_requested: usize,
    /// Fit receipts observed (`ok fit …`).
    pub fits_admitted: usize,
    /// Typed budget-exhausted rejections observed.
    pub fits_rejected: usize,
    /// The order-independent admission floor `min(⌊budget admits⌋, requested)`.
    pub expected_admitted: usize,
    /// Cumulative spend the final `stats` reported.
    pub spent_reported: f64,
    /// Fold of the observed fit receipts.
    pub receipt_sum: f64,
    /// Answer requests sent.
    pub answers_requested: usize,
    /// Answer batches served.
    pub answers_ok: usize,
    /// Answer batches that failed with the (tolerated) unknown-estimate
    /// race.
    pub answers_raced: usize,
}

/// The outcome of one loopback load-test run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Scenario the trace came from.
    pub scenario: String,
    /// Serving model the in-process server ran under (the effective one:
    /// a reactor request degrades to threads off Linux). External servers
    /// report whatever model was requested — the harness cannot see
    /// theirs.
    pub model: NetModel,
    /// Trace seed.
    pub seed: u64,
    /// Concurrent client connections held open for the whole run.
    pub connections: usize,
    /// Requests written across all connections.
    pub requests: usize,
    /// Replies received across all connections.
    pub replies: usize,
    /// Connections the server shed with `err server-busy` (in-process
    /// servers only; must be zero for a sized run).
    pub shed: u64,
    /// Per-tenant reconciliation.
    pub tenants: Vec<LoadTenantScore>,
    /// Every violation, in detection order; empty means the run passed.
    pub violations: Vec<String>,
    /// Client-measured p50/p95/p99 latency + sustained throughput.
    pub timing: SimTiming,
}

impl LoadReport {
    /// Whether every gate held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Full machine-readable report.
    pub fn to_json(&self) -> String {
        let count = |v: usize| JsonValue::Num(v as f64);
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                JsonValue::Obj(vec![
                    ("id".into(), JsonValue::Str(t.id.clone())),
                    ("budget".into(), JsonValue::Num(t.budget)),
                    ("charge".into(), JsonValue::Num(t.charge)),
                    ("fits_requested".into(), count(t.fits_requested)),
                    ("fits_admitted".into(), count(t.fits_admitted)),
                    ("fits_rejected".into(), count(t.fits_rejected)),
                    ("expected_admitted".into(), count(t.expected_admitted)),
                    ("spent_reported".into(), JsonValue::Num(t.spent_reported)),
                    ("receipt_sum".into(), JsonValue::Num(t.receipt_sum)),
                    ("answers_requested".into(), count(t.answers_requested)),
                    ("answers_ok".into(), count(t.answers_ok)),
                    ("answers_raced".into(), count(t.answers_raced)),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            (
                "schema".into(),
                JsonValue::Str("blowfish-loadtest/v1".into()),
            ),
            ("scenario".into(), JsonValue::Str(self.scenario.clone())),
            (
                "model".into(),
                JsonValue::Str(self.model.label().to_string()),
            ),
            ("seed".into(), JsonValue::Str(self.seed.to_string())),
            ("connections".into(), count(self.connections)),
            ("requests".into(), count(self.requests)),
            ("replies".into(), count(self.replies)),
            ("shed".into(), count(self.shed as usize)),
            ("tenants".into(), JsonValue::Arr(tenants)),
            (
                "violations".into(),
                JsonValue::Arr(
                    self.violations
                        .iter()
                        .map(|v| JsonValue::Str(v.clone()))
                        .collect(),
                ),
            ),
            ("timing".into(), self.timing_json()),
        ])
        .to_pretty()
    }

    fn timing_json(&self) -> JsonValue {
        let t = &self.timing;
        JsonValue::Obj(vec![
            ("wall_ns".into(), JsonValue::Num(t.wall_ns as f64)),
            (
                "requests_per_sec".into(),
                JsonValue::Num(t.requests_per_sec),
            ),
            ("ns_per_request".into(), JsonValue::Num(t.ns_per_request)),
            ("mean_latency_ns".into(), JsonValue::Num(t.mean_latency_ns)),
            (
                "p50_latency_ns".into(),
                JsonValue::Num(t.p50_latency_ns as f64),
            ),
            (
                "p95_latency_ns".into(),
                JsonValue::Num(t.p95_latency_ns as f64),
            ),
            (
                "p99_latency_ns".into(),
                JsonValue::Num(t.p99_latency_ns as f64),
            ),
        ])
    }

    /// A `bench_gate`-consumable snapshot: the tail-latency and inverse
    /// throughput numbers under `net-<scenario>/<metric>` keys (slash
    /// keys are the gate's extraction rule; `ns_per_request` is gated
    /// instead of `requests_per_sec` because the gate only fails on
    /// increases and a throughput loss is an `ns_per_request` increase).
    pub fn snapshot_json(&self) -> String {
        let group = format!("net-{}", self.scenario);
        let t = &self.timing;
        JsonValue::Obj(vec![
            (
                "schema".into(),
                JsonValue::Str("blowfish-net-snapshot/v1".into()),
            ),
            ("scenario".into(), JsonValue::Str(self.scenario.clone())),
            (
                "connections".into(),
                JsonValue::Num(self.connections as f64),
            ),
            ("requests".into(), JsonValue::Num(self.requests as f64)),
            (
                "results_ns".into(),
                JsonValue::Obj(vec![
                    (
                        format!("{group}/p50_latency_ns"),
                        JsonValue::Num(t.p50_latency_ns as f64),
                    ),
                    (
                        format!("{group}/p95_latency_ns"),
                        JsonValue::Num(t.p95_latency_ns as f64),
                    ),
                    (
                        format!("{group}/p99_latency_ns"),
                        JsonValue::Num(t.p99_latency_ns as f64),
                    ),
                    (
                        format!("{group}/mean_latency_ns"),
                        JsonValue::Num(t.mean_latency_ns),
                    ),
                    (
                        format!("{group}/ns_per_request"),
                        JsonValue::Num(t.ns_per_request),
                    ),
                ]),
            ),
        ])
        .to_pretty()
    }
}

/// The wire policy token that rebuilds a trace tenant's policy graph
/// (the inverse of the trace generator's graph construction).
pub fn policy_token(scenario: &Scenario, family: PolicyFamily) -> String {
    match family {
        PolicyFamily::Line => format!("line:{}", scenario.domain_1d),
        PolicyFamily::ThetaLine { theta } => format!("theta-line:{}:{theta}", scenario.domain_1d),
        PolicyFamily::Grid => format!("grid:{}", scenario.grid_k),
        PolicyFamily::ThetaGrid { theta } => format!("theta-grid:{}:{theta}", scenario.grid_k),
        PolicyFamily::Tree => format!("star:{}", scenario.domain_1d),
    }
}

/// What one reply must look like, carried alongside its request line.
#[derive(Clone, Copy, Debug)]
enum Expect {
    /// `ok fit h charged=<charge> …` or the budget-exhausted error.
    Fit { tenant: usize, charge: f64 },
    /// `ok answer <queries> v…` or the unknown-estimate race.
    Answer { tenant: usize, queries: usize },
}

/// One client connection's tally, merged into the report afterward.
#[derive(Clone, Default)]
struct WorkerOutcome {
    latencies: Vec<u64>,
    replies: usize,
    /// Per tenant: (fit_ok, fit_rejected, answer_ok, answer_raced).
    per_tenant: Vec<(usize, usize, usize, usize)>,
    violations: Vec<String>,
}

/// Runs the load test: `connections` concurrent clients replaying
/// `scenario`'s trace against an in-process loopback server (default) or
/// an externally started `blowfish-serve --tcp` at `external`, under the
/// requested serving `model` (in-process runs; an external server's
/// model is its own).
pub fn run_load(
    scenario: &Scenario,
    connections: usize,
    external: Option<&str>,
    model: NetModel,
) -> Result<LoadReport, LoadError> {
    if connections == 0 {
        return Err(LoadError::Setup("need at least one connection".into()));
    }
    let trace = generate(scenario)?;

    // In-process server (unless pointed at an external one). The cap
    // leaves headroom for the setup connection only — a sized run must
    // shed nothing — and the listen backlog covers the whole unpaced
    // connect burst.
    let mut server = match external {
        Some(_) => None,
        None => Some(
            TcpServer::bind(
                Arc::new(Service::new()),
                "127.0.0.1:0",
                NetConfig {
                    max_connections: connections + 1,
                    idle_timeout: Duration::from_secs(600),
                    listen_backlog: connections + CONNECT_WINDOW,
                    model,
                },
            )
            .map_err(LoadError::Io)?,
        ),
    };
    let model = match &server {
        Some(server) => server.model(),
        None => model,
    };
    let addr = match (external, &server) {
        (Some(addr), _) => addr.to_string(),
        (None, Some(server)) => server.local_addr().to_string(),
        (None, None) => unreachable!(),
    };
    // External servers keep the paced handshake ramp (their backlog is
    // unknown); in-process ones absorb the burst in the kernel queue.
    let connect_window = match external {
        Some(_) => CONNECT_WINDOW,
        None => connections.max(CONNECT_WINDOW),
    };

    // Setup connection: onboard the tenant population over the wire
    // (exercising the codec's client half), and later collect `stats`.
    let mut setup = connect(&addr)?;
    for tenant in &trace.tenants {
        let line = Codec::encode_request(&wire::Request::Tenant {
            config: Box::new(tenant.config.clone()),
            policy_token: policy_token(scenario, tenant.family),
        });
        let reply = roundtrip(&mut setup, &line)?;
        if !reply.starts_with(&format!("ok tenant {} ", tenant.config.id)) {
            return Err(LoadError::Setup(format!(
                "onboarding {} got: {reply}",
                tenant.config.id
            )));
        }
    }

    // Index tenants and deal the request stream round-robin onto the
    // client connections.
    let index_of: HashMap<&str, usize> = trace
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| (t.config.id.as_str(), i))
        .collect();
    let mut batches: Vec<Vec<(String, Expect)>> = vec![Vec::new(); connections];
    for (i, request) in trace.requests.iter().enumerate() {
        let (tenant, expect) = match request {
            Request::Fit { tenant, .. } => {
                let t = index_of[tenant.as_str()];
                (
                    tenant,
                    Expect::Fit {
                        tenant: t,
                        charge: trace.tenants[t].charge_per_fit(),
                    },
                )
            }
            Request::Answer {
                tenant, queries, ..
            } => (
                tenant,
                Expect::Answer {
                    tenant: index_of[tenant.as_str()],
                    queries: queries.len(),
                },
            ),
            other => {
                return Err(LoadError::Setup(format!(
                    "trace contains an unservable request kind: {other:?}"
                )))
            }
        };
        let _ = tenant;
        let line = Codec::encode_request(&wire::Request::from(request));
        batches[i % connections].push((line, expect));
    }

    // Launch every client; the barrier guarantees all `connections`
    // sockets are open (banner consumed) before any request is written.
    let barrier = Arc::new(Barrier::new(connections + 1));
    let connected = Arc::new(AtomicUsize::new(0));
    let tenant_count = trace.tenants.len();
    let mut workers = Vec::with_capacity(connections);
    for (c, batch) in batches.into_iter().enumerate() {
        let (addr, barrier) = (addr.clone(), Arc::clone(&barrier));
        let connected = Arc::clone(&connected);
        workers.push(
            std::thread::Builder::new()
                .name(format!("load-client-{c}"))
                .stack_size(256 * 1024)
                .spawn(move || {
                    client_worker(
                        &addr,
                        c,
                        batch,
                        tenant_count,
                        &barrier,
                        &connected,
                        connect_window,
                    )
                })
                .map_err(LoadError::Io)?,
        );
    }
    barrier.wait();
    let started = Instant::now();
    let outcomes: Vec<WorkerOutcome> = workers
        .into_iter()
        .map(|w| {
            w.join().unwrap_or_else(|_| {
                let mut failed = WorkerOutcome::default();
                failed.violations.push("client worker panicked".into());
                failed
            })
        })
        .collect();
    let wall_ns = started.elapsed().as_nanos() as u64;

    // Merge client tallies.
    let mut violations = Vec::new();
    let mut latencies = Vec::new();
    let mut replies = 0usize;
    let mut tallies = vec![(0usize, 0usize, 0usize, 0usize); tenant_count];
    for outcome in outcomes {
        latencies.extend(outcome.latencies);
        replies += outcome.replies;
        violations.extend(outcome.violations);
        for (t, counts) in outcome.per_tenant.iter().enumerate() {
            tallies[t].0 += counts.0;
            tallies[t].1 += counts.1;
            tallies[t].2 += counts.2;
            tallies[t].3 += counts.3;
        }
    }
    if replies != trace.requests.len() {
        violations.push(format!(
            "{} replies for {} requests",
            replies,
            trace.requests.len()
        ));
    }

    // Final accounting over the still-open setup connection.
    let stats_reply = roundtrip(&mut setup, "stats")?;
    let stats = parse_stats(&stats_reply)
        .ok_or_else(|| LoadError::Setup(format!("unparseable stats reply: {stats_reply}")))?;
    let _ = setup.stream.write_all(b"quit\n");

    let mut tenants = Vec::with_capacity(tenant_count);
    for (t, tenant) in trace.tenants.iter().enumerate() {
        let id = tenant.config.id.as_str();
        let (fits_admitted, fits_rejected, answers_ok, answers_raced) = tallies[t];
        let budget = tenant.config.budget.value();
        let charge = tenant.charge_per_fit();
        let fits_requested = trace
            .requests
            .iter()
            .filter(|r| matches!(r, Request::Fit { tenant, .. } if tenant == id))
            .count();
        let answers_requested = trace
            .requests
            .iter()
            .filter(|r| matches!(r, Request::Answer { tenant, .. } if tenant == id))
            .count();

        // Order-independent oracle: every fit charges the same ε, so the
        // ledger's check-and-debit admits exactly the same count in any
        // interleaving.
        let mut oracle_spent = 0.0f64;
        let mut expected_admitted = 0usize;
        for _ in 0..fits_requested {
            if oracle_spent + charge <= budget + overdraw_slack(budget) {
                oracle_spent += charge;
                expected_admitted += 1;
            }
        }
        if fits_admitted != expected_admitted {
            violations.push(format!(
                "{id}: {fits_admitted} fits admitted under concurrency, the \
                 order-independent floor is exactly {expected_admitted}"
            ));
        }
        if fits_admitted + fits_rejected != fits_requested {
            violations.push(format!(
                "{id}: {fits_admitted} + {fits_rejected} fit outcomes for \
                 {fits_requested} fit requests"
            ));
        }
        if answers_ok + answers_raced != answers_requested {
            violations.push(format!(
                "{id}: {answers_ok} + {answers_raced} answer outcomes for \
                 {answers_requested} answer requests"
            ));
        }

        // Bit-for-bit reconciliation: fold the receipts (all equal to
        // `charge`, so the fold is the same f64 sequence the ledger ran)
        // and compare exactly against the reported spend.
        let mut receipt_sum = 0.0f64;
        for _ in 0..fits_admitted {
            receipt_sum += charge;
        }
        let Some(&(spent_reported, stats_fits)) = stats.get(id) else {
            violations.push(format!("{id}: missing from the final stats reply"));
            continue;
        };
        if spent_reported != receipt_sum {
            violations.push(format!(
                "{id}: ledger spend {spent_reported} does not reconcile to the \
                 receipt fold {receipt_sum} (diff {:e})",
                spent_reported - receipt_sum
            ));
        }
        if stats_fits != fits_admitted {
            violations.push(format!(
                "{id}: stats reports {stats_fits} fits, clients hold {fits_admitted} receipts"
            ));
        }

        tenants.push(LoadTenantScore {
            id: id.to_string(),
            budget,
            charge,
            fits_requested,
            fits_admitted,
            fits_rejected,
            expected_admitted,
            spent_reported,
            receipt_sum,
            answers_requested,
            answers_ok,
            answers_raced,
        });
    }

    // In-process servers must have shed nothing and must drain cleanly.
    let mut shed = 0;
    if let Some(server) = server.as_mut() {
        shed = server
            .stats()
            .shed
            .load(std::sync::atomic::Ordering::SeqCst);
        if shed > 0 {
            violations.push(format!(
                "server shed {shed} connections under the sized cap"
            ));
        }
        if !server.shutdown(Duration::from_secs(30)) {
            violations.push("server failed to drain within the shutdown budget".into());
        }
    }

    Ok(LoadReport {
        scenario: scenario.name.clone(),
        model,
        seed: trace.seed,
        connections,
        requests: trace.requests.len(),
        replies,
        shed,
        tenants,
        violations,
        timing: SimTiming::from_latencies(wall_ns, &mut latencies),
    })
}

/// The outcome of one mostly-idle connection-scaling run
/// ([`run_idle`]): thousands of open-but-silent connections, a handful
/// of probe requests measuring latency under that load, and the
/// reactor's own counters proving the idle mass costs neither threads
/// nor wakeups.
#[derive(Clone, Debug)]
pub struct IdleReport {
    /// Serving model actually in effect.
    pub model: NetModel,
    /// Idle connections held open for the whole run (the probe
    /// connection is extra).
    pub connections: usize,
    /// Available cores at run time (the thread bound is `2 × cores`).
    pub cores: usize,
    /// Server-side thread count (acceptor + event loops), measured as
    /// the `/proc/self/status` `Threads:` delta across server startup;
    /// `None` where that interface does not exist.
    pub server_threads: Option<usize>,
    /// Growth of the reactor's spurious-wakeup counter over the idle
    /// dwell — must be zero: silent connections generate no events.
    pub spurious_delta: u64,
    /// Live connections the server reported at peak.
    pub live_reported: u64,
    /// Probe-measured request latency while the idle mass was open.
    pub timing: SimTiming,
    /// Every violation, in detection order; empty means the run passed.
    pub violations: Vec<String>,
}

impl IdleReport {
    /// Whether every gate held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Server threads per thousand connections (the gateable inverse of
    /// conns-per-thread: `bench_gate` fails on increases, and a scaling
    /// regression — more threads for the same connection count — is an
    /// increase here). `None` when the thread count could not be
    /// measured.
    pub fn threads_per_kconn(&self) -> Option<f64> {
        self.server_threads
            .map(|t| t as f64 * 1000.0 / self.connections as f64)
    }

    /// Full machine-readable report.
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str("blowfish-idle/v1".into())),
            (
                "model".into(),
                JsonValue::Str(self.model.label().to_string()),
            ),
            (
                "connections".into(),
                JsonValue::Num(self.connections as f64),
            ),
            ("cores".into(), JsonValue::Num(self.cores as f64)),
            (
                "server_threads".into(),
                match self.server_threads {
                    Some(t) => JsonValue::Num(t as f64),
                    None => JsonValue::Null,
                },
            ),
            (
                "spurious_delta".into(),
                JsonValue::Num(self.spurious_delta as f64),
            ),
            (
                "live_reported".into(),
                JsonValue::Num(self.live_reported as f64),
            ),
            (
                "violations".into(),
                JsonValue::Arr(
                    self.violations
                        .iter()
                        .map(|v| JsonValue::Str(v.clone()))
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// A `bench_gate`-consumable snapshot under `net-idle-<model>/…`
    /// keys: probe tail latencies plus `threads_per_kconn` (gate the
    /// latter with `--min-ns 0` — it is a ratio far below the gate's
    /// default small-baseline skip).
    pub fn snapshot_json(&self) -> String {
        let group = format!("net-idle-{}", self.model.label());
        let t = &self.timing;
        let mut results = vec![
            (
                format!("{group}/p50_latency_ns"),
                JsonValue::Num(t.p50_latency_ns as f64),
            ),
            (
                format!("{group}/p95_latency_ns"),
                JsonValue::Num(t.p95_latency_ns as f64),
            ),
            (
                format!("{group}/p99_latency_ns"),
                JsonValue::Num(t.p99_latency_ns as f64),
            ),
            (
                format!("{group}/mean_latency_ns"),
                JsonValue::Num(t.mean_latency_ns),
            ),
        ];
        if let Some(ratio) = self.threads_per_kconn() {
            results.push((format!("{group}/threads_per_kconn"), JsonValue::Num(ratio)));
        }
        JsonValue::Obj(vec![
            (
                "schema".into(),
                JsonValue::Str("blowfish-net-snapshot/v1".into()),
            ),
            (
                "scenario".into(),
                JsonValue::Str(format!("idle-{}", self.model.label())),
            ),
            (
                "connections".into(),
                JsonValue::Num(self.connections as f64),
            ),
            ("results_ns".into(), JsonValue::Obj(results)),
        ])
        .to_pretty()
    }
}

/// Runs the mostly-idle connection-scaling test against an in-process
/// server: open `connections` sockets, leave them all silent, and prove
/// the idle mass is cheap — server thread count stays ≤ 2 × cores
/// (measured via `/proc/self/status`, the tentpole property a
/// thread-per-connection model cannot satisfy), the reactor's
/// spurious-wakeup counter does not move during a `dwell` of silence,
/// and `probes` probe requests served *through* the idle mass come back
/// correct with sane latency.
pub fn run_idle(
    connections: usize,
    model: NetModel,
    probes: usize,
    dwell: Duration,
) -> Result<IdleReport, LoadError> {
    if connections == 0 || probes == 0 {
        return Err(LoadError::Setup(
            "need at least one connection and one probe".into(),
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads_before = proc_thread_count();
    let mut server = TcpServer::bind(
        Arc::new(Service::new()),
        "127.0.0.1:0",
        NetConfig {
            max_connections: connections + 2,
            idle_timeout: Duration::from_secs(600),
            listen_backlog: connections + CONNECT_WINDOW,
            model,
        },
    )
    .map_err(LoadError::Io)?;
    let model = server.model();
    let addr = server.local_addr().to_string();
    let mut violations = Vec::new();

    // The idle mass: one fd per connection (no reader clones — fd budget
    // matters at this scale), banner consumed so each is fully admitted.
    let mut idle_conns = Vec::with_capacity(connections);
    for i in 0..connections {
        let stream = TcpStream::connect(&addr).map_err(LoadError::Io)?;
        stream
            .set_read_timeout(Some(REPLY_TIMEOUT))
            .map_err(LoadError::Io)?;
        let mut stream = stream;
        let banner = read_line_raw(&mut stream).map_err(LoadError::Io)?;
        if !banner.starts_with("ok blowfish/1") {
            return Err(LoadError::Setup(format!(
                "idle connection {i} got banner: {banner}"
            )));
        }
        idle_conns.push(stream);
    }

    // Thread census with the full connection count open: under the
    // reactor this is acceptor + O(cores) event loops, regardless of
    // `connections`.
    let threads_with_load = proc_thread_count();
    let server_threads = match (threads_before, threads_with_load) {
        (Some(before), Some(with)) => Some(with.saturating_sub(before)),
        _ => None,
    };
    if model == NetModel::Reactor {
        if let Some(server_threads) = server_threads {
            if server_threads > 2 * cores {
                violations.push(format!(
                    "{server_threads} server threads for {connections} idle connections \
                     exceeds the 2 × cores = {} bound",
                    2 * cores
                ));
            }
        }
    }

    // Counter baseline, then the silent dwell: no idle connection may
    // cost a single readiness event.
    let mut probe = connect(&addr)?;
    let before = net_stats(&mut probe)?;
    std::thread::sleep(dwell);
    let after = net_stats(&mut probe)?;
    let spurious_delta =
        (after.spurious_wakeups as i64 - before.spurious_wakeups as i64).max(0) as u64;
    if model == NetModel::Reactor && spurious_delta != 0 {
        violations.push(format!(
            "{spurious_delta} spurious wakeups during {dwell:?} of silence \
             across {connections} idle connections"
        ));
    }
    let live_reported = after.live;
    if live_reported != (connections + 1) as u64 {
        violations.push(format!(
            "server reports {live_reported} live connections, \
             {connections} idle + 1 probe are open"
        ));
    }

    // Probe latency through the idle mass.
    let mut latencies = Vec::with_capacity(probes);
    let started = Instant::now();
    for _ in 0..probes {
        let sent = Instant::now();
        let reply = roundtrip(&mut probe, "help")?;
        if !reply.starts_with("ok help blowfish/1") {
            violations.push(format!("probe got unexpected reply: {reply}"));
            break;
        }
        latencies.push(sent.elapsed().as_nanos() as u64);
    }
    let wall_ns = started.elapsed().as_nanos() as u64;

    let shed = server.stats().shed.load(Ordering::SeqCst);
    if shed > 0 {
        violations.push(format!(
            "server shed {shed} connections under the sized cap"
        ));
    }
    let _ = probe.stream.write_all(b"quit\n");
    drop(probe);
    drop(idle_conns);
    if !server.shutdown(Duration::from_secs(30)) {
        violations.push("server failed to drain within the shutdown budget".into());
    }

    Ok(IdleReport {
        model,
        connections,
        cores,
        server_threads,
        spurious_delta,
        live_reported,
        timing: SimTiming::from_latencies(wall_ns, &mut latencies),
        violations,
    })
}

/// The `Threads:` row of `/proc/self/status` (`None` off Linux or on
/// parse failure).
fn proc_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// The reactor-visible counters a `stats net` reply carries.
#[derive(Clone, Copy, Debug, Default)]
struct NetCounters {
    live: u64,
    spurious_wakeups: u64,
}

/// Issues `stats net` on `client` and parses the counters out of the
/// `ok stats net model=… k=v …` reply.
fn net_stats(client: &mut Client) -> Result<NetCounters, LoadError> {
    let reply = roundtrip(client, "stats net")?;
    if !reply.starts_with("ok stats net ") {
        return Err(LoadError::Setup(format!(
            "unexpected stats net reply: {reply}"
        )));
    }
    let mut counters = NetCounters::default();
    let mut seen = 0;
    for field in reply.split(' ') {
        if let Some(v) = field.strip_prefix("live=") {
            counters.live = v.parse().map_err(|_| bad_counter(&reply))?;
            seen += 1;
        } else if let Some(v) = field.strip_prefix("spurious_wakeups=") {
            counters.spurious_wakeups = v.parse().map_err(|_| bad_counter(&reply))?;
            seen += 1;
        }
    }
    if seen != 2 {
        return Err(bad_counter(&reply));
    }
    Ok(counters)
}

fn bad_counter(reply: &str) -> LoadError {
    LoadError::Setup(format!("unparseable stats net counters: {reply}"))
}

/// Reads one `\n`-terminated line straight off a socket (no buffered
/// reader, no fd clone — for the idle mass where fds are the budget).
fn read_line_raw(stream: &mut TcpStream) -> std::io::Result<String> {
    use std::io::Read;
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 || byte[0] == b'\n' {
            return Ok(String::from_utf8_lossy(&line).into_owned());
        }
        line.push(byte[0]);
    }
}

/// A connected client with the banner already consumed.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(addr: &str) -> Result<Client, LoadError> {
    // Under a mass connect the listener's SYN queue may defer us; retry
    // briefly rather than failing the whole run on one slow connect.
    let deadline = Instant::now() + Duration::from_secs(30);
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(stream) => break stream,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(LoadError::Io(e)),
        }
    };
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(REPLY_TIMEOUT))
        .map_err(LoadError::Io)?;
    let reader_stream = stream.try_clone().map_err(LoadError::Io)?;
    let mut client = Client {
        stream,
        reader: BufReader::new(reader_stream),
    };
    let mut banner = String::new();
    client
        .reader
        .read_line(&mut banner)
        .map_err(LoadError::Io)?;
    if !banner.starts_with("ok blowfish/1") {
        return Err(LoadError::Setup(format!("unexpected banner: {banner}")));
    }
    Ok(client)
}

fn roundtrip(client: &mut Client, line: &str) -> Result<String, LoadError> {
    client
        .stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(LoadError::Io)?;
    let mut reply = String::new();
    client.reader.read_line(&mut reply).map_err(LoadError::Io)?;
    Ok(reply.trim_end().to_string())
}

/// One client connection: wait for a slot in the connect ramp (external
/// servers only — see `connect_window` in [`run_load`]), open, sync on
/// the barrier, replay the batch measuring and validating every reply,
/// quit.
fn client_worker(
    addr: &str,
    c: usize,
    batch: Vec<(String, Expect)>,
    tenants: usize,
    barrier: &Barrier,
    connected: &AtomicUsize,
    connect_window: usize,
) -> WorkerOutcome {
    let mut outcome = WorkerOutcome {
        per_tenant: vec![(0, 0, 0, 0); tenants],
        ..WorkerOutcome::default()
    };
    // Pace the ramp: connect only once all but `connect_window` of the
    // lower-indexed clients have finished their handshake, so at most
    // `connect_window` handshakes are ever in flight at once.
    while connected
        .load(Ordering::Acquire)
        .saturating_add(connect_window)
        <= c
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    let client = connect(addr);
    // Count failures too, or one dead slot would stall the entire ramp.
    connected.fetch_add(1, Ordering::Release);
    let mut client = match client {
        Ok(client) => client,
        Err(e) => {
            // Sync anyway so the other clients are not deadlocked on the
            // barrier by this failure.
            barrier.wait();
            outcome.violations.push(format!("connect failed: {e}"));
            return outcome;
        }
    };
    barrier.wait();
    for (line, expect) in &batch {
        let started = Instant::now();
        let reply = match roundtrip(&mut client, line) {
            Ok(reply) if !reply.is_empty() => reply,
            Ok(_) => {
                outcome
                    .violations
                    .push(format!("connection closed mid-run before: {line}"));
                return outcome;
            }
            Err(e) => {
                outcome
                    .violations
                    .push(format!("dropped reply ({e}): {line}"));
                return outcome;
            }
        };
        outcome.latencies.push(started.elapsed().as_nanos() as u64);
        outcome.replies += 1;
        validate_reply(&reply, *expect, line, &mut outcome);
    }
    let _ = client.stream.write_all(b"quit\n");
    outcome
}

/// Holds one reply against its request's contract.
fn validate_reply(reply: &str, expect: Expect, line: &str, outcome: &mut WorkerOutcome) {
    match expect {
        Expect::Fit { tenant, charge } => {
            if reply.starts_with("ok fit ") {
                match parse_kv(reply, "charged=") {
                    Some(charged) if charged == charge => {
                        // Receipt accounting fields must also be finite
                        // numbers (corruption check).
                        let intact = parse_kv(reply, "spent=").is_some_and(f64::is_finite)
                            && parse_kv(reply, "remaining=").is_some_and(f64::is_finite);
                        if intact {
                            outcome.per_tenant[tenant].0 += 1;
                        } else {
                            outcome
                                .violations
                                .push(format!("corrupt fit receipt: {reply}"));
                        }
                    }
                    Some(charged) => outcome.violations.push(format!(
                        "fit charged {charged}, expected exactly {charge}: {reply}"
                    )),
                    None => outcome
                        .violations
                        .push(format!("corrupt fit receipt: {reply}")),
                }
            } else if reply.starts_with("err ") && reply.contains("budget exhausted") {
                outcome.per_tenant[tenant].1 += 1;
            } else {
                outcome
                    .violations
                    .push(format!("unexpected fit reply for {line}: {reply}"));
            }
        }
        Expect::Answer { tenant, queries } => {
            if let Some(rest) = reply.strip_prefix("ok answer ") {
                let mut fields = rest.split(' ');
                let count: Option<usize> = fields.next().and_then(|n| n.parse().ok());
                let values: Vec<f64> = fields.filter_map(|v| v.parse().ok()).collect();
                if count == Some(queries)
                    && values.len() == queries
                    && values.iter().all(|v| v.is_finite())
                {
                    outcome.per_tenant[tenant].2 += 1;
                } else {
                    outcome.violations.push(format!(
                        "corrupt answer batch (want {queries} finite values): {reply}"
                    ));
                }
            } else if reply.starts_with("err ") && reply.contains("no estimate stored") {
                // Legitimate race: this tenant's first fit may still be
                // in flight on another connection.
                outcome.per_tenant[tenant].3 += 1;
            } else {
                outcome
                    .violations
                    .push(format!("unexpected answer reply for {line}: {reply}"));
            }
        }
    }
}

/// Pulls the f64 after `key` out of a receipt line.
fn parse_kv(reply: &str, key: &str) -> Option<f64> {
    let start = reply.find(key)? + key.len();
    let rest = &reply[start..];
    let end = rest.find(' ').unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses `ok stats builds=… tenants=… | id spent=… remaining=… fits=… …`
/// into `{id: (spent, fits)}`.
fn parse_stats(reply: &str) -> Option<HashMap<String, (f64, usize)>> {
    if !reply.starts_with("ok stats ") {
        return None;
    }
    let mut out = HashMap::new();
    for row in reply.split(" | ").skip(1) {
        let mut fields = row.split(' ');
        let id = fields.next()?.to_string();
        let mut spent = None;
        let mut fits = None;
        for field in fields {
            if let Some(v) = field.strip_prefix("spent=") {
                spent = v.parse().ok();
            } else if let Some(v) = field.strip_prefix("fits=") {
                fits = v.parse().ok();
            }
        }
        out.insert(id, (spent?, fits?));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down exhaustion scenario: tight budgets so both fit
    /// outcomes occur, bursty arrivals, small enough for `cargo test`.
    fn small_scenario() -> Scenario {
        let mut scenario = Scenario::find("exhaustion-tight").expect("catalog scenario");
        scenario.requests = 160;
        scenario
    }

    #[test]
    fn loopback_load_test_reconciles_exactly_under_both_models() {
        for model in [NetModel::Threads, NetModel::Reactor] {
            let scenario = small_scenario();
            let report = run_load(&scenario, 24, None, model).unwrap();
            assert!(report.passed(), "{model:?}: {:#?}", report.violations);
            assert_eq!(report.model, model.effective());
            assert_eq!(report.requests, 160);
            assert_eq!(report.replies, 160);
            assert_eq!(report.shed, 0);
        }
        let scenario = small_scenario();
        let report = run_load(&scenario, 24, None, NetModel::platform_default()).unwrap();
        assert!(report.passed(), "{:#?}", report.violations);
        let timing = &report.timing;
        assert!(timing.p50_latency_ns <= timing.p95_latency_ns);
        assert!(timing.p95_latency_ns <= timing.p99_latency_ns);
        assert!(timing.requests_per_sec > 0.0);
        assert!(timing.ns_per_request > 0.0);
        let mut saw_rejection = false;
        for t in &report.tenants {
            // Uniform ε = 0.5: admission cuts at exactly ⌊budget/ε⌋ even
            // under concurrency.
            let floor = (t.budget / t.charge).floor() as usize;
            assert_eq!(t.fits_admitted, floor.min(t.fits_requested), "{}", t.id);
            assert_eq!(t.spent_reported, t.fits_admitted as f64 * t.charge);
            saw_rejection |= t.fits_rejected > 0;
        }
        assert!(saw_rejection, "the tight scenario must exercise rejections");
    }

    #[test]
    fn snapshot_json_exposes_gateable_metrics() {
        let scenario = small_scenario();
        let report = run_load(&scenario, 8, None, NetModel::platform_default()).unwrap();
        assert!(report.passed(), "{:#?}", report.violations);
        let snapshot = JsonValue::parse(&report.snapshot_json()).unwrap();
        let metrics = crate::report::snapshot::extract_metrics(&snapshot, None);
        for metric in [
            "p50_latency_ns",
            "p95_latency_ns",
            "p99_latency_ns",
            "mean_latency_ns",
            "ns_per_request",
        ] {
            let key = format!("net-{}/{metric}", scenario.name);
            assert!(
                metrics.get(&key).is_some_and(|v| *v > 0.0),
                "missing metric {key} in {metrics:?}"
            );
        }
        // The full report parses too and carries the violation list.
        let full = JsonValue::parse(&report.to_json()).unwrap();
        assert!(full.get("violations").is_some());
        assert!(full.get("timing").is_some());
    }

    #[test]
    fn idle_connections_are_thread_and_wakeup_free() {
        // Scaled down for `cargo test`; CI runs 4096 via the CLI.
        let report = run_idle(
            128,
            NetModel::platform_default(),
            32,
            Duration::from_millis(300),
        )
        .unwrap();
        assert!(report.passed(), "{:#?}", report.violations);
        assert_eq!(report.connections, 128);
        assert_eq!(report.live_reported, 129);
        if report.model == NetModel::Reactor {
            assert_eq!(report.spurious_delta, 0);
            let threads = report.server_threads.expect("proc census on linux");
            assert!(
                threads <= 2 * report.cores,
                "{threads} threads for {} cores",
                report.cores
            );
            assert!(report.threads_per_kconn().unwrap() > 0.0);
        }
        // Both JSON faces parse; the snapshot carries the gateable keys.
        let full = JsonValue::parse(&report.to_json()).unwrap();
        assert!(full.get("spurious_delta").is_some());
        let snapshot = JsonValue::parse(&report.snapshot_json()).unwrap();
        let metrics = crate::report::snapshot::extract_metrics(&snapshot, None);
        let group = format!("net-idle-{}", report.model.label());
        assert!(metrics.contains_key(&format!("{group}/p99_latency_ns")));
        if report.server_threads.is_some() {
            assert!(metrics.contains_key(&format!("{group}/threads_per_kconn")));
        }
    }

    #[test]
    fn policy_tokens_cover_every_family() {
        let scenario = small_scenario();
        for family in [
            PolicyFamily::Line,
            PolicyFamily::ThetaLine { theta: 4 },
            PolicyFamily::Grid,
            PolicyFamily::ThetaGrid { theta: 2 },
            PolicyFamily::Tree,
        ] {
            let token = policy_token(&scenario, family);
            // Every token must parse back through the wire codec.
            let line = format!("tenant t policy={token} eps=0.5 budget=1 data=uniform:0");
            let decoded = Codec::new().decode(&line);
            assert!(decoded.is_ok(), "{token}: {decoded:?}");
        }
    }

    #[test]
    fn stats_and_receipt_parsers_round_trip() {
        let stats = parse_stats(
            "ok stats builds=3 tenants=2 | a spent=1.5 remaining=0.5 fits=3 estimates=1 \
             | b spent=0 remaining=9 fits=0 estimates=0",
        )
        .unwrap();
        assert_eq!(stats["a"], (1.5, 3));
        assert_eq!(stats["b"], (0.0, 0));
        assert!(parse_stats("err nope").is_none());
        assert_eq!(
            parse_kv("ok fit h charged=0.5 spent=1 remaining=0.5", "charged="),
            Some(0.5)
        );
        assert_eq!(parse_kv("ok fit h", "charged="), None);
    }
}
