//! Scenario definitions: the orthogonal axes a simulated workload is
//! composed from, plus the canned catalog the CI smoke gate replays.
//!
//! A [`Scenario`] is pure data — tenant population, policy families,
//! domain sizes, budget distribution, query mix, arrival pattern, and
//! mechanism choice. [`generate`](crate::simulate::generate) expands it
//! into a concrete [`Trace`](crate::simulate::Trace) deterministically
//! from its seed; [`run`](crate::simulate::run) replays and scores it.

use blowfish_core::{BudgetDistribution, QueryMix};
use blowfish_data::Shape;

use crate::BenchError;

/// The policy-graph family a simulated tenant runs under (Sections 3/5 of
/// the paper; `Tree` exercises the generic Theorem-4.3 machinery via a
/// star graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyFamily {
    /// `G¹_k` over a 1-D domain.
    Line,
    /// `G^θ_k` over a 1-D domain.
    ThetaLine {
        /// Distance threshold θ ≥ 2.
        theta: usize,
    },
    /// `G¹_{k²}` over a k×k grid.
    Grid,
    /// `G^θ_{k²}` over a k×k grid.
    ThetaGrid {
        /// Distance threshold θ ≥ 2.
        theta: usize,
    },
    /// A star tree policy (hub vertex 0), served through the incidence.
    Tree,
}

impl PolicyFamily {
    /// Whether the family lives over a 2-D grid domain.
    pub fn is_2d(&self) -> bool {
        matches!(self, PolicyFamily::Grid | PolicyFamily::ThetaGrid { .. })
    }

    /// Stable label used in reports.
    pub fn label(&self) -> String {
        match self {
            PolicyFamily::Line => "line".to_string(),
            PolicyFamily::ThetaLine { theta } => format!("theta-line-{theta}"),
            PolicyFamily::Grid => "grid".to_string(),
            PolicyFamily::ThetaGrid { theta } => format!("theta-grid-{theta}"),
            PolicyFamily::Tree => "tree-star".to_string(),
        }
    }
}

/// How request arrivals are spread over the tenant population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalPattern {
    /// Each request picks a tenant uniformly at random.
    Uniform,
    /// Runs of `burst` consecutive requests stick to one tenant before a
    /// new tenant is drawn — bursty per-tenant traffic.
    Bursty {
        /// Burst length (≥ 1).
        burst: usize,
    },
    /// Zipf-weighted tenant choice: tenant `i` is drawn with probability
    /// ∝ `1/(i+1)^skew` — a hot-key distribution where low-index tenants
    /// dominate the traffic.
    HotKey {
        /// Zipf exponent (> 0); larger is more skewed.
        skew: f64,
    },
}

/// Which mechanism each fit request names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecChoice {
    /// `spec: None` — every fit goes through the session planner's
    /// paper-recommended default for the tenant's policy family.
    Planner,
    /// Mechanisms with a closed-form expected per-query error, so the
    /// scorer can hold measured utility against theory: line tenants run
    /// `Transformed + Laplace` (Theorem 5.2), every other family runs
    /// the ε/2-DP Laplace baseline.
    ClosedForm,
    /// Every fit names the matrix mechanism with the hierarchical
    /// strategy (`MechanismSpec::MatrixHist`). Above
    /// [`SPARSE_DOMAIN_THRESHOLD`](blowfish_engine::SPARSE_DOMAIN_THRESHOLD)
    /// the engine plans it through the sparse path: CSR strategy plus CG
    /// pseudoinverse application, never a dense k×k A⁺ — the only route
    /// that reaches large domains like k = 16 384.
    SparseMatrix,
}

/// One fully specified simulation scenario: every axis of the workload.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Unique catalog name (also the report/JSON file stem).
    pub name: String,
    /// One line on what the scenario stresses.
    pub description: String,
    /// Master seed: trace generation (tenant data, budgets, request
    /// sequence, per-fit noise seeds) is a pure function of it.
    pub seed: u64,
    /// Number of tenants.
    pub tenants: usize,
    /// Policy families, cycled over tenant indices.
    pub policies: Vec<PolicyFamily>,
    /// Domain size `k` for 1-D families (line, θ-line, tree).
    pub domain_1d: usize,
    /// Grid side `k` for 2-D families (k×k).
    pub grid_k: usize,
    /// Records per tenant population (synthetic, exact).
    pub scale: u64,
    /// Per-release grant ε (Blowfish strategies fit at ε, baselines at
    /// ε/2 per the Section-6 convention).
    pub eps: f64,
    /// How total budgets are assigned across the tenant population.
    pub budget: BudgetDistribution,
    /// Total requests in the trace (including the per-tenant warm-up
    /// fits that open the trace).
    pub requests: usize,
    /// Probability a non-warm-up request is a fit (the rest are answer
    /// batches).
    pub fit_fraction: f64,
    /// Queries per answer request.
    pub queries_per_answer: usize,
    /// Shape mix of the sampled queries.
    pub mix: QueryMix,
    /// How arrivals distribute over tenants.
    pub arrival: ArrivalPattern,
    /// Mechanism selection policy.
    pub specs: SpecChoice,
}

impl Scenario {
    /// Validates the axes (non-empty population, usable domains, a
    /// sensible fit fraction) before any generation work.
    pub fn validate(&self) -> Result<(), BenchError> {
        let bad = |what: &'static str| Err(BenchError::Config { what });
        if self.tenants == 0 || self.policies.is_empty() {
            return bad("scenario needs at least one tenant and one policy family");
        }
        if self.requests < self.tenants {
            return bad("scenario needs at least one request per tenant (warm-up fits)");
        }
        if self.domain_1d < 2 || self.grid_k < 2 {
            return bad("scenario domains need at least 2 values per dimension");
        }
        if !(0.0..=1.0).contains(&self.fit_fraction) {
            return bad("fit_fraction must lie in [0, 1]");
        }
        if self.queries_per_answer == 0 {
            return bad("answer requests need at least one query");
        }
        if !self.eps.is_finite() || self.eps <= 0.0 {
            return bad("per-release ε must be positive and finite");
        }
        match self.arrival {
            ArrivalPattern::Bursty { burst: 0 } => bad("bursty arrivals need burst ≥ 1"),
            ArrivalPattern::HotKey { skew } if !(skew.is_finite() && skew > 0.0) => {
                bad("hot-key arrivals need a positive finite skew")
            }
            _ => Ok(()),
        }
    }

    /// Policy family of the tenant at `index` (families cycle).
    pub fn family(&self, index: usize) -> PolicyFamily {
        self.policies[index % self.policies.len()]
    }

    /// Population shape of the tenant at `index` (shapes cycle, so a
    /// multi-tenant scenario mixes sparsity profiles).
    pub fn shape(&self, index: usize) -> Shape {
        const SHAPES: [Shape; 4] = [
            Shape::BurstySeries,
            Shape::LogNormal,
            Shape::Spiky,
            Shape::PowerLaw,
        ];
        SHAPES[index % SHAPES.len()]
    }

    /// The four canned scenarios the CI `simulate-smoke` gate replays:
    /// small enough to finish in seconds, together covering mixed policy
    /// families, exact budget exhaustion, skewed 2-D traffic, and
    /// large-domain sparse planning.
    pub fn quick_catalog() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "smoke-mixed".to_string(),
                description: "4 tenants across line/θ-line/tree policies, balanced query \
                              mix, ample budgets; closed-form utility is enforced"
                    .to_string(),
                seed: 7,
                tenants: 4,
                policies: vec![
                    PolicyFamily::Line,
                    PolicyFamily::Line,
                    PolicyFamily::ThetaLine { theta: 4 },
                    PolicyFamily::Tree,
                ],
                domain_1d: 64,
                grid_k: 8,
                scale: 20_000,
                eps: 0.5,
                budget: BudgetDistribution::Fixed(1e6),
                requests: 1200,
                fit_fraction: 0.35,
                queries_per_answer: 24,
                mix: QueryMix::balanced(),
                arrival: ArrivalPattern::Uniform,
                specs: SpecChoice::ClosedForm,
            },
            Scenario {
                name: "exhaustion-tight".to_string(),
                description: "fit-heavy bursty traffic against tiered tight budgets; \
                              admission must cut off at exactly ⌊budget/ε⌋ per tenant"
                    .to_string(),
                seed: 11,
                tenants: 4,
                policies: vec![PolicyFamily::Line],
                domain_1d: 32,
                grid_k: 8,
                scale: 5_000,
                eps: 0.5,
                budget: BudgetDistribution::Tiered {
                    low: 5.0,
                    high: 25.0,
                    high_every: 2,
                },
                requests: 600,
                fit_fraction: 0.9,
                queries_per_answer: 8,
                mix: QueryMix::ranges_only(),
                arrival: ArrivalPattern::Bursty { burst: 5 },
                specs: SpecChoice::ClosedForm,
            },
            Scenario {
                name: "grid-hotkey".to_string(),
                description: "5 tenants mixing 2-D grid/θ-grid with 1-D policies under \
                              zipf hot-key arrivals; planner-chosen mechanisms"
                    .to_string(),
                seed: 23,
                tenants: 5,
                policies: vec![
                    PolicyFamily::Grid,
                    PolicyFamily::ThetaGrid { theta: 2 },
                    PolicyFamily::Grid,
                    PolicyFamily::Line,
                    PolicyFamily::ThetaLine { theta: 2 },
                ],
                domain_1d: 128,
                grid_k: 12,
                scale: 10_000,
                eps: 1.0,
                budget: BudgetDistribution::Uniform {
                    lo: 50.0,
                    hi: 100.0,
                },
                requests: 1000,
                fit_fraction: 0.3,
                queries_per_answer: 16,
                mix: QueryMix {
                    point: 1.0,
                    range: 2.0,
                    prefix: 1.0,
                    marginal: 1.0,
                },
                arrival: ArrivalPattern::HotKey { skew: 1.2 },
                specs: SpecChoice::Planner,
            },
            Scenario {
                name: "sparse-large-domain".to_string(),
                description: "2 θ-line tenants over k = 16384 — far above the dense \
                              planning ceiling — fitting the matrix mechanism through \
                              the sparse CSR + CG path"
                    .to_string(),
                seed: 41,
                tenants: 2,
                policies: vec![PolicyFamily::ThetaLine { theta: 4 }],
                domain_1d: 16_384,
                grid_k: 8,
                scale: 50_000,
                eps: 0.5,
                budget: BudgetDistribution::Fixed(1e6),
                requests: 20,
                fit_fraction: 0.3,
                queries_per_answer: 16,
                mix: QueryMix::ranges_only(),
                arrival: ArrivalPattern::Uniform,
                specs: SpecChoice::SparseMatrix,
            },
        ]
    }

    /// The full catalog: the quick quartet plus heavier soak scenarios
    /// for local perf work.
    pub fn catalog() -> Vec<Scenario> {
        let mut all = Scenario::quick_catalog();
        all.push(Scenario {
            name: "soak-tiered".to_string(),
            description: "8 tenants over every policy family, tiered budgets, hot-key \
                          arrivals, 4k requests — the standard perf soak corpus"
                .to_string(),
            seed: 31,
            tenants: 8,
            policies: vec![
                PolicyFamily::Line,
                PolicyFamily::ThetaLine { theta: 4 },
                PolicyFamily::Tree,
                PolicyFamily::Line,
                PolicyFamily::Grid,
                PolicyFamily::ThetaLine { theta: 8 },
                PolicyFamily::Line,
                PolicyFamily::ThetaGrid { theta: 3 },
            ],
            domain_1d: 256,
            grid_k: 16,
            scale: 100_000,
            eps: 0.25,
            budget: BudgetDistribution::Tiered {
                low: 20.0,
                high: 200.0,
                high_every: 4,
            },
            requests: 4000,
            fit_fraction: 0.25,
            queries_per_answer: 32,
            mix: QueryMix::balanced(),
            arrival: ArrivalPattern::HotKey { skew: 1.0 },
            specs: SpecChoice::Planner,
        });
        all
    }

    /// Looks a scenario up by name in the full catalog.
    pub fn find(name: &str) -> Option<Scenario> {
        Scenario::catalog().into_iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_named_uniquely_and_validates() {
        let all = Scenario::catalog();
        assert!(all.len() >= 4);
        let mut names = std::collections::HashSet::new();
        for s in &all {
            assert!(
                names.insert(s.name.clone()),
                "duplicate scenario {}",
                s.name
            );
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
        // The quick catalog is a strict prefix of the full one.
        assert_eq!(Scenario::quick_catalog().len(), 4);
        assert!(Scenario::find("smoke-mixed").is_some());
        assert!(Scenario::find("sparse-large-domain").is_some());
        assert!(Scenario::find("no-such-scenario").is_none());
    }

    #[test]
    fn validation_rejects_bad_axes() {
        let mut s = Scenario::quick_catalog().remove(0);
        s.tenants = 0;
        assert!(s.validate().is_err());
        let mut s = Scenario::quick_catalog().remove(0);
        s.fit_fraction = 1.5;
        assert!(s.validate().is_err());
        let mut s = Scenario::quick_catalog().remove(0);
        s.arrival = ArrivalPattern::Bursty { burst: 0 };
        assert!(s.validate().is_err());
        let mut s = Scenario::quick_catalog().remove(0);
        s.requests = 1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn families_and_shapes_cycle() {
        let s = Scenario::quick_catalog().remove(0);
        assert_eq!(s.family(0), PolicyFamily::Line);
        assert_eq!(s.family(4), PolicyFamily::Line);
        assert_eq!(s.family(2), PolicyFamily::ThetaLine { theta: 4 });
        assert_eq!(s.shape(1), s.shape(5));
        assert_eq!(PolicyFamily::ThetaGrid { theta: 3 }.label(), "theta-grid-3");
        assert!(PolicyFamily::Grid.is_2d());
        assert!(!PolicyFamily::Tree.is_2d());
    }
}
