//! # blowfish-simulate — trace-driven workload simulation
//!
//! The paper evaluates mechanisms over a handful of fixed workloads;
//! this module turns the multi-tenant [`Service`](blowfish_engine::Service)
//! layer into something that can be *stress-scored*: deterministic,
//! seeded traces of mixed traffic are generated from composable
//! [`Scenario`] axes, replayed through
//! [`Service::replay`](blowfish_engine::Service::replay), and scored
//! against exact oracles. The flow:
//!
//! ```text
//! Scenario ──generate()──▶ Trace ──score()──▶ SimReport (JSON)
//!    axes                   tenants +            gates +
//!  (seeded)                 requests             timing
//! ```
//!
//! **Scenario axes** ([`scenario`]): tenant count, policy family mix
//! (line / θ-line / grid / θ-grid / tree), domain sizes, synthetic
//! population scale and shape, per-release ε, budget distribution
//! (fixed / uniform / tiered), request count, fit-vs-answer ratio,
//! query-shape mix (point / range / prefix / marginal), arrival pattern
//! (uniform / bursty / zipf hot-key), and mechanism choice (planner
//! default vs closed-form mechanisms).
//!
//! **Determinism** ([`trace`]): a trace is a pure function of the
//! scenario seed — same seed ⇒ byte-identical tenants and requests ⇒
//! (because scoring replays serially) an f64-identical deterministic
//! report section. That is what makes `SimReport`s diffable across
//! commits.
//!
//! **Gates** ([`mod@score`]): ledger spend must reconcile bit-for-bit to the
//! fold of fit receipts; admissions must match an analytic oracle that
//! replays the ledger's own admission rule (with uniform per-fit ε this
//! is the `⌊budget/ε⌋` cutoff); measured utility must track the
//! closed-form expectation for mechanisms that have one; failures must
//! be exactly the typed errors the oracle predicts. Any violation fails
//! the run — and, through the `blowfish_simulate --quick` CI step, the
//! build.
//!
//! Run it: `cargo run --release -p blowfish-bench --bin
//! blowfish_simulate -- --quick` (the CI smoke), `--list` for the
//! catalog, `--scenario <name> [--seed N] [--requests N] [--out DIR]`
//! for one scenario with a JSON report.
//!
//! **TCP load testing** ([`loadtest`]): the same traces replayed over a
//! real loopback socket server from hundreds-to-thousands of concurrent
//! connections (`blowfish_loadtest`), with the same exact-reconciliation
//! gates plus zero-drop/zero-corruption reply validation and a
//! `bench_gate`-consumable p50/p95/p99 + throughput snapshot.

pub mod loadtest;
pub mod scenario;
pub mod score;
pub mod trace;

pub use loadtest::{
    policy_token, run_idle, run_load, IdleReport, LoadError, LoadReport, LoadTenantScore,
};
pub use scenario::{ArrivalPattern, PolicyFamily, Scenario, SpecChoice};
pub use score::{
    run, run_with_recovery, score, score_outcomes, RecoveryRun, SimReport, SimTiming, TenantScore,
    UTILITY_FACTOR, UTILITY_MIN_SAMPLES,
};
pub use trace::{generate, Trace, TraceTenant, SIM_HANDLE};
