//! Trace replay and scoring: drives a generated [`Trace`] through a
//! freshly built [`Service`] and holds what actually happened against
//! what *must* happen:
//!
//! * **ledger exactness** — each tenant's cumulative ledger spend must
//!   equal the fold of its fit receipts bit-for-bit (both are the same
//!   sequence of f64 additions in the same order — any difference means
//!   double-charging or a lost receipt);
//! * **admission behavior** — an analytic oracle walks the trace with
//!   the ledger's own admission rule
//!   ([`overdraw_slack`]) and predicts
//!   exactly which fits are admitted; with a uniform per-fit ε this
//!   reduces to the paper-level invariant that rejections start at
//!   precisely `⌊budget/ε⌋` releases;
//! * **utility** — for mechanisms with a closed-form per-query error
//!   (the Laplace baseline and the line policy's Transformed + Laplace,
//!   Theorem 5.2) the measured mean squared error over all answered
//!   queries must sit within a generous factor of theory;
//! * **response sanity** — answers are finite, failures are the typed
//!   errors the oracle predicted, nothing else.
//!
//! Scoring replays serially ([`Service::replay`]), so every check —
//! including which requests are rejected against a tightening budget —
//! is deterministic: the [`SimReport`]'s deterministic section is
//! f64-identical across runs of the same seed. Wall-clock throughput and
//! latency live in a separate `timing` section excluded from
//! [`SimReport::deterministic_json`].

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use blowfish_core::{
    overdraw_slack, Domain, FsyncPolicy, Ledger, LedgerDurability, RangeQuery, RecoveryReport,
};
use blowfish_engine::{EngineError, MechanismSpec, Replayed, Request, Response, Service};
use blowfish_strategies::TreeEstimator;

use crate::report::snapshot::JsonValue;
use crate::simulate::scenario::Scenario;
use crate::simulate::trace::{generate, Trace, TraceTenant};
use crate::BenchError;

/// Measured-vs-theory tolerance: utility violations fire when the
/// measured MSE leaves `[expected/UTILITY_FACTOR, expected·UTILITY_FACTOR]`.
/// Generous on purpose — quick scenarios average a few thousand
/// correlated query samples, so honest runs sit within ~1.3x of theory
/// while a wrong sensitivity or a double-noised release (both ≥ 4x in
/// variance) still trips it.
pub const UTILITY_FACTOR: f64 = 8.0;

/// Minimum answered-query samples before the utility bound is enforced
/// (below this the estimator is too noisy to hold against theory).
pub const UTILITY_MIN_SAMPLES: usize = 64;

/// Per-tenant scoring row of a [`SimReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct TenantScore {
    /// Tenant id.
    pub id: String,
    /// Policy family label.
    pub policy: String,
    /// Registered total budget.
    pub budget: f64,
    /// Per-release grant ε.
    pub eps: f64,
    /// Fit requests issued to this tenant.
    pub fits_requested: usize,
    /// Fits the service admitted (charged + stored).
    pub fits_admitted: usize,
    /// Fits rejected with the typed budget-exhausted error.
    pub fits_rejected: usize,
    /// Fits the analytic oracle predicted would be admitted.
    pub expected_admitted: usize,
    /// Cumulative ε the ledger reports spent.
    pub spent: f64,
    /// Fold of the fit receipts, in replay order.
    pub receipt_sum: f64,
    /// Ledger budget remaining.
    pub remaining: f64,
    /// Answer requests issued to this tenant.
    pub answers_requested: usize,
    /// Answer requests served successfully.
    pub answers_ok: usize,
    /// Individual queries answered across all answer requests.
    pub queries_answered: usize,
    /// Mean squared error of answered queries against the tenant's true
    /// histogram (absent when nothing was answered).
    pub measured_mse: Option<f64>,
    /// Closed-form expected MSE (absent for planner-chosen mechanisms
    /// without a closed form).
    pub expected_mse: Option<f64>,
}

/// Wall-clock measurements of a replay or load-test run (never part of
/// deterministic scoring): sustained throughput plus the latency tail.
#[derive(Clone, Debug, PartialEq)]
pub struct SimTiming {
    /// Total run wall time.
    pub wall_ns: u64,
    /// Requests served per second, sustained over the whole run.
    pub requests_per_sec: f64,
    /// Inverse throughput (`wall_ns / requests`): the form `bench_gate`
    /// can bound, since the gate only fails on *increases* and a
    /// throughput regression is an `ns_per_request` increase.
    pub ns_per_request: f64,
    /// Mean per-request latency.
    pub mean_latency_ns: f64,
    /// Median per-request latency.
    pub p50_latency_ns: u64,
    /// 95th-percentile per-request latency.
    pub p95_latency_ns: u64,
    /// 99th-percentile per-request latency.
    pub p99_latency_ns: u64,
}

impl SimTiming {
    /// Builds the timing section from a run's wall time and raw
    /// per-request latencies (sorted in place). Used by both the serial
    /// replay scorer and the TCP load-test harness, so every timing
    /// report carries the same p50/p95/p99 + throughput shape.
    pub fn from_latencies(wall_ns: u64, latencies: &mut [u64]) -> SimTiming {
        latencies.sort_unstable();
        let requests = latencies.len();
        SimTiming {
            wall_ns,
            requests_per_sec: if wall_ns > 0 {
                requests as f64 / (wall_ns as f64 / 1e9)
            } else {
                0.0
            },
            ns_per_request: wall_ns as f64 / requests.max(1) as f64,
            mean_latency_ns: latencies.iter().sum::<u64>() as f64 / requests.max(1) as f64,
            p50_latency_ns: percentile(latencies, 0.50),
            p95_latency_ns: percentile(latencies, 0.95),
            p99_latency_ns: percentile(latencies, 0.99),
        }
    }
}

/// The machine-readable outcome of one scenario run. Serialized with
/// [`SimReport::to_json`] (full) or [`SimReport::deterministic_json`]
/// (timing section dropped — byte-identical across runs of one seed, the
/// form that is diffed across commits).
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Report schema id (`blowfish-simulate/v1`).
    pub schema: String,
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Requests replayed.
    pub requests: usize,
    /// Per-tenant scores, in onboarding order.
    pub tenants: Vec<TenantScore>,
    /// Every scoring violation, in detection order; empty means the run
    /// passed all gates.
    pub violations: Vec<String>,
    /// Wall-clock measurements.
    pub timing: SimTiming,
}

impl SimReport {
    /// Whether every gate held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Full JSON, timing included.
    pub fn to_json(&self) -> String {
        self.json_value(true).to_pretty()
    }

    /// JSON without the timing section: f64-identical across runs of the
    /// same seed, suitable for committing/diffing.
    pub fn deterministic_json(&self) -> String {
        self.json_value(false).to_pretty()
    }

    fn json_value(&self, with_timing: bool) -> JsonValue {
        let num = |v: f64| JsonValue::Num(v);
        let count = |v: usize| JsonValue::Num(v as f64);
        let opt = |v: Option<f64>| match v {
            Some(x) => JsonValue::Num(x),
            None => JsonValue::Null,
        };
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                JsonValue::Obj(vec![
                    ("id".into(), JsonValue::Str(t.id.clone())),
                    ("policy".into(), JsonValue::Str(t.policy.clone())),
                    ("budget".into(), num(t.budget)),
                    ("eps".into(), num(t.eps)),
                    ("fits_requested".into(), count(t.fits_requested)),
                    ("fits_admitted".into(), count(t.fits_admitted)),
                    ("fits_rejected".into(), count(t.fits_rejected)),
                    ("expected_admitted".into(), count(t.expected_admitted)),
                    ("spent".into(), num(t.spent)),
                    ("receipt_sum".into(), num(t.receipt_sum)),
                    ("remaining".into(), num(t.remaining)),
                    ("answers_requested".into(), count(t.answers_requested)),
                    ("answers_ok".into(), count(t.answers_ok)),
                    ("queries_answered".into(), count(t.queries_answered)),
                    ("measured_mse".into(), opt(t.measured_mse)),
                    ("expected_mse".into(), opt(t.expected_mse)),
                ])
            })
            .collect();
        let mut members = vec![
            ("schema".into(), JsonValue::Str(self.schema.clone())),
            ("scenario".into(), JsonValue::Str(self.scenario.clone())),
            // Exact decimal digits: a u64 seed above 2^53 would lose
            // precision through an f64 JSON number, and the seed is the
            // one field that must reproduce the trace exactly.
            ("seed".into(), JsonValue::Str(self.seed.to_string())),
            ("requests".into(), count(self.requests)),
            ("tenants".into(), JsonValue::Arr(tenants)),
            (
                "violations".into(),
                JsonValue::Arr(
                    self.violations
                        .iter()
                        .map(|v| JsonValue::Str(v.clone()))
                        .collect(),
                ),
            ),
        ];
        if with_timing {
            members.push((
                "timing".into(),
                JsonValue::Obj(vec![
                    ("wall_ns".into(), count(self.timing.wall_ns as usize)),
                    ("requests_per_sec".into(), num(self.timing.requests_per_sec)),
                    ("ns_per_request".into(), num(self.timing.ns_per_request)),
                    ("mean_latency_ns".into(), num(self.timing.mean_latency_ns)),
                    (
                        "p50_latency_ns".into(),
                        count(self.timing.p50_latency_ns as usize),
                    ),
                    (
                        "p95_latency_ns".into(),
                        count(self.timing.p95_latency_ns as usize),
                    ),
                    (
                        "p99_latency_ns".into(),
                        count(self.timing.p99_latency_ns as usize),
                    ),
                ]),
            ));
        }
        JsonValue::Obj(members)
    }
}

/// Closed-form expected squared error of one range query under a
/// tenant's mechanism, when theory gives one:
///
/// * ε/2-DP Laplace baseline: iid per-cell Laplace noise at scale
///   `2/ε`, so a volume-`V` range has variance `V · 2·(2/ε)²`;
/// * line policy `Transformed + Laplace` (Theorem 5.2): a range is the
///   difference of up to two noisy prefix estimates at scale `1/ε`
///   (the boundary prefixes `C₋₁ = 0` and `C_{k−1} = n` are public), so
///   the variance is `2/ε²` per *noisy endpoint*.
fn closed_form_query_var(
    spec: &MechanismSpec,
    eps: f64,
    domain: &Domain,
    q: &RangeQuery,
) -> Option<f64> {
    match spec {
        MechanismSpec::Laplace => {
            let scale = 2.0 / eps; // baseline runs at ε/2, sensitivity 1
            Some(q.volume() as f64 * 2.0 * scale * scale)
        }
        MechanismSpec::Line(TreeEstimator::Laplace) => {
            let k = domain.dim(0);
            let noisy_endpoints = (q.lo[0] > 0) as usize + (q.hi[0] < k - 1) as usize;
            Some(noisy_endpoints as f64 * 2.0 / (eps * eps))
        }
        _ => None,
    }
}

/// Per-tenant accumulator for the replay walk, including the analytic
/// oracle's running state.
#[derive(Default)]
struct TenantTally {
    fits_requested: usize,
    fits_admitted: usize,
    fits_rejected: usize,
    /// Oracle: running spend under the ledger's admission arithmetic.
    oracle_spent: f64,
    /// Oracle: fits predicted to be admitted.
    expected_admitted: usize,
    receipt_sum: f64,
    last_receipt_spent: f64,
    answers_requested: usize,
    answers_ok: usize,
    queries_answered: usize,
    sq_err_sum: f64,
    expected_var_sum: f64,
    expected_var_count: usize,
}

/// Generates, replays, and scores a scenario end to end.
pub fn run(scenario: &Scenario) -> Result<SimReport, BenchError> {
    let trace = generate(scenario)?;
    score(scenario, &trace)
}

/// Replays an already generated trace against a fresh [`Service`] and
/// scores it. Exposed separately so tests can reuse one trace across
/// replays (determinism) or perturb it (violation detection).
pub fn score(scenario: &Scenario, trace: &Trace) -> Result<SimReport, BenchError> {
    let service = Service::new();
    for tenant in &trace.tenants {
        service.add_tenant(tenant.config.clone())?;
    }

    // Serial replay: deterministic outcomes, per-request latencies.
    let started = Instant::now();
    let replayed = service.replay(&trace.requests);
    let wall_ns = started.elapsed().as_nanos() as u64;
    score_outcomes(scenario, trace, &replayed, &service, wall_ns)
}

/// The outcome of a kill/recover run ([`run_with_recovery`]): the
/// stitched-and-scored report plus what recovery found on disk.
#[derive(Clone, Debug)]
pub struct RecoveryRun {
    /// The scored report over prefix + suffix outcomes. Its
    /// [`SimReport::deterministic_json`] must be byte-identical to an
    /// uninterrupted [`run`] of the same scenario when the fsync policy
    /// is [`FsyncPolicy::PerCharge`].
    pub report: SimReport,
    /// What [`Ledger::durable`] reported when the second life opened the
    /// state directory.
    pub recovery: RecoveryReport,
    /// The request index the first life was cut at.
    pub kill_at: usize,
}

/// Replays a scenario with a mid-trace crash: requests `[0, kill_at)`
/// run against a durable service whose state lives under `state_dir`,
/// the service is then dropped *without any graceful shutdown* (the
/// in-process equivalent of SIGKILL — nothing is flushed beyond what
/// the fsync policy already guaranteed), a second service recovers from
/// the state directory, re-onboards every tenant (attaching the
/// recovered accounts), re-materializes the estimates whose fits were
/// admitted before the cut ([`Service::restore_estimate`] — charged
/// releases are never re-charged), and replays the suffix. The stitched
/// outcome sequence is scored exactly like an uninterrupted run.
///
/// Under [`FsyncPolicy::PerCharge`] every acknowledged charge survives
/// the kill, so the stitched report's deterministic section is
/// f64-identical to the uninterrupted replay — the crash-recovery CI
/// gate. Batched/off policies may lose staged-but-unsynced acks (by
/// documented design), in which case the scorer's reconciliation gates
/// flag the divergence rather than hiding it.
pub fn run_with_recovery(
    scenario: &Scenario,
    state_dir: &Path,
    kill_at: usize,
    fsync: FsyncPolicy,
) -> Result<RecoveryRun, BenchError> {
    let trace = generate(scenario)?;
    let kill_at = kill_at.min(trace.requests.len());
    let durability = LedgerDurability {
        fsync,
        ..LedgerDurability::default()
    };

    // First life: durable service, prefix replay, then the "crash" —
    // the service and its ledger are dropped with no flush call.
    let started = Instant::now();
    let prefix = {
        let (ledger, _) = Ledger::durable(state_dir, durability)?;
        let service = Service::with_ledger(Arc::new(ledger));
        for tenant in &trace.tenants {
            service.add_tenant(tenant.config.clone())?;
        }
        service.replay(&trace.requests[..kill_at])
    };

    // Second life: recover, re-attach every tenant, restore the
    // estimates the prefix admitted, replay the rest.
    let (ledger, recovery) = Ledger::durable(state_dir, durability)?;
    let service = Service::with_ledger(Arc::new(ledger));
    for tenant in &trace.tenants {
        service.add_tenant(tenant.config.clone())?;
    }
    // Last admitted fit per (tenant, handle) wins — exactly the estimate
    // the first life would still be holding at the cut.
    let mut admitted: HashMap<(String, String), &Request> = HashMap::new();
    for (request, outcome) in trace.requests[..kill_at].iter().zip(&prefix) {
        if let Request::Fit { tenant, handle, .. } = request {
            if matches!(outcome.response, Ok(Response::Fitted { .. })) {
                admitted.insert((tenant.clone(), handle.clone()), request);
            }
        }
    }
    let mut keys: Vec<&(String, String)> = admitted.keys().collect();
    keys.sort();
    for key in keys {
        let Request::Fit {
            tenant,
            spec,
            task,
            seed,
            handle,
        } = admitted[key]
        else {
            unreachable!("only fits are recorded");
        };
        service.restore_estimate(tenant, *spec, *task, *seed, handle)?;
    }
    let suffix = service.replay(&trace.requests[kill_at..]);
    let wall_ns = started.elapsed().as_nanos() as u64;

    let mut outcomes = prefix;
    outcomes.extend(suffix);
    let report = score_outcomes(scenario, &trace, &outcomes, &service, wall_ns)?;
    Ok(RecoveryRun {
        report,
        recovery,
        kill_at,
    })
}

/// Scores an already-replayed outcome sequence against the trace's
/// oracles, reconciling ledger state through `service` — the shared
/// back half of [`score`] and [`run_with_recovery`].
pub fn score_outcomes(
    scenario: &Scenario,
    trace: &Trace,
    replayed: &[Replayed],
    service: &Service,
    wall_ns: u64,
) -> Result<SimReport, BenchError> {
    let by_id: HashMap<&str, &TraceTenant> = trace
        .tenants
        .iter()
        .map(|t| (t.config.id.as_str(), t))
        .collect();
    let mut tallies: HashMap<&str, TenantTally> = trace
        .tenants
        .iter()
        .map(|t| (t.config.id.as_str(), TenantTally::default()))
        .collect();

    // One pass over (request, outcome) pairs: advance the oracle, compare
    // the actual outcome against its prediction, accumulate utility.
    let mut violations: Vec<String> = Vec::new();
    for (index, (request, outcome)) in trace.requests.iter().zip(replayed).enumerate() {
        match request {
            Request::Fit { tenant, .. } => {
                let info = by_id[tenant.as_str()];
                let tally = tallies.get_mut(tenant.as_str()).expect("known tenant");
                tally.fits_requested += 1;
                // Oracle admission: the ledger's own check-and-debit
                // arithmetic, replayed analytically in the same order.
                let budget = info.config.budget.value();
                let charge = info.charge_per_fit();
                let oracle_admits = tally.oracle_spent + charge <= budget + overdraw_slack(budget);
                if oracle_admits {
                    tally.oracle_spent += charge;
                    tally.expected_admitted += 1;
                }
                match &outcome.response {
                    Ok(Response::Fitted { charged, spent, .. }) => {
                        tally.fits_admitted += 1;
                        tally.receipt_sum += charged;
                        tally.last_receipt_spent = *spent;
                        if !oracle_admits {
                            violations.push(format!(
                                "request {index}: {tenant} fit admitted but the oracle \
                                 predicted rejection (budget {budget}, charge {charged})"
                            ));
                        }
                    }
                    Err(e) if e.is_budget_exhausted() => {
                        tally.fits_rejected += 1;
                        if oracle_admits {
                            violations.push(format!(
                                "request {index}: {tenant} fit rejected but the oracle \
                                 predicted admission (budget {budget}, charge {charge})"
                            ));
                        }
                    }
                    Ok(other) => violations.push(format!(
                        "request {index}: {tenant} fit produced a non-fit response {other:?}"
                    )),
                    Err(e) => violations.push(format!(
                        "request {index}: {tenant} fit failed with an unexpected error: {e}"
                    )),
                }
            }
            Request::Answer {
                tenant, queries, ..
            } => {
                let info = by_id[tenant.as_str()];
                let tally = tallies.get_mut(tenant.as_str()).expect("known tenant");
                tally.answers_requested += 1;
                // An estimate exists iff some earlier fit was admitted
                // (every sim fit stores under the same handle).
                let has_estimate = tally.fits_admitted > 0;
                match &outcome.response {
                    Ok(Response::Answers { values }) => {
                        tally.answers_ok += 1;
                        if !has_estimate {
                            violations.push(format!(
                                "request {index}: {tenant} answered before any fit was admitted"
                            ));
                        }
                        if values.len() != queries.len() {
                            violations.push(format!(
                                "request {index}: {tenant} returned {} answers for {} queries",
                                values.len(),
                                queries.len()
                            ));
                            continue;
                        }
                        let domain = info.config.graph.domain();
                        for (q, &value) in queries.iter().zip(values) {
                            if !value.is_finite() {
                                violations.push(format!(
                                    "request {index}: {tenant} produced a non-finite answer"
                                ));
                                continue;
                            }
                            let truth = q
                                .to_linear_query(domain)?
                                .answer(info.config.data.counts())?;
                            tally.sq_err_sum += (value - truth) * (value - truth);
                            tally.queries_answered += 1;
                            if let Some(spec) = &info.spec {
                                if let Some(var) =
                                    closed_form_query_var(spec, info.config.eps.value(), domain, q)
                                {
                                    tally.expected_var_sum += var;
                                    tally.expected_var_count += 1;
                                }
                            }
                        }
                    }
                    Err(e) => {
                        if has_estimate {
                            violations.push(format!(
                                "request {index}: {tenant} answer failed with {e} despite \
                                 an admitted fit"
                            ));
                        } else if !matches!(e, EngineError::UnknownEstimate { .. }) {
                            // With no admitted fit the *only* acceptable
                            // failure is the typed unknown-estimate
                            // rejection — anything else is a regression
                            // hiding behind the expected failure slot.
                            violations.push(format!(
                                "request {index}: {tenant} answer failed with {e}, but the \
                                 oracle predicts the typed unknown-estimate error"
                            ));
                        }
                    }
                    Ok(other) => violations.push(format!(
                        "request {index}: {tenant} answer produced {other:?}"
                    )),
                }
            }
            other => {
                violations.push(format!(
                    "request {index}: unsupported request kind in a simulated trace: {other:?}"
                ));
            }
        }
    }

    // Per-tenant reconciliation and utility gates.
    let mut scores = Vec::with_capacity(trace.tenants.len());
    for tenant in &trace.tenants {
        let id = tenant.config.id.as_str();
        let tally = &tallies[id];
        let spent = service.ledger().spent(id)?;
        let remaining = service.ledger().remaining(id)?;

        // Ledger exactness: the ledger's spend and our receipt fold are
        // the same f64 additions in the same order — equality is exact.
        if spent != tally.receipt_sum {
            violations.push(format!(
                "{id}: ledger spend {spent} does not reconcile to the receipt sum {} \
                 (diff {:e})",
                tally.receipt_sum,
                spent - tally.receipt_sum
            ));
        }
        if tally.fits_admitted > 0 && tally.last_receipt_spent != spent {
            violations.push(format!(
                "{id}: final receipt reports cumulative spend {} but the ledger says {spent}",
                tally.last_receipt_spent
            ));
        }
        if tally.fits_admitted != tally.expected_admitted {
            violations.push(format!(
                "{id}: {} fits admitted, oracle expected exactly {}",
                tally.fits_admitted, tally.expected_admitted
            ));
        }
        if tally.fits_admitted + tally.fits_rejected != tally.fits_requested {
            violations.push(format!(
                "{id}: {} + {} fit outcomes for {} fit requests",
                tally.fits_admitted, tally.fits_rejected, tally.fits_requested
            ));
        }

        let measured_mse =
            (tally.queries_answered > 0).then(|| tally.sq_err_sum / tally.queries_answered as f64);
        // The closed form is only a valid expectation for the mean when
        // it covered every answered query.
        let expected_mse = (tally.expected_var_count > 0
            && tally.expected_var_count == tally.queries_answered)
            .then(|| tally.expected_var_sum / tally.expected_var_count as f64);
        if let (Some(measured), Some(expected)) = (measured_mse, expected_mse) {
            if tally.queries_answered >= UTILITY_MIN_SAMPLES
                && expected > 0.0
                && (measured > expected * UTILITY_FACTOR || measured < expected / UTILITY_FACTOR)
            {
                violations.push(format!(
                    "{id}: measured MSE {measured:.4} outside {UTILITY_FACTOR}x of the \
                     closed-form expectation {expected:.4} ({} query samples)",
                    tally.queries_answered
                ));
            }
        }

        scores.push(TenantScore {
            id: id.to_string(),
            policy: tenant.family.label(),
            budget: tenant.config.budget.value(),
            eps: tenant.config.eps.value(),
            fits_requested: tally.fits_requested,
            fits_admitted: tally.fits_admitted,
            fits_rejected: tally.fits_rejected,
            expected_admitted: tally.expected_admitted,
            spent,
            receipt_sum: tally.receipt_sum,
            remaining,
            answers_requested: tally.answers_requested,
            answers_ok: tally.answers_ok,
            queries_answered: tally.queries_answered,
            measured_mse,
            expected_mse,
        });
    }

    let mut latencies: Vec<u64> = replayed.iter().map(|r| r.latency_ns).collect();
    let timing = SimTiming::from_latencies(wall_ns, &mut latencies);

    Ok(SimReport {
        schema: "blowfish-simulate/v1".to_string(),
        scenario: scenario.name.clone(),
        seed: trace.seed,
        requests: trace.requests.len(),
        tenants: scores,
        violations,
        timing,
    })
}

/// Nearest-rank percentile of a sorted latency vector.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::scenario::Scenario;

    #[test]
    fn quick_scenarios_pass_all_gates() {
        for scenario in Scenario::quick_catalog() {
            let report = run(&scenario).unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert!(
                report.passed(),
                "{}: violations {:#?}",
                scenario.name,
                report.violations
            );
            assert_eq!(report.requests, scenario.requests);
            assert_eq!(report.tenants.len(), scenario.tenants);
        }
    }

    #[test]
    fn exhaustion_scenario_rejects_at_exactly_the_floor() {
        let scenario = Scenario::find("exhaustion-tight").unwrap();
        let report = run(&scenario).unwrap();
        assert!(report.passed(), "{:#?}", report.violations);
        let mut saw_rejection = false;
        for t in &report.tenants {
            // Uniform ε = 0.5 fits: admission must cut at ⌊budget/ε⌋.
            let floor = (t.budget / t.eps).floor() as usize;
            assert_eq!(
                t.fits_admitted,
                floor.min(t.fits_requested),
                "{}: admitted {} of {} against floor {floor}",
                t.id,
                t.fits_admitted,
                t.fits_requested
            );
            saw_rejection |= t.fits_rejected > 0;
            // Spend is exactly admitted × ε here (0.5 is a power of two,
            // so the fold is exact).
            assert_eq!(t.spent, t.fits_admitted as f64 * t.eps);
        }
        assert!(saw_rejection, "the tight scenario must exercise rejections");
    }

    #[test]
    fn closed_form_utility_tracks_theory_closely() {
        let scenario = Scenario::find("smoke-mixed").unwrap();
        let report = run(&scenario).unwrap();
        for t in &report.tenants {
            let (Some(measured), Some(expected)) = (t.measured_mse, t.expected_mse) else {
                panic!("{}: closed-form scenario must score utility", t.id);
            };
            let ratio = measured / expected;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: measured/expected = {ratio:.3} (measured {measured:.3}, \
                 expected {expected:.3})",
                t.id
            );
        }
    }

    #[test]
    fn deterministic_json_is_reproducible_and_timing_is_separate() {
        let scenario = Scenario::find("smoke-mixed").unwrap();
        let a = run(&scenario).unwrap();
        let b = run(&scenario).unwrap();
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        // Full JSON parses and carries the timing section.
        let full = JsonValue::parse(&a.to_json()).unwrap();
        assert!(full.get("timing").is_some());
        let det = JsonValue::parse(&a.deterministic_json()).unwrap();
        assert!(det.get("timing").is_none());
        assert_eq!(
            det.get("scenario").and_then(JsonValue::as_str),
            Some("smoke-mixed")
        );
    }

    #[test]
    fn oracle_mismatches_are_detected() {
        // Doctor one tenant's *scoring metadata* (the spec the oracle
        // derives per-fit charges from) while the replayed requests keep
        // the real mechanism: the oracle now expects ε/2 charges and a
        // 2x-deeper admission floor, so the scorer must flag the
        // admitted-count mismatch instead of silently absorbing it.
        let scenario = Scenario::find("exhaustion-tight").unwrap();
        let baseline = run(&scenario).unwrap();
        assert!(baseline.passed());
        let mut doctored = generate(&scenario).unwrap();
        doctored.tenants[0].spec = Some(MechanismSpec::Laplace);
        let report = score(&scenario, &doctored).unwrap();
        assert!(
            !report.passed(),
            "an oracle/replay disagreement must surface as a violation"
        );
        assert!(
            report.violations.iter().any(|v| v.contains("tenant-00")),
            "{:#?}",
            report.violations
        );
    }

    #[test]
    fn sparse_large_domain_scenario_plans_through_the_sparse_path() {
        // Replay the large-k scenario against a hand-built service so the
        // plan-cache counters are observable: at k = 16384 every
        // MatrixHist fit must route through the sparse CSR + CG path
        // (one build, shared by both tenants) and never materialize a
        // dense A⁺.
        let scenario = Scenario::find("sparse-large-domain").unwrap();
        let trace = generate(&scenario).unwrap();
        let service = Service::new();
        for tenant in &trace.tenants {
            service.add_tenant(tenant.config.clone()).unwrap();
        }
        let replayed = service.replay(&trace.requests);
        assert!(replayed.iter().all(|r| r.response.is_ok()));
        assert_eq!(service.cache().stats().sparse_matrix_builds(), 1);
        assert_eq!(service.cache().stats().pseudoinverse_builds(), 0);
        // And the scorer holds it to the same gates as every scenario.
        let report = score(&scenario, &trace).unwrap();
        assert!(report.passed(), "{:#?}", report.violations);
    }

    #[test]
    fn killed_and_recovered_replay_is_f64_identical() {
        let scenario = Scenario::find("exhaustion-tight").unwrap();
        let uninterrupted = run(&scenario).unwrap();
        assert!(uninterrupted.passed(), "{:#?}", uninterrupted.violations);
        // Cut at several points, including mid-exhaustion and the edges.
        for kill_at in [0, 1, scenario.requests / 3, scenario.requests - 1] {
            let dir = std::env::temp_dir().join(format!(
                "blowfish-sim-recover-{}-{kill_at}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let recovered =
                run_with_recovery(&scenario, &dir, kill_at, FsyncPolicy::PerCharge).unwrap();
            assert_eq!(recovered.kill_at, kill_at);
            assert!(
                recovered.report.passed(),
                "kill at {kill_at}: {:#?}",
                recovered.report.violations
            );
            assert_eq!(
                recovered.report.deterministic_json(),
                uninterrupted.deterministic_json(),
                "kill at {kill_at}: recovered replay diverged from the uninterrupted run"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[5], 0.99), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 100);
    }
}
