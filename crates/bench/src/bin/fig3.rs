//! Regenerates **Figure 3** — the table of data-independent error bounds —
//! empirically: measures the per-query error of each Blowfish strategy and
//! its ε-DP counterpart on uniform data across domain sizes, and checks the
//! predicted growth orders:
//!
//! | workload | policy | Blowfish bound | ε-DP (Privelet) bound |
//! |---|---|---|---|
//! | R_k   | G¹_k  | Θ(1/ε²)               | O(log³k/ε²)  |
//! | R_k   | G^θ_k | O(log³θ/ε²)           | O(log³k/ε²)  |
//! | R_k²  | G¹_k² | O(2·log³k/ε²)         | O(log⁶k/ε²)  |
//! | R_k²  | G^θ_k²| O(8·log³k·log³θ/ε²)   | O(log⁶k/ε²)  |
//!
//! Flags: `--trials N`, `--queries N`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_bench::{measure_bench, parse_args, sci, BenchError};
use blowfish_core::{DataVector, Domain, Epsilon};
use blowfish_strategies::{
    answer_ranges_1d, answer_ranges_2d, dp_privelet_1d, dp_privelet_nd, grid_blowfish_histogram,
    line_blowfish_histogram, true_ranges_1d, true_ranges_2d, ThetaEstimator, ThetaGridStrategy,
    ThetaLineStrategy, TreeEstimator,
};

fn main() {
    if let Err(e) = run_all() {
        eprintln!("fig3: {e}");
        std::process::exit(1);
    }
}

fn run_all() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let overrides = parse_args(&args);
    let trials = overrides.trials.unwrap_or(5);
    let queries = overrides.queries.unwrap_or(2_000);
    let eps = Epsilon::new(overrides.epsilon.unwrap_or(1.0))?;

    println!("# Figure 3 — data-independent error per query (measured, uniform data)");
    println!(
        "(ε={}, {trials} trials, {queries} random queries)\n",
        eps.value()
    );

    // --- 1-D rows.
    println!("## R_k (1-D ranges)\n");
    println!("| k | Blowfish G¹ (Θ(1/ε²)) | Blowfish G⁴ (O(log³θ)) | Blowfish G¹⁶ | ε-DP Privelet (O(log³k)) |");
    println!("|---|---|---|---|---|");
    for k in [256usize, 1024, 4096] {
        let x = DataVector::new(Domain::one_dim(k), vec![2.0; k])?;
        let d = Domain::one_dim(k);
        let mut qrng = StdRng::seed_from_u64(11);
        let specs = blowfish_core::random_range_specs(&d, queries, &mut qrng);
        let truth = true_ranges_1d(&x, &specs)?;

        let g1 = run(trials, &truth, |rng| {
            let h = line_blowfish_histogram(&x, eps, TreeEstimator::Laplace, rng)?;
            Ok(answer_ranges_1d(&h, &specs)?)
        })?;
        let s4 = ThetaLineStrategy::new(k, 4)?;
        let g4 = run(trials, &truth, |rng| {
            let h = s4.histogram(&x, eps, ThetaEstimator::GroupPrivelet, rng)?;
            Ok(answer_ranges_1d(&h, &specs)?)
        })?;
        let s16 = ThetaLineStrategy::new(k, 16)?;
        let g16 = run(trials, &truth, |rng| {
            let h = s16.histogram(&x, eps, ThetaEstimator::GroupPrivelet, rng)?;
            Ok(answer_ranges_1d(&h, &specs)?)
        })?;
        let dp = run(trials, &truth, |rng| {
            let h = dp_privelet_1d(&x, eps, rng)?;
            Ok(answer_ranges_1d(&h, &specs)?)
        })?;
        println!(
            "| {k} | {} | {} | {} | {} |",
            sci(g1),
            sci(g4),
            sci(g16),
            sci(dp)
        );
    }

    // --- 2-D rows.
    println!("\n## R_k² (2-D ranges)\n");
    println!("| k (grid k×k) | Blowfish G¹ (O(2log³k)) | Blowfish G⁴ | ε-DP Privelet (O(log⁶k)) |");
    println!("|---|---|---|---|");
    for k in [32usize, 64] {
        let x = DataVector::new(Domain::square(k), vec![2.0; k * k])?;
        let d = Domain::square(k);
        let mut qrng = StdRng::seed_from_u64(13);
        let specs = blowfish_core::random_range_specs(&d, queries, &mut qrng);
        let truth = true_ranges_2d(&x, &specs)?;

        let g1 = run(trials, &truth, |rng| {
            let h = grid_blowfish_histogram(&x, eps, rng)?;
            Ok(answer_ranges_2d(&h, k, k, &specs)?)
        })?;
        let s4 = ThetaGridStrategy::new(k, 4)?;
        let g4 = run(trials, &truth, |rng| {
            let h = s4.histogram(&x, eps, rng)?;
            Ok(answer_ranges_2d(&h, k, k, &specs)?)
        })?;
        let dp = run(trials, &truth, |rng| {
            let h = dp_privelet_nd(&x, eps, rng)?;
            Ok(answer_ranges_2d(&h, k, k, &specs)?)
        })?;
        println!("| {k} | {} | {} | {} |", sci(g1), sci(g4), sci(dp));
    }

    println!("\nShape checks (Figure 3):");
    println!(" - G¹ column flat in k (Θ(1/ε²)); Privelet column grows ~log³k.");
    println!(" - G^θ columns flat in k, growing with θ (log³θ).");
    println!(" - 2-D: Blowfish grows ~log³k vs Privelet's ~log⁶k.");
    Ok(())
}

fn run(
    trials: usize,
    truth: &[f64],
    mut f: impl FnMut(&mut StdRng) -> Result<Vec<f64>, BenchError>,
) -> Result<f64, BenchError> {
    let mut rng = StdRng::seed_from_u64(0xF163);
    Ok(measure_bench(truth, trials, |_| f(&mut rng))?.mean_mse)
}
