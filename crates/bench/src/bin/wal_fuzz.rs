//! `wal_fuzz` — WAL fault-injection harness for the durable ledger.
//!
//! Builds a real ledger state directory (opens + charges with
//! non-representable ε sums, so bit-exactness is actually exercised),
//! then injects each storage fault the recovery path must survive and
//! asserts the *typed* contract:
//!
//! * `torn-record` — the final WAL record is cut mid-frame (a crash
//!   during `write`): recovery must succeed, warn about the torn tail,
//!   and restore exactly the fold of the surviving record prefix;
//! * `flipped-checksum` — a payload byte of a WAL record is flipped
//!   (bit rot): recovery must succeed, warn, and truncate to the valid
//!   prefix before the damaged record — never replay a record whose
//!   checksum fails;
//! * `truncated-snapshot` — `snapshot.bin` loses its tail (storage lost
//!   the rename): recovery must fail with the typed
//!   `CoreError::CorruptState` — a damaged snapshot has no safe durable
//!   prefix, and silently resetting budgets would be a privacy bug;
//! * `bad-header` — the WAL magic is damaged: typed `CorruptState`.
//!
//! Every case additionally asserts the two universal invariants: no
//! panic, and **no silent budget reset** (a recovery that "succeeds"
//! with less spend than the durable prefix recorded is a failure even
//! if nothing crashed). Run all cases (CI) or one:
//!
//! ```text
//! wal_fuzz [--case torn-record|flipped-checksum|truncated-snapshot|bad-header|all]
//!          [--dir DIR]
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use blowfish_core::accounting::wal::wal_frame_bounds;
use blowfish_core::accounting::{SNAPSHOT_FILE, WAL_FILE};
use blowfish_core::{CoreError, Epsilon, FsyncPolicy, Ledger, LedgerDurability};

const CASES: &[&str] = &[
    "torn-record",
    "flipped-checksum",
    "truncated-snapshot",
    "bad-header",
];

/// The charge script: (tenant, amount), in issue order. Amounts are
/// deliberately non-representable (0.1, 0.3) so a recovery that
/// re-derives spend any way other than replaying the identical f64
/// fold shows up as a bit mismatch.
const SCRIPT: &[(&str, f64)] = &[
    ("acme", 0.1),
    ("zeta", 0.3),
    ("acme", 0.1),
    ("acme", 0.3),
    ("zeta", 0.1),
    ("acme", 0.1),
];

const TENANTS: &[&str] = &["acme", "zeta"];
const BUDGET: f64 = 10.0;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut case = "all".to_string();
    let mut dir = std::env::temp_dir().join(format!("blowfish-wal-fuzz-{}", std::process::id()));
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--case" => match args.get(i + 1) {
                Some(c) => {
                    case = c.clone();
                    i += 1;
                }
                None => return usage("--case needs a name"),
            },
            "--dir" => match args.get(i + 1) {
                Some(d) => {
                    dir = PathBuf::from(d);
                    i += 1;
                }
                None => return usage("--dir needs a directory"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    let selected: Vec<&str> = if case == "all" {
        CASES.to_vec()
    } else if CASES.contains(&case.as_str()) {
        vec![case.as_str()]
    } else {
        return usage(&format!("unknown case {case}"));
    };

    let mut failed = false;
    for name in selected {
        let state = dir.join(name);
        let _ = fs::remove_dir_all(&state);
        let outcome = run_case(name, &state);
        match outcome {
            Ok(detail) => {
                println!("PASS {name}: {detail}");
                let _ = fs::remove_dir_all(&state);
            }
            Err(problem) => {
                failed = true;
                println!("FAIL {name}: {problem}");
                println!("     state left at {} for inspection", state.display());
            }
        }
    }
    if failed {
        1
    } else {
        println!("all WAL fault-injection cases recovered with the typed contract");
        0
    }
}

fn usage(problem: &str) -> i32 {
    eprintln!(
        "{problem}\nusage: wal_fuzz [--case {}|all] [--dir DIR]",
        CASES.join("|")
    );
    2
}

/// Builds the scripted state under `dir` with per-charge fsync (every
/// record durable) and no automatic snapshots, then drops the ledger
/// without flushing — the state a kill would leave.
fn build_state(dir: &Path) -> Result<(), CoreError> {
    let config = LedgerDurability {
        fsync: FsyncPolicy::PerCharge,
        snapshot_every: 0,
        ..LedgerDurability::default()
    };
    let (ledger, _) = Ledger::durable(dir, config)?;
    for tenant in TENANTS {
        ledger.open(tenant, Epsilon::new(BUDGET)?)?;
    }
    for (tenant, amount) in SCRIPT {
        ledger.charge(tenant, "fuzz", Epsilon::new(*amount)?)?;
    }
    Ok(())
}

/// Spend each tenant must show when exactly the first `records` WAL
/// records (tenant opens included) survive: the bit-exact fold of the
/// script prefix.
fn expected_after(records: usize) -> Vec<(&'static str, f64)> {
    let charges = records.saturating_sub(TENANTS.len());
    TENANTS
        .iter()
        .map(|tenant| {
            let spent = SCRIPT[..charges.min(SCRIPT.len())]
                .iter()
                .filter(|(t, _)| t == tenant)
                .fold(0.0_f64, |acc, (_, amount)| acc + amount);
            (*tenant, spent)
        })
        .collect()
}

/// Recovery must succeed, warn (the fault is visible, never silent),
/// and restore the bit-exact fold of the surviving prefix.
fn assert_prefix_recovery(
    dir: &Path,
    surviving_records: usize,
    why: &str,
) -> Result<String, String> {
    let (ledger, report) = Ledger::recover(dir)
        .map_err(|e| format!("{why}: recovery must succeed on a damaged tail, got: {e}"))?;
    if report.warnings.is_empty() {
        return Err(format!("{why}: recovery must warn, not silently pass"));
    }
    if report.wal_records_replayed != surviving_records {
        return Err(format!(
            "{why}: {} records replayed, expected the {surviving_records}-record prefix",
            report.wal_records_replayed
        ));
    }
    for (tenant, expected) in expected_after(surviving_records) {
        let spent = ledger
            .spent(tenant)
            .map_err(|e| format!("{why}: recovered ledger lost tenant {tenant}: {e}"))?;
        if spent.to_bits() != expected.to_bits() {
            return Err(format!(
                "{why}: {tenant} recovered spend {spent} != durable prefix fold {expected} \
                 (silent budget reset or corrupt replay)"
            ));
        }
    }
    Ok(format!(
        "recovered {surviving_records}-record prefix bit-exactly, warned: {:?}",
        report.warnings.first().unwrap()
    ))
}

fn run_case(name: &str, dir: &Path) -> Result<String, String> {
    build_state(dir).map_err(|e| format!("building the scripted state failed: {e}"))?;
    let wal = dir.join(WAL_FILE);
    let bounds = wal_frame_bounds(&wal).map_err(|e| format!("scanning WAL frames failed: {e}"))?;
    let total = TENANTS.len() + SCRIPT.len();
    if bounds.len() != total {
        return Err(format!(
            "scripted WAL has {} frames, expected {total}",
            bounds.len()
        ));
    }
    match name {
        "torn-record" => {
            // Cut 3 bytes into the last frame: a mid-write crash.
            let (start, end) = bounds[total - 1];
            let cut = start + ((end - start) / 2).max(3);
            let file = fs::OpenOptions::new()
                .write(true)
                .open(&wal)
                .map_err(|e| e.to_string())?;
            file.set_len(cut).map_err(|e| e.to_string())?;
            drop(file);
            assert_prefix_recovery(dir, total - 1, "torn final record")
        }
        "flipped-checksum" => {
            // Flip one payload byte of the second-to-last record: its
            // CRC no longer matches, so it and everything after must be
            // dropped as the non-durable tail.
            let (start, end) = bounds[total - 2];
            let mut bytes = fs::read(&wal).map_err(|e| e.to_string())?;
            let target = (start + (end - start) / 2) as usize;
            bytes[target] ^= 0x20;
            fs::write(&wal, &bytes).map_err(|e| e.to_string())?;
            assert_prefix_recovery(dir, total - 2, "flipped checksum byte")
        }
        "truncated-snapshot" => {
            // Snapshot, then damage the snapshot file: recovery must be
            // the typed hard error, never an Ok with reset budgets.
            {
                let (ledger, _) = Ledger::recover(dir).map_err(|e| e.to_string())?;
                ledger.snapshot_now().map_err(|e| e.to_string())?;
            }
            let snap = dir.join(SNAPSHOT_FILE);
            let len = fs::metadata(&snap).map_err(|e| e.to_string())?.len();
            let file = fs::OpenOptions::new()
                .write(true)
                .open(&snap)
                .map_err(|e| e.to_string())?;
            file.set_len(len - 7).map_err(|e| e.to_string())?;
            drop(file);
            expect_corrupt_state(dir, "truncated snapshot")
        }
        "bad-header" => {
            let mut bytes = fs::read(&wal).map_err(|e| e.to_string())?;
            bytes[2] ^= 0xFF;
            fs::write(&wal, &bytes).map_err(|e| e.to_string())?;
            expect_corrupt_state(dir, "damaged WAL header")
        }
        other => Err(format!("unknown case {other}")),
    }
}

/// Recovery must refuse with the typed corruption error — and must not
/// come back `Ok` with budgets quietly reset to zero.
fn expect_corrupt_state(dir: &Path, why: &str) -> Result<String, String> {
    match Ledger::recover(dir) {
        Err(CoreError::CorruptState { what, detail }) => {
            Ok(format!("typed refusal: corrupt {what} ({detail})"))
        }
        Err(other) => Err(format!(
            "{why}: expected the typed CorruptState error, got: {other}"
        )),
        Ok((ledger, _)) => {
            let spends: Vec<f64> = TENANTS
                .iter()
                .map(|t| ledger.spent(t).unwrap_or(0.0))
                .collect();
            Err(format!(
                "{why}: recovery succeeded over corrupt state (spends {spends:?}) — \
                 a silent budget reset"
            ))
        }
    }
}
