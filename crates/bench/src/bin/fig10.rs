//! Regenerates **Figure 10** (Appendix A) — Blowfish SVD lower bounds at
//! ε = 1, δ = 0.001:
//!
//! * panel (a): MINERROR vs domain size for `R_k` under unbounded DP and
//!   `G^θ_k`, θ ∈ {1, 2, 4, 8, 16};
//! * panel (b): MINERROR vs domain size for `R_{k²}` under unbounded DP,
//!   `G^θ_{k²}` (θ ∈ {1, 2, 3}) and bounded DP.
//!
//! Flags: `--panel {1d|2d|all}`.

use blowfish_bench::{parse_args, sci, BenchError};
use blowfish_core::{range_gram, range_gram_1d, Delta, Domain, Epsilon, PolicyGraph};
use blowfish_strategies::{svd_lower_bound, svd_lower_bound_unbounded_dp};

fn main() {
    if let Err(e) = run() {
        eprintln!("fig10: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let overrides = parse_args(&args);
    let panel = overrides.panel.clone().unwrap_or_else(|| "all".to_string());
    let eps = Epsilon::new(1.0)?;
    let delta = Delta::new(0.001)?;

    println!("# Figure 10 — Blowfish SVD lower bounds (ε=1, δ=0.001)");

    if panel == "1d" || panel == "all" {
        println!("\n## (a) 1D ranges R_k under G^θ_k\n");
        let thetas = [1usize, 2, 4, 8, 16];
        print!("| domain size | unbounded DP |");
        for t in thetas {
            print!(" θ={t} |");
        }
        println!();
        print!("|---|---|");
        for _ in thetas {
            print!("---|");
        }
        println!();
        for k in [32usize, 64, 100, 150, 200, 250, 300] {
            let gram = range_gram_1d(k);
            let dp = svd_lower_bound_unbounded_dp(&gram, eps, delta)?;
            print!("| {k} | {} |", sci(dp));
            for t in thetas {
                let g = PolicyGraph::theta_line(k, t)?;
                let b = svd_lower_bound(&gram, &g, eps, delta)?;
                print!(" {} |", sci(b));
            }
            println!();
        }
        println!("\nShape check (paper): unbounded DP grows fastest; every θ-curve");
        println!("crosses below it at large enough k, smaller θ crossing earlier.");
    }

    if panel == "2d" || panel == "all" {
        println!("\n## (b) 2D ranges R_k² under G^θ_k²\n");
        let thetas = [1usize, 2, 3];
        print!("| domain size (k²) | unbounded DP |");
        for t in thetas {
            print!(" θ={t} |");
        }
        println!(" bounded DP |");
        print!("|---|---|");
        for _ in thetas {
            print!("---|");
        }
        println!("---|");
        for k in [3usize, 4, 5, 6, 7, 8, 9] {
            let d2 = Domain::square(k);
            let gram = range_gram(&d2)?;
            let dp = svd_lower_bound_unbounded_dp(&gram, eps, delta)?;
            print!("| {} | {} |", k * k, sci(dp));
            for t in thetas {
                let g = PolicyGraph::distance_threshold(d2.clone(), t)?;
                let b = svd_lower_bound(&gram, &g, eps, delta)?;
                print!(" {} |", sci(b));
            }
            let bounded = PolicyGraph::complete(k * k)?;
            let bb = svd_lower_bound(&gram, &bounded, eps, delta)?;
            println!(" {} |", sci(bb));
        }
        println!("\nShape check (paper): only θ=1 undercuts unbounded DP in 2-D,");
        println!("but every θ beats bounded DP (up to the ~4x sensitivity gap).");
    }
    Ok(())
}
