//! Runs every experiment harness in sequence — the one-shot regeneration
//! of the paper's full evaluation (Table 1, Figures 3, 8, 9, 10).
//!
//! Accepts the shared flags (`--trials`, `--queries`) and forwards them.
//! With the paper defaults this takes several minutes; for a quick smoke
//! run use `--trials 2 --queries 500`.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = ["table1", "fig3", "fig8", "fig9", "fig10"];
    for bin in bins {
        println!("\n================================================================");
        println!("== running {bin}");
        println!("================================================================");
        let status = Command::new(
            std::env::current_exe()
                .expect("self path")
                .parent()
                .expect("bin dir")
                .join(bin),
        )
        .args(&args)
        .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                eprintln!(
                    "(run the binaries individually via cargo run -p blowfish-bench --bin {bin})"
                );
                std::process::exit(1);
            }
        }
    }
}
