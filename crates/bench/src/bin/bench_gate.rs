//! `bench_gate` — the CI perf-regression gate.
//!
//! Diffs freshly measured bench snapshots (written by the criterion
//! shim's `write_snapshot` under `BLOWFISH_BENCH_SNAPSHOT_DIR`) against
//! the committed `BENCH_*.json` baselines: any metric whose fresh mean
//! exceeds `factor ×` its committed baseline fails the gate. Speedups
//! never fail; baseline metrics the fresh run did not re-measure are
//! reported but non-fatal (CI only re-runs a subset of benches).
//!
//! ```text
//! bench_gate --baseline FILE[:SECTION] ... --fresh FILE ...
//!            [--factor 3.0] [--min-ns 1000]
//! ```
//!
//! `FILE:SECTION` scopes metric extraction to one named sub-object —
//! e.g. `BENCH_plan.json:this_pr_ns` compares against that file's
//! current-commitment section rather than its historical baseline
//! section. The default `--factor 3` is deliberately generous: CI runs
//! benches in quick mode on shared runners, so only an
//! order-of-magnitude-ish regression should fail the build, not runner
//! noise. `--min-ns` (default 1000) skips baselines too fast to carry a
//! meaningful quick-mode ratio.

use std::collections::BTreeMap;

use blowfish_bench::report::snapshot::{compare_metrics, extract_metrics, JsonValue};

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baselines: Vec<(String, Option<String>)> = Vec::new();
    let mut fresh_files: Vec<String> = Vec::new();
    let mut factor = 3.0_f64;
    let mut min_ns = 1000.0_f64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => match args.get(i + 1) {
                Some(spec) => {
                    let (file, section) = match spec.split_once(':') {
                        Some((f, s)) => (f.to_string(), Some(s.to_string())),
                        None => (spec.clone(), None),
                    };
                    baselines.push((file, section));
                    i += 1;
                }
                None => return usage("--baseline needs a file"),
            },
            "--fresh" => match args.get(i + 1) {
                Some(file) => {
                    fresh_files.push(file.clone());
                    i += 1;
                }
                None => return usage("--fresh needs a file"),
            },
            "--factor" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(v) if v > 1.0 => {
                    factor = v;
                    i += 1;
                }
                _ => return usage("--factor needs a number > 1"),
            },
            "--min-ns" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(v) if v >= 0.0 => {
                    min_ns = v;
                    i += 1;
                }
                _ => return usage("--min-ns needs a non-negative number"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if baselines.is_empty() || fresh_files.is_empty() {
        return usage("need at least one --baseline and one --fresh file");
    }

    // Union of all fresh snapshots (bench ids are globally unique).
    let mut fresh: BTreeMap<String, f64> = BTreeMap::new();
    for file in &fresh_files {
        match load_metrics(file, None) {
            Ok(metrics) => {
                println!("fresh    {file}: {} metrics", metrics.len());
                fresh.extend(metrics);
            }
            Err(e) => {
                eprintln!("cannot load fresh snapshot {file}: {e}");
                return 2;
            }
        }
    }

    let mut regressed = false;
    for (file, section) in &baselines {
        let metrics = match load_metrics(file, section.as_deref()) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot load baseline {file}: {e}");
                return 2;
            }
        };
        let label = match section {
            Some(s) => format!("{file}:{s}"),
            None => file.clone(),
        };
        let cmp = compare_metrics(&metrics, &fresh, factor, min_ns);
        println!(
            "baseline {label}: {} compared, {} not re-measured, {} below {min_ns} ns floor",
            cmp.compared,
            cmp.missing.len(),
            cmp.below_floor.len()
        );
        for r in &cmp.regressions {
            regressed = true;
            println!(
                "  REGRESSION {}: {:.0} ns -> {:.0} ns ({:.2}x > {factor}x allowed)",
                r.id, r.baseline_ns, r.fresh_ns, r.ratio
            );
        }
    }
    if regressed {
        eprintln!("\nFAIL: fresh benches regressed past {factor}x of the committed baselines");
        1
    } else {
        println!("\nno regressions past {factor}x");
        0
    }
}

fn load_metrics(file: &str, section: Option<&str>) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(file).map_err(|e| e.to_string())?;
    let doc = JsonValue::parse(&text)?;
    let metrics = extract_metrics(&doc, section);
    if metrics.is_empty() {
        return Err(match section {
            Some(s) => format!("no metrics under section {s:?}"),
            None => "no metrics found".to_string(),
        });
    }
    Ok(metrics)
}

fn usage(problem: &str) -> i32 {
    eprintln!(
        "{problem}\nusage: bench_gate --baseline FILE[:SECTION] ... --fresh FILE ... \
         [--factor 3.0] [--min-ns 1000]"
    );
    2
}
