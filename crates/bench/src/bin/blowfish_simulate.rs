//! `blowfish_simulate` — the trace-driven workload simulator.
//!
//! Generates seeded multi-tenant scenario traces, replays them through
//! the engine's `Service` layer, scores ledger exactness, admission
//! behavior, closed-form utility, and throughput, and emits
//! machine-readable `SimReport` JSON. Any gate violation makes the
//! process exit nonzero — which is how the CI `simulate-smoke` step
//! fails a build that breaks the service layer's accounting.
//!
//! ```text
//! blowfish_simulate [--quick] [--list] [--scenario NAME]
//!                   [--seed N] [--requests N] [--out DIR]
//! ```
//!
//! * `--quick` — the four canned smoke scenarios (also the default when
//!   `BLOWFISH_BENCH_QUICK` is set); without it the full catalog runs;
//! * `--scenario NAME` — one catalog scenario (repeatable);
//! * `--seed N` / `--requests N` — override those axes on the selected
//!   scenarios (reports remain deterministic per seed);
//! * `--out DIR` — write `{DIR}/{scenario}.json` full reports (timing
//!   included) plus `{DIR}/{scenario}.det.json` deterministic sections
//!   (byte-identical across runs of one seed — the diffable artifact);
//! * `--list` — print the catalog and exit.
//!
//! ## Crash-recovery mode
//!
//! ```text
//! blowfish_simulate --scenario NAME --state-dir DIR --kill-at <N|seeded>
//!                   [--fsync per-charge|batched[:n]|off]
//! ```
//!
//! Replays each selected scenario twice: once uninterrupted in memory,
//! once against a durable ledger under `--state-dir` with the replay
//! cut dead at request index N (`seeded` derives the cut point from the
//! scenario seed) and recovered into a second service that finishes the
//! trace. Under the default `per-charge` fsync the recovered run's
//! deterministic report must be **byte-identical** to the uninterrupted
//! one; any divergence (or gate violation in either run) exits nonzero.
//! This is the CI `crash-recovery` gate.

use blowfish_bench::simulate::{run, run_with_recovery, Scenario, SimReport};
use blowfish_bench::{quick_mode, sci};
use blowfish_core::FsyncPolicy;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = quick_mode();
    let mut list = false;
    let mut names: Vec<String> = Vec::new();
    let mut seed: Option<u64> = None;
    let mut requests: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut kill_at: Option<String> = None;
    let mut fsync = FsyncPolicy::PerCharge;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--state-dir" => match args.get(i + 1) {
                Some(dir) => {
                    state_dir = Some(dir.clone());
                    i += 1;
                }
                None => return usage("--state-dir needs a directory"),
            },
            "--kill-at" => match args.get(i + 1) {
                Some(v) => {
                    kill_at = Some(v.clone());
                    i += 1;
                }
                None => return usage("--kill-at needs an index or `seeded`"),
            },
            "--fsync" => match args.get(i + 1).map(|t| FsyncPolicy::parse(t)) {
                Some(Ok(policy)) => {
                    fsync = policy;
                    i += 1;
                }
                _ => return usage("--fsync needs per-charge, batched[:n], or off"),
            },
            "--scenario" => match args.get(i + 1) {
                Some(name) => {
                    names.push(name.clone());
                    i += 1;
                }
                None => return usage("--scenario needs a name"),
            },
            "--seed" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(v) => {
                    seed = Some(v);
                    i += 1;
                }
                None => return usage("--seed needs an integer"),
            },
            "--requests" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(v) => {
                    requests = Some(v);
                    i += 1;
                }
                None => return usage("--requests needs an integer"),
            },
            "--out" => match args.get(i + 1) {
                Some(dir) => {
                    out = Some(dir.clone());
                    i += 1;
                }
                None => return usage("--out needs a directory"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if list {
        println!("available scenarios:");
        for s in Scenario::catalog() {
            println!("  {:<18} {}", s.name, s.description);
        }
        return 0;
    }

    let mut scenarios: Vec<Scenario> = if names.is_empty() {
        if quick {
            Scenario::quick_catalog()
        } else {
            Scenario::catalog()
        }
    } else {
        let mut picked = Vec::new();
        for name in &names {
            match Scenario::find(name) {
                Some(s) => picked.push(s),
                None => {
                    eprintln!("unknown scenario {name} (try --list)");
                    return 2;
                }
            }
        }
        picked
    };
    for s in &mut scenarios {
        if let Some(seed) = seed {
            s.seed = seed;
        }
        if let Some(requests) = requests {
            s.requests = requests;
        }
    }

    match (&state_dir, &kill_at) {
        (Some(_), None) | (None, Some(_)) => {
            return usage("crash-recovery mode needs both --state-dir and --kill-at")
        }
        _ => {}
    }

    let mut failed = false;
    for scenario in &scenarios {
        let report = match run(scenario) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("{}: simulation error: {e}", scenario.name);
                return 2;
            }
        };
        print_summary(&report);
        if let Some(dir) = &out {
            if let Err(e) = write_reports(dir, &report) {
                eprintln!("{}: could not write reports: {e}", scenario.name);
                return 2;
            }
        }
        failed |= !report.passed();

        if let (Some(state_dir), Some(kill_token)) = (&state_dir, &kill_at) {
            match check_recovery(
                scenario,
                &report,
                state_dir,
                kill_token,
                fsync,
                out.as_deref(),
            ) {
                Ok(ok) => failed |= !ok,
                Err(e) => {
                    eprintln!("{}: crash-recovery error: {e}", scenario.name);
                    return 2;
                }
            }
        }
    }
    if failed {
        eprintln!("\nFAIL: at least one scenario violated a gate");
        1
    } else {
        println!("\nall {} scenario(s) passed every gate", scenarios.len());
        0
    }
}

fn usage(problem: &str) -> i32 {
    eprintln!(
        "{problem}\nusage: blowfish_simulate [--quick] [--list] [--scenario NAME] \
         [--seed N] [--requests N] [--out DIR]\n\
         \x20      [--state-dir DIR --kill-at <N|seeded> [--fsync per-charge|batched[:n]|off]]"
    );
    2
}

/// Runs the kill/recover replay for one scenario and holds it against
/// the uninterrupted report: both must pass every gate, and under
/// per-charge fsync the deterministic sections must be byte-identical.
/// On divergence the recovered deterministic report (and the state
/// directory) are left on disk for artifact upload.
fn check_recovery(
    scenario: &Scenario,
    uninterrupted: &SimReport,
    state_dir: &str,
    kill_token: &str,
    fsync: FsyncPolicy,
    out: Option<&str>,
) -> Result<bool, blowfish_bench::BenchError> {
    let kill_at = match kill_token {
        // Seed-derived cut point: deterministic per scenario, lands
        // strictly inside the trace so both lives do real work.
        "seeded" => (scenario.seed as usize % scenario.requests.max(2).saturating_sub(1)) + 1,
        token => match token.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--kill-at must be an index or `seeded`, got {token}");
                return Ok(false);
            }
        },
    };
    let dir = std::path::Path::new(state_dir).join(&scenario.name);
    let _ = std::fs::remove_dir_all(&dir);
    let recovered = run_with_recovery(scenario, &dir, kill_at, fsync)?;
    println!(
        "  crash-recovery: killed at request {}/{} (fsync={fsync}): {} snapshot \
         tenants, {} WAL records replayed{}",
        recovered.kill_at,
        scenario.requests,
        recovered.recovery.snapshot_tenants,
        recovered.recovery.wal_records_replayed,
        if recovered.recovery.is_clean() {
            String::new()
        } else {
            format!(" ({} warnings)", recovered.recovery.warnings.len())
        },
    );
    for warning in &recovered.recovery.warnings {
        println!("    recovery warning: {warning}");
    }
    if !recovered.report.passed() {
        for v in &recovered.report.violations {
            println!("  RECOVERY VIOLATION: {v}");
        }
        return Ok(false);
    }
    let identical = recovered.report.deterministic_json() == uninterrupted.deterministic_json();
    if fsync == FsyncPolicy::PerCharge && !identical {
        println!(
            "  RECOVERY VIOLATION: recovered deterministic report diverged from the \
             uninterrupted replay"
        );
        if let Some(out) = out {
            let path =
                std::path::Path::new(out).join(format!("{}.recovered.det.json", scenario.name));
            let _ = std::fs::create_dir_all(out);
            let _ = std::fs::write(&path, recovered.report.deterministic_json());
            println!("  recovered report written to {}", path.display());
        }
        return Ok(false);
    }
    if identical {
        println!("  crash-recovery: deterministic report is byte-identical after recovery");
        // A clean pass leaves nothing to inspect.
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(true)
}

fn print_summary(report: &SimReport) {
    let fits: usize = report.tenants.iter().map(|t| t.fits_requested).sum();
    let admitted: usize = report.tenants.iter().map(|t| t.fits_admitted).sum();
    let rejected: usize = report.tenants.iter().map(|t| t.fits_rejected).sum();
    let queries: usize = report.tenants.iter().map(|t| t.queries_answered).sum();
    println!(
        "\n=== {} (seed {}) — {}",
        report.scenario,
        report.seed,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    println!(
        "  {} requests over {} tenants: {admitted}/{fits} fits admitted \
         ({rejected} budget-rejected), {queries} queries answered",
        report.requests,
        report.tenants.len(),
    );
    println!(
        "  throughput {:.0} req/s, mean latency {:.1} µs, p99 {:.1} µs",
        report.timing.requests_per_sec,
        report.timing.mean_latency_ns / 1e3,
        report.timing.p99_latency_ns as f64 / 1e3,
    );
    for t in &report.tenants {
        let utility = match (t.measured_mse, t.expected_mse) {
            (Some(m), Some(e)) => {
                format!("mse {} vs expected {} ({:.2}x)", sci(m), sci(e), m / e)
            }
            (Some(m), None) => format!("mse {} (no closed form)", sci(m)),
            _ => "no queries answered".to_string(),
        };
        println!(
            "    {} [{:<13}] fits {:>3}/{:<3} spent {:>8.3}/{:<9.3} {utility}",
            t.id, t.policy, t.fits_admitted, t.fits_requested, t.spent, t.budget,
        );
    }
    for v in &report.violations {
        println!("  VIOLATION: {v}");
    }
}

fn write_reports(dir: &str, report: &SimReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let base = std::path::Path::new(dir);
    std::fs::write(
        base.join(format!("{}.json", report.scenario)),
        report.to_json(),
    )?;
    std::fs::write(
        base.join(format!("{}.det.json", report.scenario)),
        report.deterministic_json(),
    )?;
    println!(
        "  reports written to {}/{}.json (+ .det.json)",
        dir, report.scenario
    );
    Ok(())
}
