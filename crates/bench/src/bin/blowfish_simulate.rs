//! `blowfish_simulate` — the trace-driven workload simulator.
//!
//! Generates seeded multi-tenant scenario traces, replays them through
//! the engine's `Service` layer, scores ledger exactness, admission
//! behavior, closed-form utility, and throughput, and emits
//! machine-readable `SimReport` JSON. Any gate violation makes the
//! process exit nonzero — which is how the CI `simulate-smoke` step
//! fails a build that breaks the service layer's accounting.
//!
//! ```text
//! blowfish_simulate [--quick] [--list] [--scenario NAME]
//!                   [--seed N] [--requests N] [--out DIR]
//! ```
//!
//! * `--quick` — the four canned smoke scenarios (also the default when
//!   `BLOWFISH_BENCH_QUICK` is set); without it the full catalog runs;
//! * `--scenario NAME` — one catalog scenario (repeatable);
//! * `--seed N` / `--requests N` — override those axes on the selected
//!   scenarios (reports remain deterministic per seed);
//! * `--out DIR` — write `{DIR}/{scenario}.json` full reports (timing
//!   included) plus `{DIR}/{scenario}.det.json` deterministic sections
//!   (byte-identical across runs of one seed — the diffable artifact);
//! * `--list` — print the catalog and exit.

use blowfish_bench::simulate::{run, Scenario, SimReport};
use blowfish_bench::{quick_mode, sci};

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = quick_mode();
    let mut list = false;
    let mut names: Vec<String> = Vec::new();
    let mut seed: Option<u64> = None;
    let mut requests: Option<usize> = None;
    let mut out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--scenario" => match args.get(i + 1) {
                Some(name) => {
                    names.push(name.clone());
                    i += 1;
                }
                None => return usage("--scenario needs a name"),
            },
            "--seed" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(v) => {
                    seed = Some(v);
                    i += 1;
                }
                None => return usage("--seed needs an integer"),
            },
            "--requests" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(v) => {
                    requests = Some(v);
                    i += 1;
                }
                None => return usage("--requests needs an integer"),
            },
            "--out" => match args.get(i + 1) {
                Some(dir) => {
                    out = Some(dir.clone());
                    i += 1;
                }
                None => return usage("--out needs a directory"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if list {
        println!("available scenarios:");
        for s in Scenario::catalog() {
            println!("  {:<18} {}", s.name, s.description);
        }
        return 0;
    }

    let mut scenarios: Vec<Scenario> = if names.is_empty() {
        if quick {
            Scenario::quick_catalog()
        } else {
            Scenario::catalog()
        }
    } else {
        let mut picked = Vec::new();
        for name in &names {
            match Scenario::find(name) {
                Some(s) => picked.push(s),
                None => {
                    eprintln!("unknown scenario {name} (try --list)");
                    return 2;
                }
            }
        }
        picked
    };
    for s in &mut scenarios {
        if let Some(seed) = seed {
            s.seed = seed;
        }
        if let Some(requests) = requests {
            s.requests = requests;
        }
    }

    let mut failed = false;
    for scenario in &scenarios {
        let report = match run(scenario) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("{}: simulation error: {e}", scenario.name);
                return 2;
            }
        };
        print_summary(&report);
        if let Some(dir) = &out {
            if let Err(e) = write_reports(dir, &report) {
                eprintln!("{}: could not write reports: {e}", scenario.name);
                return 2;
            }
        }
        failed |= !report.passed();
    }
    if failed {
        eprintln!("\nFAIL: at least one scenario violated a gate");
        1
    } else {
        println!("\nall {} scenario(s) passed every gate", scenarios.len());
        0
    }
}

fn usage(problem: &str) -> i32 {
    eprintln!(
        "{problem}\nusage: blowfish_simulate [--quick] [--list] [--scenario NAME] \
         [--seed N] [--requests N] [--out DIR]"
    );
    2
}

fn print_summary(report: &SimReport) {
    let fits: usize = report.tenants.iter().map(|t| t.fits_requested).sum();
    let admitted: usize = report.tenants.iter().map(|t| t.fits_admitted).sum();
    let rejected: usize = report.tenants.iter().map(|t| t.fits_rejected).sum();
    let queries: usize = report.tenants.iter().map(|t| t.queries_answered).sum();
    println!(
        "\n=== {} (seed {}) — {}",
        report.scenario,
        report.seed,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    println!(
        "  {} requests over {} tenants: {admitted}/{fits} fits admitted \
         ({rejected} budget-rejected), {queries} queries answered",
        report.requests,
        report.tenants.len(),
    );
    println!(
        "  throughput {:.0} req/s, mean latency {:.1} µs, p99 {:.1} µs",
        report.timing.requests_per_sec,
        report.timing.mean_latency_ns / 1e3,
        report.timing.p99_latency_ns as f64 / 1e3,
    );
    for t in &report.tenants {
        let utility = match (t.measured_mse, t.expected_mse) {
            (Some(m), Some(e)) => {
                format!("mse {} vs expected {} ({:.2}x)", sci(m), sci(e), m / e)
            }
            (Some(m), None) => format!("mse {} (no closed form)", sci(m)),
            _ => "no queries answered".to_string(),
        };
        println!(
            "    {} [{:<13}] fits {:>3}/{:<3} spent {:>8.3}/{:<9.3} {utility}",
            t.id, t.policy, t.fits_admitted, t.fits_requested, t.spent, t.budget,
        );
    }
    for v in &report.violations {
        println!("  VIOLATION: {v}");
    }
}

fn write_reports(dir: &str, report: &SimReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let base = std::path::Path::new(dir);
    std::fs::write(
        base.join(format!("{}.json", report.scenario)),
        report.to_json(),
    )?;
    std::fs::write(
        base.join(format!("{}.det.json", report.scenario)),
        report.deterministic_json(),
    )?;
    println!(
        "  reports written to {}/{}.json (+ .det.json)",
        dir, report.scenario
    );
    Ok(())
}
