//! `blowfish_loadtest` — loopback TCP load testing for the `blowfish/1`
//! wire protocol.
//!
//! Replays a simulator scenario's trace from many concurrent client
//! connections against a real socket server (an in-process one by
//! default, or an external `blowfish-serve --tcp` via `--connect`),
//! validates every reply, reconciles the ledger bit-for-bit against the
//! observed fit receipts, and reports client-measured p50/p95/p99
//! latency plus sustained throughput. Any violation — a dropped or
//! corrupted reply, an admission off the order-independent floor, a
//! spend that does not reconcile — makes the process exit nonzero.
//!
//! ```text
//! blowfish_loadtest [--scenario NAME] [--connections N] [--seed N]
//!                   [--requests N] [--connect ADDR] [--net-model M]
//!                   [--out FILE] [--snapshot FILE] [--list]
//! blowfish_loadtest --idle N [--net-model M] [--probes N] [--dwell-ms N]
//!                   [--out FILE] [--snapshot FILE]
//! blowfish_loadtest --ping ADDR     # banner handshake check, exit 0/1
//! blowfish_loadtest --client ADDR   # stdin → socket, replies → stdout
//! ```
//!
//! * `--scenario NAME` — catalog scenario driving the trace (default
//!   `exhaustion-tight`; its bursty arrivals and the zipf hot-key
//!   `grid-hotkey` scenario are the CI pair);
//! * `--connections N` — concurrent client sockets, all held open
//!   simultaneously (default 64);
//! * `--net-model reactor|threads` — serving model for the in-process
//!   server (default: the platform default, reactor on Linux);
//! * `--idle N` — instead of a trace replay, run the mostly-idle
//!   connection-scaling test: N silent connections held open while
//!   `--probes` requests measure latency through them; asserts the
//!   server's thread count stays ≤ 2 × cores (`/proc/self/status`) and
//!   that the silent dwell (`--dwell-ms`, default 1000) moves the
//!   reactor's spurious-wakeup counter by exactly zero;
//! * `--connect ADDR` — target an already running server instead of the
//!   in-process one;
//! * `--out FILE` — write the full JSON report;
//! * `--snapshot FILE` — write the `bench_gate`-consumable
//!   `net-<scenario>/<metric>` (or `net-idle-<model>/<metric>`)
//!   tail-latency snapshot;
//! * `--ping ADDR` — one connection, banner verified, nothing sent:
//!   readiness probe for scripted CI startup;
//! * `--client ADDR` — minimal interactive client: banner to stderr,
//!   request lines from stdin, reply lines to stdout (so scripted
//!   sessions produce byte-identical stdout to the stdin/stdout server
//!   mode).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use blowfish_bench::simulate::{run_idle, run_load, IdleReport, LoadReport, Scenario};
use blowfish_engine::NetModel;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_name = "exhaustion-tight".to_string();
    let mut connections = 64usize;
    let mut seed: Option<u64> = None;
    let mut requests: Option<usize> = None;
    let mut connect: Option<String> = None;
    let mut out: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut model = NetModel::platform_default();
    let mut idle: Option<usize> = None;
    let mut probes = 200usize;
    let mut dwell = Duration::from_millis(1000);

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned();
        match args[i].as_str() {
            "--list" => {
                println!("available scenarios:");
                for s in Scenario::catalog() {
                    println!("  {:<18} {}", s.name, s.description);
                }
                return 0;
            }
            "--ping" => {
                return match value(i) {
                    Some(addr) => ping(&addr),
                    None => usage("--ping needs an address"),
                };
            }
            "--client" => {
                return match value(i) {
                    Some(addr) => client(&addr),
                    None => usage("--client needs an address"),
                };
            }
            "--scenario" => match value(i) {
                Some(name) => {
                    scenario_name = name;
                    i += 1;
                }
                None => return usage("--scenario needs a name"),
            },
            "--connections" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    connections = v;
                    i += 1;
                }
                None => return usage("--connections needs an integer"),
            },
            "--seed" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    seed = Some(v);
                    i += 1;
                }
                None => return usage("--seed needs an integer"),
            },
            "--requests" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    requests = Some(v);
                    i += 1;
                }
                None => return usage("--requests needs an integer"),
            },
            "--net-model" => match value(i).and_then(|v| NetModel::parse(&v)) {
                Some(v) => {
                    model = v;
                    i += 1;
                }
                None => return usage("--net-model must be reactor or threads"),
            },
            "--idle" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    idle = Some(v);
                    i += 1;
                }
                None => return usage("--idle needs a connection count"),
            },
            "--probes" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    probes = v;
                    i += 1;
                }
                None => return usage("--probes needs an integer"),
            },
            "--dwell-ms" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    dwell = Duration::from_millis(v);
                    i += 1;
                }
                None => return usage("--dwell-ms needs an integer"),
            },
            "--connect" => match value(i) {
                Some(addr) => {
                    connect = Some(addr);
                    i += 1;
                }
                None => return usage("--connect needs an address"),
            },
            "--out" => match value(i) {
                Some(file) => {
                    out = Some(file);
                    i += 1;
                }
                None => return usage("--out needs a file"),
            },
            "--snapshot" => match value(i) {
                Some(file) => {
                    snapshot = Some(file);
                    i += 1;
                }
                None => return usage("--snapshot needs a file"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(connections) = idle {
        return run_idle_mode(connections, model, probes, dwell, out, snapshot);
    }

    let mut scenario = match Scenario::find(&scenario_name) {
        Some(s) => s,
        None => {
            eprintln!("unknown scenario {scenario_name} (try --list)");
            return 2;
        }
    };
    if let Some(seed) = seed {
        scenario.seed = seed;
    }
    if let Some(requests) = requests {
        scenario.requests = requests;
    }

    let report = match run_load(&scenario, connections, connect.as_deref(), model) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{scenario_name}: load test could not run: {e}");
            return 2;
        }
    };
    print_summary(&report);
    if let Some(file) = &out {
        if let Err(e) = std::fs::write(file, report.to_json()) {
            eprintln!("could not write {file}: {e}");
            return 2;
        }
        println!("  full report written to {file}");
    }
    if let Some(file) = &snapshot {
        if let Err(e) = std::fs::write(file, report.snapshot_json()) {
            eprintln!("could not write {file}: {e}");
            return 2;
        }
        println!("  tail-latency snapshot written to {file}");
    }
    if report.passed() {
        println!("\nPASS: zero dropped/corrupted replies, ledger reconciles bit-for-bit");
        0
    } else {
        eprintln!("\nFAIL: {} violation(s)", report.violations.len());
        1
    }
}

fn usage(problem: &str) -> i32 {
    eprintln!(
        "{problem}\nusage: blowfish_loadtest [--scenario NAME] [--connections N] \
         [--seed N] [--requests N] [--connect ADDR] [--net-model reactor|threads] \
         [--out FILE] [--snapshot FILE] [--list] \
         | --idle N [--probes N] [--dwell-ms N] | --ping ADDR | --client ADDR"
    );
    2
}

/// `--idle N`: the mostly-idle connection-scaling mode.
fn run_idle_mode(
    connections: usize,
    model: NetModel,
    probes: usize,
    dwell: Duration,
    out: Option<String>,
    snapshot: Option<String>,
) -> i32 {
    let report = match run_idle(connections, model, probes, dwell) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("idle test could not run: {e}");
            return 2;
        }
    };
    print_idle_summary(&report);
    if let Some(file) = &out {
        if let Err(e) = std::fs::write(file, report.to_json()) {
            eprintln!("could not write {file}: {e}");
            return 2;
        }
        println!("  full report written to {file}");
    }
    if let Some(file) = &snapshot {
        if let Err(e) = std::fs::write(file, report.snapshot_json()) {
            eprintln!("could not write {file}: {e}");
            return 2;
        }
        println!("  snapshot written to {file}");
    }
    if report.passed() {
        println!("\nPASS: idle connections cost no threads and no wakeups");
        0
    } else {
        eprintln!("\nFAIL: {} violation(s)", report.violations.len());
        1
    }
}

fn print_idle_summary(report: &IdleReport) {
    println!(
        "=== idle scaling test — {} silent connections, model {} — {}",
        report.connections,
        report.model.label(),
        if report.passed() { "PASS" } else { "FAIL" }
    );
    match report.server_threads {
        Some(threads) => println!(
            "  server threads {} (bound 2 × {} cores = {}), {:.3} threads/kconn",
            threads,
            report.cores,
            2 * report.cores,
            report.threads_per_kconn().unwrap_or(0.0),
        ),
        None => println!("  server thread census unavailable on this platform"),
    }
    println!(
        "  spurious wakeups over dwell: {}, live at peak: {}",
        report.spurious_delta, report.live_reported
    );
    println!(
        "  probe latency p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs, mean {:.1} µs",
        report.timing.p50_latency_ns as f64 / 1e3,
        report.timing.p95_latency_ns as f64 / 1e3,
        report.timing.p99_latency_ns as f64 / 1e3,
        report.timing.mean_latency_ns / 1e3,
    );
    for v in &report.violations {
        println!("  VIOLATION: {v}");
    }
}

/// Readiness probe: succeed iff the server answers with the protocol
/// banner.
fn ping(addr: &str) -> i32 {
    match TcpStream::connect(addr) {
        Ok(stream) => {
            let mut reader = BufReader::new(stream);
            let mut banner = String::new();
            match reader.read_line(&mut banner) {
                Ok(_) if banner.starts_with("ok blowfish/1") => {
                    println!("{}", banner.trim_end());
                    0
                }
                _ => {
                    eprintln!("no blowfish/1 banner from {addr}: {banner}");
                    1
                }
            }
        }
        Err(e) => {
            eprintln!("cannot connect {addr}: {e}");
            1
        }
    }
}

/// Minimal interactive client: banner to stderr, stdin lines to the
/// socket, reply lines to stdout (stdout therefore matches a scripted
/// stdin/stdout `blowfish-serve` session byte for byte).
fn client(addr: &str) -> i32 {
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("cannot connect {addr}: {e}");
            return 1;
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot clone socket: {e}");
            return 1;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut banner = String::new();
    if reader.read_line(&mut banner).is_err() || !banner.starts_with("ok blowfish/1") {
        eprintln!("no blowfish/1 banner from {addr}: {banner}");
        return 1;
    }
    eprint!("{banner}");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut stdout = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if writeln!(writer, "{line}").is_err() {
            break;
        }
        // Blank/comment lines are Silent server-side: no reply to read.
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "quit" {
            break;
        }
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if write!(stdout, "{reply}")
                    .and_then(|_| stdout.flush())
                    .is_err()
                {
                    break;
                }
            }
        }
    }
    0
}

fn print_summary(report: &LoadReport) {
    println!(
        "=== {} load test — {} connections, {} requests — {}",
        report.scenario,
        report.connections,
        report.requests,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    println!(
        "  {} replies ({} shed), throughput {:.0} req/s",
        report.replies, report.shed, report.timing.requests_per_sec
    );
    println!(
        "  latency p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs, mean {:.1} µs",
        report.timing.p50_latency_ns as f64 / 1e3,
        report.timing.p95_latency_ns as f64 / 1e3,
        report.timing.p99_latency_ns as f64 / 1e3,
        report.timing.mean_latency_ns / 1e3,
    );
    for t in &report.tenants {
        println!(
            "    {} fits {:>3}/{:<3} (floor {:>3}) spent {:>8.3}/{:<9.3} answers {:>3}+{:<3}",
            t.id,
            t.fits_admitted,
            t.fits_requested,
            t.expected_admitted,
            t.spent_reported,
            t.budget,
            t.answers_ok,
            t.answers_raced,
        );
    }
    for v in &report.violations {
        println!("  VIOLATION: {v}");
    }
}
