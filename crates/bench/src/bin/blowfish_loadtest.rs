//! `blowfish_loadtest` — loopback TCP load testing for the `blowfish/1`
//! wire protocol.
//!
//! Replays a simulator scenario's trace from many concurrent client
//! connections against a real socket server (an in-process one by
//! default, or an external `blowfish-serve --tcp` via `--connect`),
//! validates every reply, reconciles the ledger bit-for-bit against the
//! observed fit receipts, and reports client-measured p50/p95/p99
//! latency plus sustained throughput. Any violation — a dropped or
//! corrupted reply, an admission off the order-independent floor, a
//! spend that does not reconcile — makes the process exit nonzero.
//!
//! ```text
//! blowfish_loadtest [--scenario NAME] [--connections N] [--seed N]
//!                   [--requests N] [--connect ADDR] [--out FILE]
//!                   [--snapshot FILE] [--list]
//! blowfish_loadtest --ping ADDR     # banner handshake check, exit 0/1
//! blowfish_loadtest --client ADDR   # stdin → socket, replies → stdout
//! ```
//!
//! * `--scenario NAME` — catalog scenario driving the trace (default
//!   `exhaustion-tight`; its bursty arrivals and the zipf hot-key
//!   `grid-hotkey` scenario are the CI pair);
//! * `--connections N` — concurrent client sockets, all held open
//!   simultaneously (default 64);
//! * `--connect ADDR` — target an already running server instead of the
//!   in-process one;
//! * `--out FILE` — write the full JSON report;
//! * `--snapshot FILE` — write the `bench_gate`-consumable
//!   `net-<scenario>/<metric>` tail-latency snapshot;
//! * `--ping ADDR` — one connection, banner verified, nothing sent:
//!   readiness probe for scripted CI startup;
//! * `--client ADDR` — minimal interactive client: banner to stderr,
//!   request lines from stdin, reply lines to stdout (so scripted
//!   sessions produce byte-identical stdout to the stdin/stdout server
//!   mode).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use blowfish_bench::simulate::{run_load, LoadReport, Scenario};

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_name = "exhaustion-tight".to_string();
    let mut connections = 64usize;
    let mut seed: Option<u64> = None;
    let mut requests: Option<usize> = None;
    let mut connect: Option<String> = None;
    let mut out: Option<String> = None;
    let mut snapshot: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned();
        match args[i].as_str() {
            "--list" => {
                println!("available scenarios:");
                for s in Scenario::catalog() {
                    println!("  {:<18} {}", s.name, s.description);
                }
                return 0;
            }
            "--ping" => {
                return match value(i) {
                    Some(addr) => ping(&addr),
                    None => usage("--ping needs an address"),
                };
            }
            "--client" => {
                return match value(i) {
                    Some(addr) => client(&addr),
                    None => usage("--client needs an address"),
                };
            }
            "--scenario" => match value(i) {
                Some(name) => {
                    scenario_name = name;
                    i += 1;
                }
                None => return usage("--scenario needs a name"),
            },
            "--connections" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    connections = v;
                    i += 1;
                }
                None => return usage("--connections needs an integer"),
            },
            "--seed" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    seed = Some(v);
                    i += 1;
                }
                None => return usage("--seed needs an integer"),
            },
            "--requests" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    requests = Some(v);
                    i += 1;
                }
                None => return usage("--requests needs an integer"),
            },
            "--connect" => match value(i) {
                Some(addr) => {
                    connect = Some(addr);
                    i += 1;
                }
                None => return usage("--connect needs an address"),
            },
            "--out" => match value(i) {
                Some(file) => {
                    out = Some(file);
                    i += 1;
                }
                None => return usage("--out needs a file"),
            },
            "--snapshot" => match value(i) {
                Some(file) => {
                    snapshot = Some(file);
                    i += 1;
                }
                None => return usage("--snapshot needs a file"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let mut scenario = match Scenario::find(&scenario_name) {
        Some(s) => s,
        None => {
            eprintln!("unknown scenario {scenario_name} (try --list)");
            return 2;
        }
    };
    if let Some(seed) = seed {
        scenario.seed = seed;
    }
    if let Some(requests) = requests {
        scenario.requests = requests;
    }

    let report = match run_load(&scenario, connections, connect.as_deref()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{scenario_name}: load test could not run: {e}");
            return 2;
        }
    };
    print_summary(&report);
    if let Some(file) = &out {
        if let Err(e) = std::fs::write(file, report.to_json()) {
            eprintln!("could not write {file}: {e}");
            return 2;
        }
        println!("  full report written to {file}");
    }
    if let Some(file) = &snapshot {
        if let Err(e) = std::fs::write(file, report.snapshot_json()) {
            eprintln!("could not write {file}: {e}");
            return 2;
        }
        println!("  tail-latency snapshot written to {file}");
    }
    if report.passed() {
        println!("\nPASS: zero dropped/corrupted replies, ledger reconciles bit-for-bit");
        0
    } else {
        eprintln!("\nFAIL: {} violation(s)", report.violations.len());
        1
    }
}

fn usage(problem: &str) -> i32 {
    eprintln!(
        "{problem}\nusage: blowfish_loadtest [--scenario NAME] [--connections N] \
         [--seed N] [--requests N] [--connect ADDR] [--out FILE] [--snapshot FILE] \
         [--list] | --ping ADDR | --client ADDR"
    );
    2
}

/// Readiness probe: succeed iff the server answers with the protocol
/// banner.
fn ping(addr: &str) -> i32 {
    match TcpStream::connect(addr) {
        Ok(stream) => {
            let mut reader = BufReader::new(stream);
            let mut banner = String::new();
            match reader.read_line(&mut banner) {
                Ok(_) if banner.starts_with("ok blowfish/1") => {
                    println!("{}", banner.trim_end());
                    0
                }
                _ => {
                    eprintln!("no blowfish/1 banner from {addr}: {banner}");
                    1
                }
            }
        }
        Err(e) => {
            eprintln!("cannot connect {addr}: {e}");
            1
        }
    }
}

/// Minimal interactive client: banner to stderr, stdin lines to the
/// socket, reply lines to stdout (stdout therefore matches a scripted
/// stdin/stdout `blowfish-serve` session byte for byte).
fn client(addr: &str) -> i32 {
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("cannot connect {addr}: {e}");
            return 1;
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot clone socket: {e}");
            return 1;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut banner = String::new();
    if reader.read_line(&mut banner).is_err() || !banner.starts_with("ok blowfish/1") {
        eprintln!("no blowfish/1 banner from {addr}: {banner}");
        return 1;
    }
    eprint!("{banner}");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut stdout = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if writeln!(writer, "{line}").is_err() {
            break;
        }
        // Blank/comment lines are Silent server-side: no reply to read.
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "quit" {
            break;
        }
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if write!(stdout, "{reply}")
                    .and_then(|_| stdout.flush())
                    .is_err()
                {
                    break;
                }
            }
        }
    }
    0
}

fn print_summary(report: &LoadReport) {
    println!(
        "=== {} load test — {} connections, {} requests — {}",
        report.scenario,
        report.connections,
        report.requests,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    println!(
        "  {} replies ({} shed), throughput {:.0} req/s",
        report.replies, report.shed, report.timing.requests_per_sec
    );
    println!(
        "  latency p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs, mean {:.1} µs",
        report.timing.p50_latency_ns as f64 / 1e3,
        report.timing.p95_latency_ns as f64 / 1e3,
        report.timing.p99_latency_ns as f64 / 1e3,
        report.timing.mean_latency_ns / 1e3,
    );
    for t in &report.tenants {
        println!(
            "    {} fits {:>3}/{:<3} (floor {:>3}) spent {:>8.3}/{:<9.3} answers {:>3}+{:<3}",
            t.id,
            t.fits_admitted,
            t.fits_requested,
            t.expected_admitted,
            t.spent_reported,
            t.budget,
            t.answers_ok,
            t.answers_raced,
        );
    }
    for v in &report.violations {
        println!("  VIOLATION: {v}");
    }
}
