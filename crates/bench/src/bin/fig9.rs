//! Regenerates **Figure 9** (Appendix B) — the same four panels as
//! Figure 8 at the extreme budgets ε ∈ {1, 0.001}, driven through the
//! `blowfish-engine` registry.
//!
//! Flags: `--panel {2d|hist|1d|theta|all}`, `--epsilon X`, `--trials N`,
//! `--queries N`.

use blowfish_bench::{
    hist_panel, panel_description, parse_args, print_panel, range1d_panel, range2d_panel,
    theta_panel, BenchError, Config,
};

fn main() {
    if let Err(e) = run() {
        eprintln!("fig9: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let overrides = parse_args(&args);
    let epsilons: Vec<f64> = overrides
        .epsilon
        .map(|e| vec![e])
        .unwrap_or_else(|| vec![1.0, 0.001]);
    let panel = overrides.panel.clone().unwrap_or_else(|| "all".to_string());

    println!("# Figure 9 — ε/2-DP vs (ε, G)-Blowfish at extreme budgets");
    for &eps in &epsilons {
        let cfg = overrides.apply(Config::paper(eps));
        if panel == "2d" || panel == "all" {
            println!("\n## {}", panel_description("2D-Range (G¹_k²)", &cfg));
            let rows = range2d_panel(&cfg)?;
            let cols: Vec<String> = ["twitter25", "twitter50", "twitter100"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            print_panel("2D-Range", &cols, &rows);
        }
        if panel == "hist" || panel == "all" {
            println!("\n## {}", panel_description("Hist (G¹_k)", &cfg));
            let rows = hist_panel(&cfg)?;
            let cols: Vec<String> = ["A", "B", "C", "D", "E", "F", "G"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            print_panel("Hist", &cols, &rows);
        }
        if panel == "1d" || panel == "all" {
            println!("\n## {}", panel_description("1D-Range (G¹_k)", &cfg));
            let rows = range1d_panel(&cfg)?;
            let cols: Vec<String> = ["A", "B", "C", "D", "E", "F", "G"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            print_panel("1D-Range", &cols, &rows);
        }
        if panel == "theta" || panel == "all" {
            println!("\n## {}", panel_description("1D-Range (G⁴_k)", &cfg));
            let rows = theta_panel(&cfg)?;
            let cols: Vec<String> = ["512", "1024", "2048", "4096"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            print_panel("1D-Range under G⁴", &cols, &rows);
        }
    }
    println!("\nPaper shape checks (Figure 9): at ε=1 the DAWA-based Blowfish");
    println!("variant overtakes Transformed+Laplace (better clustering at high");
    println!("budget); at ε=0.001 the ordering reverses — the paper's conjecture");
    println!("about budget-starved clustering.");
    Ok(())
}
