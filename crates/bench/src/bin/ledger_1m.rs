//! `ledger_1m` — the million-tenant ledger scale gate.
//!
//! Opens a ledger with 1M tenant accounts and drives 100k charges
//! through it, measuring what the sharded design promises:
//!
//! * **O(1) charge latency** — ns/charge at 1M tenants must stay within
//!   a small factor of ns/charge at 10k tenants (lock-striped hash
//!   segments have no per-tenant scan anywhere on the charge path);
//! * **bounded memory** — resident-set growth per opened account must
//!   stay under a fixed byte budget (no hidden per-tenant history
//!   pre-allocation or quadratic index).
//!
//! Both bounds are asserted in-process (`--check`, the CI mode) and the
//! raw measurements are written as a slash-keyed snapshot (`--out`) so
//! `bench_gate` also holds them against the committed
//! `BENCH_service.json` baselines with its 3x rule.
//!
//! ```text
//! ledger_1m [--tenants N] [--charges N] [--out FILE] [--check]
//! ```

use std::time::Instant;

use blowfish_core::{Epsilon, Ledger};

/// O(1) assertion: charging among 1M accounts may cost at most this
/// factor over charging among 10k (hashing + striping noise, not
/// data-structure growth; cache effects at 1M keys cost well under 2x).
const O1_FACTOR: f64 = 4.0;

/// Memory assertion: bytes of RSS growth per opened account. An account
/// is an id string, an f64 pair, a counter, and an empty history ring
/// inside a striped hash map — comfortably under 400 B; 1024 B catches
/// a per-tenant pre-allocation regression while ignoring allocator
/// slack.
const MAX_BYTES_PER_TENANT: f64 = 1024.0;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tenants: usize = 1_000_000;
    let mut charges: usize = 100_000;
    let mut out: Option<String> = None;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tenants" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(v) if v > 0 => {
                    tenants = v;
                    i += 1;
                }
                _ => return usage("--tenants needs a positive integer"),
            },
            "--charges" => match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(v) if v > 0 => {
                    charges = v;
                    i += 1;
                }
                _ => return usage("--charges needs a positive integer"),
            },
            "--out" => match args.get(i + 1) {
                Some(file) => {
                    out = Some(file.clone());
                    i += 1;
                }
                None => return usage("--out needs a file"),
            },
            "--check" => check = true,
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    // Small-population reference point for the O(1) comparison.
    let small_tenants = (tenants / 100).clamp(1, 10_000);
    let small = measure(small_tenants, charges);
    let large = measure(tenants, charges);
    let ratio = large.ns_per_charge / small.ns_per_charge.max(1.0);

    println!(
        "ledger_1m: {small_tenants} tenants: {:.0} ns/charge; {tenants} tenants: \
         {:.0} ns/charge ({ratio:.2}x), {:.0} ns/open, {:.1} MB RSS growth \
         ({:.0} B/tenant)",
        small.ns_per_charge,
        large.ns_per_charge,
        large.ns_per_open,
        large.rss_growth_bytes / (1024.0 * 1024.0),
        large.bytes_per_tenant,
    );

    if let Some(file) = &out {
        let json = format!(
            "{{\n  \"bench\": \"ledger_1m ({tenants} tenants, {charges} charges)\",\n  \
             \"results_ns\": {{\n    \
             \"ledger_1m/ns_per_charge_small\": {:.0},\n    \
             \"ledger_1m/ns_per_charge_1m\": {:.0},\n    \
             \"ledger_1m/ns_per_open_1m\": {:.0},\n    \
             \"ledger_1m/rss_bytes_per_tenant\": {:.0}\n  }}\n}}\n",
            small.ns_per_charge, large.ns_per_charge, large.ns_per_open, large.bytes_per_tenant,
        );
        if let Err(e) = std::fs::write(file, json) {
            eprintln!("ledger_1m: cannot write {file}: {e}");
            return 2;
        }
        println!("ledger_1m: snapshot written to {file}");
    }

    if check {
        let mut failed = false;
        if ratio > O1_FACTOR {
            failed = true;
            println!(
                "FAIL O(1): {tenants}-tenant charges cost {ratio:.2}x the \
                 {small_tenants}-tenant cost (allowed {O1_FACTOR}x)"
            );
        }
        // RSS is only a meaningful per-tenant signal at scale (allocator
        // slack dominates small populations), and unavailable off-Linux.
        if tenants >= 100_000 {
            match large.bytes_per_tenant {
                b if b < 0.0 => {
                    println!("note: RSS not measurable on this platform; memory bound not enforced")
                }
                b if b > MAX_BYTES_PER_TENANT => {
                    failed = true;
                    println!(
                        "FAIL memory: {b:.0} B of RSS per tenant \
                         (allowed {MAX_BYTES_PER_TENANT:.0})"
                    );
                }
                _ => {}
            }
        }
        if failed {
            return 1;
        }
        println!("ledger_1m: O(1) charge latency and bounded memory hold");
    }
    0
}

fn usage(problem: &str) -> i32 {
    eprintln!("{problem}\nusage: ledger_1m [--tenants N] [--charges N] [--out FILE] [--check]");
    2
}

struct Measurement {
    ns_per_open: f64,
    ns_per_charge: f64,
    rss_growth_bytes: f64,
    bytes_per_tenant: f64,
}

/// Opens `tenants` accounts and spreads `charges` admitted charges over
/// them with a multiplicative-hash walk (every charge hits a different
/// stripe/account neighborhood — the worst case for any design that
/// secretly scans).
///
/// The charge timing is best-of-3 after an untimed warm-up pass: the
/// very first walk over a freshly opened million-account map is
/// dominated by first-touch page faults and hugepage collapse, which
/// measure the allocator, not the ledger. The gate asserts
/// data-structure complexity, so it times the steady state. (Total
/// charged spend — 4 passes × `charges` × 1e-3 — stays far below the
/// 1e9 budget, so no pass ever hits the exhaustion path.)
fn measure(tenants: usize, charges: usize) -> Measurement {
    let ids: Vec<String> = (0..tenants).map(|i| format!("tenant-{i:08}")).collect();
    let budget = Epsilon::new(1e9).expect("valid budget");
    let eps = Epsilon::new(1e-3).expect("valid charge");

    let rss_before = rss_bytes();
    let ledger = Ledger::new();
    let opened = Instant::now();
    for id in &ids {
        ledger.open(id, budget).expect("open");
    }
    let ns_per_open = opened.elapsed().as_nanos() as f64 / tenants as f64;
    let rss_growth_bytes = match (rss_before, rss_bytes()) {
        (Some(before), Some(after)) => after.saturating_sub(before) as f64,
        _ => -1.0,
    };

    let mut ns_per_charge = f64::INFINITY;
    for pass in 0..4 {
        let charged = Instant::now();
        for i in 0..charges {
            let id = &ids[(i.wrapping_mul(2_654_435_761)) % tenants];
            ledger.charge(id, "scale", eps).expect("charge");
        }
        let pass_ns = charged.elapsed().as_nanos() as f64 / charges as f64;
        if pass > 0 {
            ns_per_charge = ns_per_charge.min(pass_ns);
        }
    }

    Measurement {
        ns_per_open,
        ns_per_charge,
        rss_growth_bytes,
        bytes_per_tenant: if rss_growth_bytes < 0.0 {
            -1.0
        } else {
            rss_growth_bytes / tenants as f64
        },
    }
}

/// Current resident set in bytes (`/proc/self/status` VmRSS); `None`
/// off-Linux.
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}
