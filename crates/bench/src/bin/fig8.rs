//! Regenerates **Figure 8** — the main Section 6 comparison of
//! `ε/2`-differentially-private and `(ε, G)`-Blowfish algorithms on four
//! workloads at ε ∈ {0.01, 0.1}, driven through the `blowfish-engine`
//! registry.
//!
//! * (a, e) 2D-Range under `G¹_{k²}` on twitter25/50/100,
//! * (b, f) Hist under `G¹_k` on datasets A–G,
//! * (c, g) 1D-Range under `G¹_k` on datasets A–G,
//! * (d, h) 1D-Range under `G⁴_k` on dataset D at k = 512..4096.
//!
//! Flags: `--panel {2d|hist|1d|theta|all}`, `--epsilon X`, `--trials N`,
//! `--queries N`.

use blowfish_bench::{
    hist_panel, panel_description, parse_args, print_panel, range1d_panel, range2d_panel,
    theta_panel, BenchError, Config,
};

fn main() {
    if let Err(e) = run() {
        eprintln!("fig8: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let overrides = parse_args(&args);
    let epsilons: Vec<f64> = overrides
        .epsilon
        .map(|e| vec![e])
        .unwrap_or_else(|| vec![0.01, 0.1]);
    let panel = overrides.panel.clone().unwrap_or_else(|| "all".to_string());

    println!("# Figure 8 — ε/2-DP vs (ε, G)-Blowfish");
    for &eps in &epsilons {
        let cfg = overrides.apply(Config::paper(eps));
        run_panels(&panel, &cfg)?;
    }
    println!("\nPaper shape checks (read off Figure 8):");
    println!(" - 1D-Range: Blowfish variants sit 2-3 orders of magnitude below");
    println!("   Privelet/DAWA on all datasets.");
    println!(" - Hist: Transformed+Laplace ≈ 2x below Laplace; data-dependent");
    println!("   variants win big on sparse E/F/G-like data.");
    println!(" - 2D-Range: Transformed+Privelet below Privelet everywhere and");
    println!("   below DAWA on the larger grids.");
    println!(" - G⁴: Blowfish error flat in domain size; DP error grows.");
    Ok(())
}

fn run_panels(panel: &str, cfg: &Config) -> Result<(), BenchError> {
    if panel == "2d" || panel == "all" {
        println!(
            "\n## {}",
            panel_description("2D-Range (G¹_k², twitter grids)", cfg)
        );
        let rows = range2d_panel(cfg)?;
        let cols: Vec<String> = ["twitter25", "twitter50", "twitter100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        print_panel("2D-Range", &cols, &rows);
    }
    if panel == "hist" || panel == "all" {
        println!(
            "\n## {}",
            panel_description("Hist (G¹_k, datasets A-G)", cfg)
        );
        let rows = hist_panel(cfg)?;
        let cols: Vec<String> = ["A", "B", "C", "D", "E", "F", "G"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        print_panel("Hist", &cols, &rows);
    }
    if panel == "1d" || panel == "all" {
        println!(
            "\n## {}",
            panel_description("1D-Range (G¹_k, datasets A-G)", cfg)
        );
        let rows = range1d_panel(cfg)?;
        let cols: Vec<String> = ["A", "B", "C", "D", "E", "F", "G"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        print_panel("1D-Range", &cols, &rows);
    }
    if panel == "theta" || panel == "all" {
        println!(
            "\n## {}",
            panel_description("1D-Range (G⁴_k, dataset D at 512..4096)", cfg)
        );
        let rows = theta_panel(cfg)?;
        let cols: Vec<String> = ["512", "1024", "2048", "4096"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        print_panel("1D-Range under G⁴", &cols, &rows);
    }
    Ok(())
}
