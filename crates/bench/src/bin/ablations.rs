//! Ablation studies for the design choices DESIGN.md calls out — beyond
//! the paper's own figures:
//!
//! 1. **Inner mechanism of the θ-line strategy** (Laplace vs per-group
//!    Privelet vs DAWA) across θ — quantifies the `log³θ` term of
//!    Theorem 5.5.
//! 2. **Spanner choice** — the bespoke `H^θ_k` (stretch ≤ 3) vs a generic
//!    BFS spanning tree: stretch, and the resulting error through the
//!    Corollary 4.6 budget scaling.
//! 3. **DAWA partition budget α** — the stage-1/stage-2 split.
//! 4. **Matrix-mechanism strategies** on the *transformed* workload
//!    (identity vs hierarchical vs wavelet) at small k — analytic errors,
//!    showing that after the `G¹` transform the identity strategy is the
//!    right choice (the transformed workload is "easy", Section 5.2.1).
//! 5. **Estimators for the Hist open question** — Laplace vs hierarchical
//!    on the transformed database, with and without consistency.
//!
//! Flags: `--trials N`, `--queries N`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_bench::{measure_bench, parse_args, sci, BenchError};
use blowfish_core::{
    bfs_spanning_tree, theta_line_spanner, DataVector, Domain, Epsilon, Incidence, PolicyGraph,
    Workload,
};
use blowfish_data::{dataset, DatasetId};
use blowfish_mechanisms::{
    dawa_histogram, hierarchical_strategy, identity_strategy, wavelet_strategy, DawaOptions,
    MatrixMechanism,
};
use blowfish_strategies::{
    answer_ranges_1d, line_blowfish_histogram, tree_blowfish_histogram, true_ranges_1d,
    ThetaEstimator, ThetaLineStrategy, TreeEstimator,
};

fn main() {
    if let Err(e) = run() {
        eprintln!("ablations: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let overrides = parse_args(&args);
    let trials = overrides.trials.unwrap_or(5);
    let queries = overrides.queries.unwrap_or(2_000);
    let eps = Epsilon::new(overrides.epsilon.unwrap_or(0.1))?;

    println!(
        "# Ablations (ε={}, {trials} trials, {queries} queries)",
        eps.value()
    );

    ablation_theta_inner(eps, trials, queries)?;
    ablation_spanner_choice(eps, trials, queries)?;
    ablation_dawa_alpha(eps, trials)?;
    ablation_matrix_strategies()?;
    ablation_hist_estimators(eps, trials)?;
    Ok(())
}

/// Mean per-trial MSE of a fallible estimator against a fixed truth.
fn avg_mse(
    truth: &[f64],
    trials: usize,
    mut f: impl FnMut() -> Result<Vec<f64>, BenchError>,
) -> Result<f64, BenchError> {
    Ok(measure_bench(truth, trials, |_| f())?.mean_mse)
}

/// (1) θ-line inner mechanism across θ.
fn ablation_theta_inner(eps: Epsilon, trials: usize, queries: usize) -> Result<(), BenchError> {
    println!("\n## 1. θ-line inner mechanism (uniform data, k = 2048)\n");
    let k = 2048;
    let x = DataVector::new(Domain::one_dim(k), vec![2.0; k])?;
    let d = Domain::one_dim(k);
    let mut qrng = StdRng::seed_from_u64(1);
    let specs = blowfish_core::random_range_specs(&d, queries, &mut qrng);
    let truth = true_ranges_1d(&x, &specs)?;
    println!("| θ | Laplace | GroupPrivelet | Dawa |");
    println!("|---|---|---|---|");
    for theta in [2usize, 4, 8, 16] {
        let strat = ThetaLineStrategy::new(k, theta)?;
        print!("| {theta} |");
        for est in [
            ThetaEstimator::Laplace,
            ThetaEstimator::GroupPrivelet,
            ThetaEstimator::Dawa,
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let mse = avg_mse(&truth, trials, || {
                let h = strat.histogram(&x, eps, est, &mut rng)?;
                Ok(answer_ranges_1d(&h, &specs)?)
            })?;
            print!(" {} |", sci(mse));
        }
        println!();
    }
    println!("\nReading: Laplace grows ~linearly in θ, GroupPrivelet ~log³θ — but");
    println!("since θ < log³θ until θ ≈ 1000, plain Laplace wins at every practical");
    println!("θ. Theorem 5.5's Privelet choice matters asymptotically only; the");
    println!("experiments' Transformed+Laplace variant is the right default. DAWA");
    println!("tracks Laplace on uniform data (no structure to exploit).");
    Ok(())
}

/// (2) H^θ spanner vs generic BFS tree.
fn ablation_spanner_choice(eps: Epsilon, trials: usize, queries: usize) -> Result<(), BenchError> {
    println!("\n## 2. Spanner choice for G⁴ (dataset D, k = 1024)\n");
    let k = 1024;
    let theta = 4;
    let x = blowfish_data::aggregate_1d(&dataset(DatasetId::D), k)?;
    let d = Domain::one_dim(k);
    let mut qrng = StdRng::seed_from_u64(3);
    let specs = blowfish_core::random_range_specs(&d, queries, &mut qrng);
    let truth = true_ranges_1d(&x, &specs)?;

    // Bespoke spanner.
    let sp = theta_line_spanner(k, theta)?;
    let strat = ThetaLineStrategy::new(k, theta)?;
    let mut rng = StdRng::seed_from_u64(4);
    let bespoke = avg_mse(&truth, trials, || {
        let h = strat.histogram(&x, eps, ThetaEstimator::Laplace, &mut rng)?;
        Ok(answer_ranges_1d(&h, &specs)?)
    })?;

    // Generic BFS spanning tree of G^θ.
    let g_theta = PolicyGraph::theta_line(k, theta)?;
    let bfs = bfs_spanning_tree(&g_theta, 0)?;
    let bfs_stretch = g_theta.stretch_through(&bfs).ok_or(BenchError::Config {
        what: "BFS tree does not span the θ-line policy graph",
    })?;
    let inc = Incidence::new(&bfs)?;
    let eps_bfs = eps.for_stretch(bfs_stretch)?;
    let mut rng2 = StdRng::seed_from_u64(5);
    let generic = avg_mse(&truth, trials, || {
        let h = tree_blowfish_histogram(&inc, &x, eps_bfs, TreeEstimator::Laplace, &mut rng2)?;
        Ok(answer_ranges_1d(&h, &specs)?)
    })?;

    println!("| spanner | certified stretch ℓ | budget used | MSE/query |");
    println!("|---|---|---|---|");
    println!(
        "| H^θ (Figure 6) | {} | ε/{} | {} |",
        sp.stretch,
        sp.stretch,
        sci(bespoke)
    );
    println!(
        "| BFS tree | {bfs_stretch} | ε/{bfs_stretch} | {} |",
        sci(generic)
    );
    println!("\nReading: the bespoke spanner's bounded stretch (≤3) is the whole");
    println!("game — a generic tree pays its worse stretch twice (budget AND");
    println!("longer subtree paths).");
    Ok(())
}

/// (3) DAWA budget split α.
fn ablation_dawa_alpha(eps: Epsilon, trials: usize) -> Result<(), BenchError> {
    println!("\n## 3. DAWA partition budget α (dataset E, Hist)\n");
    let x = dataset(DatasetId::E);
    let truth = x.counts().to_vec();
    println!("| α | MSE/cell |");
    println!("|---|---|");
    for alpha in [0.1, 0.25, 0.5, 0.75] {
        let mut rng = StdRng::seed_from_u64(6);
        let opts = DawaOptions {
            partition_budget_fraction: alpha,
        };
        let mse = avg_mse(&truth, trials, || {
            Ok(dawa_histogram(x.counts(), eps, opts, &mut rng)?)
        })?;
        println!("| {alpha} | {} |", sci(mse));
    }
    println!("\nReading: small α starves the partition (bad buckets); large α");
    println!("starves the totals (noisy buckets) — DAWA's default 0.25 sits in");
    println!("the flat middle.");
    Ok(())
}

/// (4) Matrix-mechanism strategies on the transformed workload (analytic).
fn ablation_matrix_strategies() -> Result<(), BenchError> {
    println!("\n## 4. Strategies for the transformed workload (k = 64, analytic)\n");
    let k = 64;
    let eps = Epsilon::new(1.0)?;
    let g = PolicyGraph::line(k)?;
    let inc = Incidence::new(&g)?;
    let w = Workload::all_ranges_1d(k);
    let (wg, _) = inc.transform_workload(&w)?;
    let wg_dense = wg.to_dense_matrix();
    println!("| strategy A_G | Δ_A | E[error]/query |");
    println!("|---|---|---|");
    for (name, strat) in [
        ("identity (Algorithm 1)", identity_strategy(k - 1)),
        ("hierarchical", hierarchical_strategy(k - 1)),
        ("wavelet", wavelet_strategy(k - 1)),
    ] {
        let mm = MatrixMechanism::new(wg_dense.clone(), strat)?;
        println!(
            "| {name} | {} | {} |",
            mm.delta_a(),
            sci(mm.per_query_error(eps))
        );
    }
    println!("\nReading: after the G¹ transform the workload is (near-)identity,");
    println!("so the identity strategy wins — the polylog machinery is only");
    println!("needed BEFORE the transform. This is Section 5.2.1's point.");
    Ok(())
}

/// (5) Hist estimators on the transformed database (the open question).
fn ablation_hist_estimators(eps: Epsilon, trials: usize) -> Result<(), BenchError> {
    println!("\n## 5. Hist under G¹: estimators on x_G (datasets D and E)\n");
    println!("| estimator | D | E |");
    println!("|---|---|---|");
    for est in [
        TreeEstimator::Laplace,
        TreeEstimator::LaplaceConsistent,
        TreeEstimator::Hierarchical,
        TreeEstimator::HierarchicalConsistent,
        TreeEstimator::Dawa,
        TreeEstimator::DawaConsistent,
    ] {
        print!("| {} |", est.name());
        for id in [DatasetId::D, DatasetId::E] {
            let x = dataset(id);
            let truth = x.counts().to_vec();
            let mut rng = StdRng::seed_from_u64(7);
            let mse = avg_mse(&truth, trials, || {
                Ok(line_blowfish_histogram(&x, eps, est, &mut rng)?)
            })?;
            print!(" {} |", sci(mse));
        }
        println!();
    }
    println!("\nReading: consistency dominates on sparse data; the hierarchical");
    println!("variant (our extension toward the paper's open question) does not");
    println!("beat plain Laplace for per-cell error — differencing cancels the");
    println!("tree's long-range advantage — evidence the open question needs a");
    println!("genuinely different idea.");
    Ok(())
}
