//! Ablation studies for the design choices DESIGN.md calls out — beyond
//! the paper's own figures:
//!
//! 1. **Inner mechanism of the θ-line strategy** (Laplace vs per-group
//!    Privelet vs DAWA) across θ — quantifies the `log³θ` term of
//!    Theorem 5.5.
//! 2. **Spanner choice** — the bespoke `H^θ_k` (stretch ≤ 3) vs a generic
//!    BFS spanning tree: stretch, and the resulting error through the
//!    Corollary 4.6 budget scaling.
//! 3. **DAWA partition budget α** — the stage-1/stage-2 split.
//! 4. **Matrix-mechanism strategies** on the *transformed* workload
//!    (identity vs hierarchical vs wavelet) at small k — analytic errors,
//!    showing that after the `G¹` transform the identity strategy is the
//!    right choice (the transformed workload is "easy", Section 5.2.1).
//! 5. **Estimators for the Hist open question** — Laplace vs hierarchical
//!    on the transformed database, with and without consistency.
//!
//! Flags: `--trials N`, `--queries N`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_bench::{parse_args, sci};
use blowfish_core::{
    bfs_spanning_tree, measure_error, theta_line_spanner, DataVector, Domain, Epsilon, Incidence,
    PolicyGraph, Workload,
};
use blowfish_data::{dataset, DatasetId};
use blowfish_mechanisms::{
    dawa_histogram, hierarchical_strategy, identity_strategy, wavelet_strategy, DawaOptions,
    MatrixMechanism,
};
use blowfish_strategies::{
    answer_ranges_1d, line_blowfish_histogram, tree_blowfish_histogram, true_ranges_1d,
    ThetaEstimator, ThetaLineStrategy, TreeEstimator,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let overrides = parse_args(&args);
    let trials = overrides.trials.unwrap_or(5);
    let queries = overrides.queries.unwrap_or(2_000);
    let eps = Epsilon::new(overrides.epsilon.unwrap_or(0.1)).expect("valid");

    println!(
        "# Ablations (ε={}, {trials} trials, {queries} queries)",
        eps.value()
    );

    ablation_theta_inner(eps, trials, queries);
    ablation_spanner_choice(eps, trials, queries);
    ablation_dawa_alpha(eps, trials);
    ablation_matrix_strategies();
    ablation_hist_estimators(eps, trials);
}

/// (1) θ-line inner mechanism across θ.
fn ablation_theta_inner(eps: Epsilon, trials: usize, queries: usize) {
    println!("\n## 1. θ-line inner mechanism (uniform data, k = 2048)\n");
    let k = 2048;
    let x = DataVector::new(Domain::one_dim(k), vec![2.0; k]).expect("uniform");
    let d = Domain::one_dim(k);
    let mut qrng = StdRng::seed_from_u64(1);
    let specs = blowfish_core::random_range_specs(&d, queries, &mut qrng);
    let truth = true_ranges_1d(&x, &specs).expect("truth");
    println!("| θ | Laplace | GroupPrivelet | Dawa |");
    println!("|---|---|---|---|");
    for theta in [2usize, 4, 8, 16] {
        let strat = ThetaLineStrategy::new(k, theta).expect("k > θ");
        print!("| {theta} |");
        for est in [
            ThetaEstimator::Laplace,
            ThetaEstimator::GroupPrivelet,
            ThetaEstimator::Dawa,
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let report = measure_error(&truth, trials, |_| {
                let h = strat.histogram(&x, eps, est, &mut rng).expect("strategy");
                Ok(answer_ranges_1d(&h, &specs).expect("answers"))
            })
            .expect("trials > 0");
            print!(" {} |", sci(report.mean_mse));
        }
        println!();
    }
    println!("\nReading: Laplace grows ~linearly in θ, GroupPrivelet ~log³θ — but");
    println!("since θ < log³θ until θ ≈ 1000, plain Laplace wins at every practical");
    println!("θ. Theorem 5.5's Privelet choice matters asymptotically only; the");
    println!("experiments' Transformed+Laplace variant is the right default. DAWA");
    println!("tracks Laplace on uniform data (no structure to exploit).");
}

/// (2) H^θ spanner vs generic BFS tree.
fn ablation_spanner_choice(eps: Epsilon, trials: usize, queries: usize) {
    println!("\n## 2. Spanner choice for G⁴ (dataset D, k = 1024)\n");
    let k = 1024;
    let theta = 4;
    let x = blowfish_data::aggregate_1d(&dataset(DatasetId::D), k).expect("divides");
    let d = Domain::one_dim(k);
    let mut qrng = StdRng::seed_from_u64(3);
    let specs = blowfish_core::random_range_specs(&d, queries, &mut qrng);
    let truth = true_ranges_1d(&x, &specs).expect("truth");

    // Bespoke spanner.
    let sp = theta_line_spanner(k, theta).expect("k > θ");
    let strat = ThetaLineStrategy::new(k, theta).expect("k > θ");
    let mut rng = StdRng::seed_from_u64(4);
    let bespoke = measure_error(&truth, trials, |_| {
        let h = strat
            .histogram(&x, eps, ThetaEstimator::Laplace, &mut rng)
            .expect("strategy");
        Ok(answer_ranges_1d(&h, &specs).expect("answers"))
    })
    .expect("trials > 0");

    // Generic BFS spanning tree of G^θ.
    let g_theta = PolicyGraph::theta_line(k, theta).expect("valid");
    let bfs = bfs_spanning_tree(&g_theta, 0).expect("connected");
    let bfs_stretch = g_theta.stretch_through(&bfs).expect("spanning");
    let inc = Incidence::new(&bfs).expect("tree");
    let eps_bfs = eps.for_stretch(bfs_stretch).expect("stretch > 0");
    let mut rng2 = StdRng::seed_from_u64(5);
    let generic = measure_error(&truth, trials, |_| {
        let h = tree_blowfish_histogram(&inc, &x, eps_bfs, TreeEstimator::Laplace, &mut rng2)
            .expect("strategy");
        Ok(answer_ranges_1d(&h, &specs).expect("answers"))
    })
    .expect("trials > 0");

    println!("| spanner | certified stretch ℓ | budget used | MSE/query |");
    println!("|---|---|---|---|");
    println!(
        "| H^θ (Figure 6) | {} | ε/{} | {} |",
        sp.stretch,
        sp.stretch,
        sci(bespoke.mean_mse)
    );
    println!(
        "| BFS tree | {bfs_stretch} | ε/{bfs_stretch} | {} |",
        sci(generic.mean_mse)
    );
    println!("\nReading: the bespoke spanner's bounded stretch (≤3) is the whole");
    println!("game — a generic tree pays its worse stretch twice (budget AND");
    println!("longer subtree paths).");
}

/// (3) DAWA budget split α.
fn ablation_dawa_alpha(eps: Epsilon, trials: usize) {
    println!("\n## 3. DAWA partition budget α (dataset E, Hist)\n");
    let x = dataset(DatasetId::E);
    let truth = x.counts().to_vec();
    println!("| α | MSE/cell |");
    println!("|---|---|");
    for alpha in [0.1, 0.25, 0.5, 0.75] {
        let mut rng = StdRng::seed_from_u64(6);
        let opts = DawaOptions {
            partition_budget_fraction: alpha,
        };
        let report = measure_error(&truth, trials, |_| {
            Ok(dawa_histogram(x.counts(), eps, opts, &mut rng).expect("dawa"))
        })
        .expect("trials > 0");
        println!("| {alpha} | {} |", sci(report.mean_mse));
    }
    println!("\nReading: small α starves the partition (bad buckets); large α");
    println!("starves the totals (noisy buckets) — DAWA's default 0.25 sits in");
    println!("the flat middle.");
}

/// (4) Matrix-mechanism strategies on the transformed workload (analytic).
fn ablation_matrix_strategies() {
    println!("\n## 4. Strategies for the transformed workload (k = 64, analytic)\n");
    let k = 64;
    let eps = Epsilon::new(1.0).expect("valid");
    let g = PolicyGraph::line(k).expect("valid");
    let inc = Incidence::new(&g).expect("connected");
    let w = Workload::all_ranges_1d(k);
    let (wg, _) = inc.transform_workload(&w).expect("transforms");
    let wg_dense = wg.to_dense_matrix();
    println!("| strategy A_G | Δ_A | E[error]/query |");
    println!("|---|---|---|");
    for (name, strat) in [
        ("identity (Algorithm 1)", identity_strategy(k - 1)),
        ("hierarchical", hierarchical_strategy(k - 1)),
        ("wavelet", wavelet_strategy(k - 1)),
    ] {
        let mm = MatrixMechanism::new(wg_dense.clone(), strat).expect("supported");
        println!(
            "| {name} | {} | {} |",
            mm.delta_a(),
            sci(mm.per_query_error(eps))
        );
    }
    println!("\nReading: after the G¹ transform the workload is (near-)identity,");
    println!("so the identity strategy wins — the polylog machinery is only");
    println!("needed BEFORE the transform. This is Section 5.2.1's point.");
}

/// (5) Hist estimators on the transformed database (the open question).
fn ablation_hist_estimators(eps: Epsilon, trials: usize) {
    println!("\n## 5. Hist under G¹: estimators on x_G (datasets D and E)\n");
    println!("| estimator | D | E |");
    println!("|---|---|---|");
    for est in [
        TreeEstimator::Laplace,
        TreeEstimator::LaplaceConsistent,
        TreeEstimator::Hierarchical,
        TreeEstimator::HierarchicalConsistent,
        TreeEstimator::Dawa,
        TreeEstimator::DawaConsistent,
    ] {
        print!("| {} |", est.name());
        for id in [DatasetId::D, DatasetId::E] {
            let x = dataset(id);
            let truth = x.counts().to_vec();
            let mut rng = StdRng::seed_from_u64(7);
            let report = measure_error(&truth, trials, |_| {
                Ok(line_blowfish_histogram(&x, eps, est, &mut rng).expect("strategy"))
            })
            .expect("trials > 0");
            print!(" {} |", sci(report.mean_mse));
        }
        println!();
    }
    println!("\nReading: consistency dominates on sparse data; the hierarchical");
    println!("variant (our extension toward the paper's open question) does not");
    println!("beat plain Laplace for per-cell error — differencing cancels the");
    println!("tree's long-range advantage — evidence the open question needs a");
    println!("genuinely different idea.");
}
