//! # blowfish-bench
//!
//! Experiment harnesses regenerating **every table and figure** of the
//! evaluation in *Haney, Machanavajjhala & Ding (VLDB 2015)*, plus
//! criterion micro-benchmarks of the underlying machinery.
//!
//! Binaries (run with `cargo run --release -p blowfish-bench --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 (dataset statistics, paper vs generated) |
//! | `fig3`   | Figure 3 (data-independent error-bound table, measured) |
//! | `fig8`   | Figure 8 (four panels at ε = 0.01 and 0.1) |
//! | `fig9`   | Figure 9 (same panels at ε = 1 and 0.001) |
//! | `fig10`  | Figure 10 (SVD lower bounds, 1-D and 2-D) |
//! | `all_experiments` | everything above in sequence |
//!
//! Each binary accepts `--trials N` and `--queries N` to trade fidelity
//! for speed; defaults follow the paper (5 trials, 10,000 queries).
//!
//! Beyond the figure reproductions, the [`simulate`] module is the
//! trace-driven workload simulator (`blowfish_simulate` bin): seeded
//! multi-tenant scenarios replayed through the engine's `Service` layer
//! and scored against exact ledger/admission/utility oracles, emitting
//! machine-readable [`SimReport`](simulate::SimReport) JSON. The
//! [`report::snapshot`] module is the shared JSON layer those reports
//! and the committed `BENCH_*.json` perf baselines both use — and the
//! `bench_gate` bin diffs fresh bench runs against the baselines in CI.

pub mod error;
pub mod experiments;
pub mod report;
pub mod simulate;

pub use error::BenchError;
pub use experiments::{
    hist_panel, measure_bench, panel_description, range1d_panel, range2d_panel, theta_panel, Config,
};
pub use report::{print_panel, print_ratio, sci, Measurement};

/// Whether quick mode (`BLOWFISH_BENCH_QUICK`) is active — benches, the
/// workload simulator, and CI steps share the criterion shim's single
/// parse site instead of each re-reading the environment.
pub use criterion::quick_mode;

/// Parses `--flag value` style overrides shared by the figure binaries.
pub fn parse_args(args: &[String]) -> ArgOverrides {
    let mut out = ArgOverrides::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.trials = Some(v);
                    i += 1;
                }
            }
            "--queries" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.queries = Some(v);
                    i += 1;
                }
            }
            "--panel" => {
                if let Some(v) = args.get(i + 1) {
                    out.panel = Some(v.clone());
                    i += 1;
                }
            }
            "--epsilon" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.epsilon = Some(v);
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parsed command-line overrides.
#[derive(Clone, Debug, Default)]
pub struct ArgOverrides {
    /// `--trials N`.
    pub trials: Option<usize>,
    /// `--queries N`.
    pub queries: Option<usize>,
    /// `--panel NAME` (figure-specific).
    pub panel: Option<String>,
    /// `--epsilon X` (replaces the default ε sweep with a single value).
    pub epsilon: Option<f64>,
}

impl ArgOverrides {
    /// Applies the overrides to a paper-default config.
    pub fn apply(&self, mut cfg: Config) -> Config {
        if let Some(t) = self.trials {
            cfg.trials = t;
        }
        if let Some(q) = self.queries {
            cfg.queries = q;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--trials", "3", "--queries", "100", "--panel", "hist"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_args(&args);
        assert_eq!(o.trials, Some(3));
        assert_eq!(o.queries, Some(100));
        assert_eq!(o.panel.as_deref(), Some("hist"));
        let cfg = o.apply(Config::paper(0.1));
        assert_eq!(cfg.trials, 3);
        assert_eq!(cfg.queries, 100);
        assert_eq!(cfg.epsilon, 0.1);
    }

    #[test]
    fn arg_parsing_ignores_unknown_and_bad_values() {
        let args: Vec<String> = ["--unknown", "--trials", "x", "--epsilon", "0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_args(&args);
        assert_eq!(o.trials, None);
        assert_eq!(o.epsilon, Some(0.5));
    }
}
