//! The bench-layer error type: every experiment harness and binary
//! propagates `Result<_, BenchError>` instead of `.expect(…)`-panicking
//! mid-run.

use blowfish_core::CoreError;
use blowfish_data::DataError;
use blowfish_engine::EngineError;
use blowfish_mechanisms::MechanismError;
use blowfish_strategies::StrategyError;

/// Errors reported by the experiment harnesses and figure binaries.
#[derive(Clone, Debug, PartialEq)]
pub enum BenchError {
    /// An error from the engine layer.
    Engine(EngineError),
    /// An error from the strategies crate.
    Strategy(StrategyError),
    /// An error from the core crate.
    Core(CoreError),
    /// An error from a mechanism substrate.
    Mechanism(MechanismError),
    /// An error from the dataset crate.
    Data(DataError),
    /// An invalid experiment configuration.
    Config {
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Engine(e) => write!(f, "engine error: {e}"),
            BenchError::Strategy(e) => write!(f, "strategy error: {e}"),
            BenchError::Core(e) => write!(f, "core error: {e}"),
            BenchError::Mechanism(e) => write!(f, "mechanism error: {e}"),
            BenchError::Data(e) => write!(f, "data error: {e}"),
            BenchError::Config { what } => write!(f, "invalid experiment config: {what}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Engine(e) => Some(e),
            BenchError::Strategy(e) => Some(e),
            BenchError::Core(e) => Some(e),
            BenchError::Mechanism(e) => Some(e),
            BenchError::Data(e) => Some(e),
            BenchError::Config { .. } => None,
        }
    }
}

impl From<EngineError> for BenchError {
    fn from(e: EngineError) -> Self {
        BenchError::Engine(e)
    }
}

impl From<StrategyError> for BenchError {
    fn from(e: StrategyError) -> Self {
        BenchError::Strategy(e)
    }
}

impl From<CoreError> for BenchError {
    fn from(e: CoreError) -> Self {
        BenchError::Core(e)
    }
}

impl From<MechanismError> for BenchError {
    fn from(e: MechanismError) -> Self {
        BenchError::Mechanism(e)
    }
}

impl From<DataError> for BenchError {
    fn from(e: DataError) -> Self {
        BenchError::Data(e)
    }
}
