//! Machine-readable run snapshots: a minimal JSON value model shared by
//! everything in this repo that emits or consumes result files — the
//! committed `BENCH_*.json` perf baselines, the fresh snapshots the
//! criterion shim writes under `BLOWFISH_BENCH_SNAPSHOT_DIR`, the
//! `bench_gate` CI regression gate that diffs the two, and the
//! [`SimReport`](crate::simulate::SimReport) JSON the workload simulator
//! emits.
//!
//! The build environment has no crates.io access (so no `serde_json`);
//! [`JsonValue`] is a small, dependency-free recursive-descent
//! parser/writer covering the full JSON grammar. Objects preserve
//! insertion order, and the writer is deterministic — two structurally
//! identical values always serialize to byte-identical text, which is
//! what lets seeded simulator runs be diffed across commits.
//!
//! Two bench-specific helpers ride on top:
//!
//! * [`extract_metrics`] pulls every `"group/id": mean_ns` pair out of a
//!   snapshot document (bench ids always contain a `/`, settings keys
//!   never do), optionally scoped to one named sub-object such as
//!   `BENCH_plan.json`'s `this_pr_ns`;
//! * [`compare_metrics`] diffs a baseline metric map against a fresh one
//!   under a slowdown factor — the pure logic behind the `bench_gate`
//!   binary, kept here so it is unit-testable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON document. Object member order is preserved (and written
/// back in the same order), so round-trips are stable.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline —
    /// deterministic (member order is preserved), diff-friendly, and in
    /// the same style as the committed `BENCH_*.json` files.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, &mut out);
        out.push('\n');
        out
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "non-ascii \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by any snapshot
                        // this repo writes; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn write_value(value: &JsonValue, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        JsonValue::Num(n) => write_number(*n, out),
        JsonValue::Str(s) => write_string(s, out),
        JsonValue::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner);
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        JsonValue::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, member)) in members.iter().enumerate() {
                out.push_str(&inner);
                write_string(key, out);
                out.push_str(": ");
                write_value(member, indent + 1, out);
                out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// JSON has no NaN/±inf; they serialize as `null` (and a deterministic
/// report should never contain them anyway — scoring uses `Option`).
fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Collects every `"group/id": number` metric in a snapshot document.
/// Bench ids always contain a `/` (e.g. `engine/answer_10k_ranges`),
/// settings and derived keys never do — that is the extraction rule.
/// With `within`, extraction is scoped to the first object found under
/// that key (searched recursively), so multi-section baselines like
/// `BENCH_plan.json` (`pr2_baseline_ns` vs `this_pr_ns`) can name which
/// section is the commitment.
pub fn extract_metrics(doc: &JsonValue, within: Option<&str>) -> BTreeMap<String, f64> {
    let root = match within {
        Some(key) => match find_key(doc, key) {
            Some(v) => v,
            None => return BTreeMap::new(),
        },
        None => doc,
    };
    let mut out = BTreeMap::new();
    collect_metrics(root, &mut out);
    out
}

fn find_key<'a>(value: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    match value {
        JsonValue::Obj(members) => {
            if let Some(v) = value.get(key) {
                return Some(v);
            }
            members.iter().find_map(|(_, v)| find_key(v, key))
        }
        JsonValue::Arr(items) => items.iter().find_map(|v| find_key(v, key)),
        _ => None,
    }
}

fn collect_metrics(value: &JsonValue, out: &mut BTreeMap<String, f64>) {
    match value {
        JsonValue::Obj(members) => {
            for (key, member) in members {
                match member {
                    JsonValue::Num(n) if key.contains('/') => {
                        out.insert(key.clone(), *n);
                    }
                    _ => collect_metrics(member, out),
                }
            }
        }
        JsonValue::Arr(items) => {
            for item in items {
                collect_metrics(item, out);
            }
        }
        _ => {}
    }
}

/// One metric whose fresh mean exceeded the allowed slowdown factor.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Full bench id (`group/name/param`).
    pub id: String,
    /// Committed baseline mean, ns/iter.
    pub baseline_ns: f64,
    /// Freshly measured mean, ns/iter.
    pub fresh_ns: f64,
    /// `fresh / baseline`.
    pub ratio: f64,
}

/// Outcome of diffing a fresh metric map against a committed baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Comparison {
    /// Metrics present in both maps and actually compared.
    pub compared: usize,
    /// Baseline metrics absent from the fresh run (informational — a
    /// renamed bench shows up here, not as a silent pass).
    pub missing: Vec<String>,
    /// Metrics skipped because the baseline mean was below the noise
    /// floor (`min_ns`).
    pub below_floor: Vec<String>,
    /// Metrics whose fresh mean exceeded `factor × baseline`, sorted by
    /// descending ratio.
    pub regressions: Vec<Regression>,
}

/// Diffs `fresh` against `baseline`: any metric whose fresh mean exceeds
/// `factor × baseline` is a regression. Speedups never fail. Metrics with
/// a baseline below `min_ns` are skipped — sub-noise-floor timings from
/// quick-mode runs cannot carry a meaningful ratio.
pub fn compare_metrics(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    factor: f64,
    min_ns: f64,
) -> Comparison {
    let mut cmp = Comparison::default();
    for (id, &base) in baseline {
        let Some(&now) = fresh.get(id) else {
            cmp.missing.push(id.clone());
            continue;
        };
        if base < min_ns {
            cmp.below_floor.push(id.clone());
            continue;
        }
        cmp.compared += 1;
        if now > factor * base {
            cmp.regressions.push(Regression {
                id: id.clone(),
                baseline_ns: base,
                fresh_ns: now,
                ratio: now / base,
            });
        }
    }
    cmp.regressions
        .sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratios"));
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_rewrites_round_trip() {
        let text = r#"{
  "bench": "engine",
  "nested": { "a/b": 1.5, "k": 512, "deep": [ { "c/d/8": 3e2 } ] },
  "flags": [true, false, null],
  "label": "θ-line \"quoted\" A"
}"#;
        let doc = JsonValue::parse(text).unwrap();
        assert_eq!(doc.get("bench").and_then(JsonValue::as_str), Some("engine"));
        assert_eq!(
            doc.get("label").and_then(JsonValue::as_str),
            Some("θ-line \"quoted\" A")
        );
        // Round trip: pretty → parse → identical value.
        let pretty = doc.to_pretty();
        assert_eq!(JsonValue::parse(&pretty).unwrap(), doc);
        // Writing twice is byte-identical (determinism).
        assert_eq!(pretty, JsonValue::parse(&pretty).unwrap().to_pretty());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("{\"a\": 1} extra").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("1.2.3").is_err());
    }

    #[test]
    fn extracts_slash_keyed_metrics_recursively() {
        let text = r#"{
  "settings": { "k": 512, "theta": 4 },
  "results_ns_per_iter": { "engine/fit/512": 100.0, "engine/plan/512": 200.0 },
  "environments": [ { "results": { "service/fit_512_serial": 300.0 } } ]
}"#;
        let doc = JsonValue::parse(text).unwrap();
        let metrics = extract_metrics(&doc, None);
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics["engine/fit/512"], 100.0);
        assert_eq!(metrics["service/fit_512_serial"], 300.0);
        // `k`/`theta` (no slash) are not metrics.
        assert!(!metrics.contains_key("k"));
    }

    #[test]
    fn extraction_scopes_to_a_named_section() {
        let text = r#"{
  "pr2_baseline_ns": { "engine/fit/512": 999.0 },
  "this_pr_ns": { "engine/fit/512": 100.0 }
}"#;
        let doc = JsonValue::parse(text).unwrap();
        let scoped = extract_metrics(&doc, Some("this_pr_ns"));
        assert_eq!(scoped["engine/fit/512"], 100.0);
        assert!(extract_metrics(&doc, Some("no_such_section")).is_empty());
    }

    #[test]
    fn committed_baselines_parse_and_yield_metrics() {
        // The real committed snapshots must stay consumable by the gate.
        for (file, within, expect_at_least) in [
            ("../../BENCH_engine.json", None, 8),
            ("../../BENCH_plan.json", Some("this_pr_ns"), 8),
            ("../../BENCH_service.json", None, 4),
        ] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(file);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let doc =
                JsonValue::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
            let metrics = extract_metrics(&doc, within);
            assert!(
                metrics.len() >= expect_at_least,
                "{file}: got {} metrics",
                metrics.len()
            );
            assert!(metrics.values().all(|v| v.is_finite() && *v > 0.0));
        }
    }

    #[test]
    fn comparison_flags_slowdowns_not_speedups() {
        let baseline: BTreeMap<String, f64> = [
            ("a/fast".to_string(), 100.0),
            ("a/slow".to_string(), 100.0),
            ("a/tiny".to_string(), 5.0),
            ("a/gone".to_string(), 100.0),
        ]
        .into();
        let fresh: BTreeMap<String, f64> = [
            ("a/fast".to_string(), 20.0),  // 5x speedup: fine
            ("a/slow".to_string(), 450.0), // 4.5x slowdown: regression
            ("a/tiny".to_string(), 500.0), // below floor: skipped
        ]
        .into();
        let cmp = compare_metrics(&baseline, &fresh, 3.0, 50.0);
        assert_eq!(cmp.compared, 2);
        assert_eq!(cmp.missing, vec!["a/gone".to_string()]);
        assert_eq!(cmp.below_floor, vec!["a/tiny".to_string()]);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].id, "a/slow");
        assert!((cmp.regressions[0].ratio - 4.5).abs() < 1e-12);
        // At exactly the factor boundary nothing fires.
        let at_boundary: BTreeMap<String, f64> = [("a/slow".to_string(), 300.0)].into();
        assert!(compare_metrics(&baseline, &at_boundary, 3.0, 0.0)
            .regressions
            .is_empty());
    }
}
