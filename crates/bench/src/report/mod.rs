//! Markdown/console reporting helpers for the experiment harnesses, plus
//! the machine-readable [`snapshot`] layer shared by the committed
//! `BENCH_*.json` baselines, the CI bench-regression gate, and the
//! `blowfish_simulate` run reports.

pub mod snapshot;

/// One measured cell of an experiment panel.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Column label (dataset or domain size).
    pub column: String,
    /// Algorithm (series) label.
    pub algorithm: String,
    /// Mean squared error per query, averaged over trials.
    pub mse: f64,
    /// Standard deviation of the per-trial MSE.
    pub std: f64,
}

/// Formats a value in short scientific notation (the paper's axes are
/// log-scale, so 3 significant digits is plenty).
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if !v.is_finite() {
        return format!("{v}");
    }
    let exp = v.abs().log10().floor() as i32;
    let mant = v / 10f64.powi(exp);
    format!("{mant:.2}e{exp}")
}

/// Prints a panel as a markdown table: algorithms as rows, columns as
/// datasets/sizes — mirroring the bar groups of Figures 8/9.
pub fn print_panel(title: &str, columns: &[String], rows: &[Measurement]) {
    println!("\n### {title}\n");
    let algorithms: Vec<String> = {
        let mut seen = Vec::new();
        for m in rows {
            if !seen.contains(&m.algorithm) {
                seen.push(m.algorithm.clone());
            }
        }
        seen
    };
    print!("| algorithm |");
    for c in columns {
        print!(" {c} |");
    }
    println!();
    print!("|---|");
    for _ in columns {
        print!("---|");
    }
    println!();
    for a in &algorithms {
        print!("| {a} |");
        for c in columns {
            let cell = rows
                .iter()
                .find(|m| &m.algorithm == a && &m.column == c)
                .map(|m| sci(m.mse))
                .unwrap_or_else(|| "-".to_string());
            print!(" {cell} |");
        }
        println!();
    }
}

/// Prints a free-form comparison line (winner + factor), the "shape"
/// summary EXPERIMENTS.md records.
pub fn print_ratio(label: &str, a_name: &str, a: f64, b_name: &str, b: f64) {
    if a <= b {
        println!(
            "  {label}: {a_name} wins by {:.1}x ({} vs {})",
            b / a,
            sci(a),
            sci(b)
        );
    } else {
        println!(
            "  {label}: {b_name} wins by {:.1}x ({} vs {})",
            a / b,
            sci(b),
            sci(a)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1234.0), "1.23e3");
        assert_eq!(sci(0.00456), "4.56e-3");
        assert_eq!(sci(1.0), "1.00e0");
    }

    #[test]
    fn print_panel_smoke() {
        let rows = vec![
            Measurement {
                column: "A".into(),
                algorithm: "Laplace".into(),
                mse: 10.0,
                std: 1.0,
            },
            Measurement {
                column: "B".into(),
                algorithm: "Laplace".into(),
                mse: 20.0,
                std: 2.0,
            },
        ];
        // Just ensure it does not panic with missing cells.
        print_panel("test", &["A".into(), "B".into(), "C".into()], &rows);
        print_ratio("x", "a", 1.0, "b", 10.0);
        print_ratio("x", "a", 10.0, "b", 1.0);
    }
}
