//! Composing a custom simulation scenario from the orthogonal axes and
//! scoring it — the programmatic face of the `blowfish_simulate` bin.
//!
//! ```text
//! cargo run --release -p blowfish-bench --example simulate_scenario
//! ```
//!
//! Six tenants mix three policy families under bursty arrivals and a
//! two-tier budget population; the run asserts every gate held (ledger
//! reconciliation, oracle-exact admissions) and prints the report JSON.

use blowfish_bench::simulate::{run, ArrivalPattern, PolicyFamily, Scenario, SpecChoice};
use blowfish_core::{BudgetDistribution, QueryMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario {
        name: "example-burst".to_string(),
        description: "6 tenants, tiered budgets, bursty arrivals".to_string(),
        seed: 42,
        tenants: 6,
        policies: vec![
            PolicyFamily::Line,
            PolicyFamily::ThetaLine { theta: 3 },
            PolicyFamily::Tree,
        ],
        domain_1d: 96,
        grid_k: 8,
        scale: 30_000,
        eps: 0.4,
        budget: BudgetDistribution::Tiered {
            low: 8.0,
            high: 80.0,
            high_every: 3,
        },
        requests: 900,
        fit_fraction: 0.5,
        queries_per_answer: 12,
        mix: QueryMix::balanced(),
        arrival: ArrivalPattern::Bursty { burst: 4 },
        specs: SpecChoice::ClosedForm,
    };

    let report = run(&scenario)?;
    println!("{}", report.to_json());

    // Every tenant's ledger reconciles bit-for-bit and admissions match
    // the analytic oracle, or run() would have recorded violations.
    assert!(report.passed(), "violations: {:#?}", report.violations);
    // The tight low-tier tenants must actually hit their budget walls.
    let rejected: usize = report.tenants.iter().map(|t| t.fits_rejected).sum();
    assert!(rejected > 0, "tiered budgets should exhaust the low tier");
    // Deterministic: rerunning the same seed reproduces the same report.
    assert_eq!(
        report.deterministic_json(),
        run(&scenario)?.deterministic_json()
    );
    println!("example scenario passed every gate ({rejected} fits budget-rejected)");
    Ok(())
}
