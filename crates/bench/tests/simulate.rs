//! End-to-end guarantees of the trace simulator:
//!
//! * **seeded round-trip** — the same seed produces a byte-identical
//!   trace (Debug rendering covers every tenant field and request) and
//!   an f64-identical deterministic `SimReport`, run to run and service
//!   to service;
//! * **acceptance trace** — a ≥ 1k-request, ≥ 4-tenant, mixed-policy
//!   trace replays deterministically with the ledger reconciling exactly
//!   and zero gate violations;
//! * **ledger reconciliation property** — for *any* generated scenario
//!   in a randomized family (tenant counts, budgets, fit fractions,
//!   arrival patterns), every tenant's ledger spend equals the fold of
//!   its fit receipts bit-for-bit, admissions match the analytic oracle
//!   exactly, and uniform-ε tenants reject precisely past ⌊budget/ε⌋.

use blowfish_bench::simulate::{
    generate, run, score, ArrivalPattern, PolicyFamily, Scenario, SpecChoice,
};
use blowfish_core::{BudgetDistribution, QueryMix};
use proptest::prelude::*;

/// A small randomized scenario family for the property tests: cheap
/// enough to replay dozens of cases, varied enough to exercise every
/// arrival pattern, both spec choices, and budgets from starved to ample.
fn small_scenario(
    seed: u64,
    tenants: usize,
    budget: f64,
    fit_fraction: f64,
    arrival_pick: u8,
    planner: bool,
) -> Scenario {
    Scenario {
        name: format!("prop-{seed}-{tenants}"),
        description: "randomized property-test scenario".to_string(),
        seed,
        tenants,
        policies: vec![
            PolicyFamily::Line,
            PolicyFamily::ThetaLine { theta: 2 },
            PolicyFamily::Tree,
        ],
        domain_1d: 24,
        grid_k: 6,
        scale: 2_000,
        eps: 0.5,
        budget: BudgetDistribution::Fixed(budget),
        requests: 120.max(tenants),
        fit_fraction,
        queries_per_answer: 4,
        mix: QueryMix::balanced(),
        arrival: match arrival_pick % 3 {
            0 => ArrivalPattern::Uniform,
            1 => ArrivalPattern::Bursty { burst: 3 },
            _ => ArrivalPattern::HotKey { skew: 1.1 },
        },
        specs: if planner {
            SpecChoice::Planner
        } else {
            SpecChoice::ClosedForm
        },
    }
}

#[test]
fn same_seed_means_byte_identical_trace_and_report() {
    let scenario = Scenario::find("smoke-mixed").expect("canned scenario");
    // Trace level: byte-identical (Debug covers every field).
    let a = generate(&scenario).unwrap();
    let b = generate(&scenario).unwrap();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    // Report level: two replays of that one trace against two fresh
    // services are f64-identical in the deterministic section…
    let ra = score(&scenario, &a).unwrap();
    let rb = score(&scenario, &b).unwrap();
    assert_eq!(ra.deterministic_json(), rb.deterministic_json());
    // …and so are full end-to-end runs.
    assert_eq!(
        run(&scenario).unwrap().deterministic_json(),
        run(&scenario).unwrap().deterministic_json()
    );
    // A different seed changes the trace.
    let mut other = scenario.clone();
    other.seed += 1;
    assert_ne!(
        run(&other).unwrap().deterministic_json(),
        ra.deterministic_json()
    );
}

#[test]
fn acceptance_trace_is_big_mixed_and_clean() {
    // The PR's acceptance shape: ≥ 1k requests, ≥ 4 tenants, mixed
    // policies, deterministic replay, exact ledger reconciliation.
    let scenario = Scenario::find("smoke-mixed").expect("canned scenario");
    assert!(scenario.requests >= 1000);
    assert!(scenario.tenants >= 4);
    let families: std::collections::HashSet<String> = (0..scenario.tenants)
        .map(|t| scenario.family(t).label())
        .collect();
    assert!(families.len() >= 2, "mixed-policy trace required");
    let trace = generate(&scenario).unwrap();
    let report = score(&scenario, &trace).unwrap();
    assert!(report.passed(), "{:#?}", report.violations);
    // Every fit request in the trace is accounted for in the report.
    let fits_requested: usize = report.tenants.iter().map(|t| t.fits_requested).sum();
    assert_eq!(fits_requested, trace.fit_count());
    for t in &report.tenants {
        assert_eq!(t.spent, t.receipt_sum, "{}: exact reconciliation", t.id);
        assert_eq!(t.fits_admitted, t.expected_admitted, "{}", t.id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_generated_trace_reconciles_ledger_to_receipts(
        seed in 0u64..1_000_000,
        tenants in 1usize..7,
        budget in 0.3f64..40.0,
        fit_fraction in 0.1f64..1.0,
        arrival_pick in 0u8..3,
        planner_pick in 0u8..2,
    ) {
        let planner = planner_pick == 1;
        let scenario = small_scenario(seed, tenants, budget, fit_fraction, arrival_pick, planner);
        let report = run(&scenario).expect("simulation runs");
        prop_assert!(report.passed(), "violations: {:#?}", report.violations);
        for t in &report.tenants {
            // Bitwise ledger reconciliation: same additions, same order.
            prop_assert_eq!(t.spent, t.receipt_sum);
            prop_assert_eq!(t.fits_admitted, t.expected_admitted);
            prop_assert_eq!(t.fits_admitted + t.fits_rejected, t.fits_requested);
            prop_assert!(t.remaining >= 0.0);
            prop_assert!(t.spent <= t.budget + 1e-9 + 1e-12 * t.budget);
            // Uniform per-fit ε: rejections begin exactly at ⌊budget/ε⌋.
            let charge = if planner { t.eps } else {
                // ClosedForm: line tenants charge ε, others (baseline) ε/2.
                if t.policy == "line" { t.eps } else { t.eps / 2.0 }
            };
            let floor = (t.budget / charge).floor() as usize;
            prop_assert_eq!(t.fits_admitted, floor.min(t.fits_requested));
        }
    }
}
