//! Compressed sparse row (CSR) matrices.
//!
//! Policy-graph incidence matrices `P_G` and transformed workloads `W_G` are
//! extremely sparse (two nonzeros per column for `P_G`, boundary-edge
//! patterns for range queries), so the core crate stores them in CSR form
//! and only densifies for the small lower-bound eigenproblems.
//!
//! ## Layout and invariants
//!
//! [`SparseMatrix`] is classic three-array CSR: `indptr` (length
//! `rows + 1`), `indices` (column of each stored value, ascending within a
//! row), and `values`. Matrices are assembled through [`TripletBuilder`],
//! which accepts `(row, col, value)` pushes in any order — including
//! repeats of the same coordinate — and canonicalizes on
//! [`TripletBuilder::build`]: duplicates are summed, and entries whose sum
//! is exactly `0.0` are dropped, so structural equality (`PartialEq`)
//! means numerical equality. This is what lets incidence assembly push one
//! triplet per edge endpoint without pre-deduping.
//!
//! ## Kernels
//!
//! Everything on the plan-derivation hot path is O(nnz) per application:
//! [`SparseMatrix::matvec`] / [`SparseMatrix::matvec_transpose`] (plus
//! allocation-free `_into` variants for solver inner loops),
//! [`SparseMatrix::col_sq_norms`] (the diagonal of `AᵀA`, the Jacobi
//! preconditioner for normal-equation CG), and [`SparseMatrix::max_col_l1`]
//! (the L1 sensitivity `Δ_A`). [`SparseMatrix::gram`] materializes `AᵀA`
//! as CSR and costs O(Σᵢ nnz(rowᵢ)²) — fine for bounded-row-degree inputs
//! like incidence matrices, but a dense trap for strategies with a full
//! row (e.g. the hierarchical root); solvers that only need `AᵀA x`
//! should stay matrix-free via the paired `matvec`/`matvec_transpose`
//! ([`crate::solve_normal_equations`] does exactly this).

use crate::dense::Matrix;
use crate::LinalgError;

/// A builder collecting `(row, col, value)` triplets before compression.
#[derive(Clone, Debug, Default)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`. Duplicate coordinates are summed on
    /// compression.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of (uncompressed) entries collected so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been collected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses the triplets into a CSR matrix, summing duplicate
    /// `(row, col)` coordinates and dropping entries whose sum is exactly
    /// `0.0`, so the result is canonical: sorted column indices per row,
    /// at most one stored value per coordinate, and no explicit zeros.
    pub fn build(mut self) -> SparseMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        indptr.push(0);
        let mut current_row = 0usize;
        let mut i = 0usize;
        let entries = &self.entries;
        while i < entries.len() {
            let (r, c, _) = entries[i];
            // Sum the run of triplets sharing this (row, col) coordinate.
            let mut sum = 0.0;
            while i < entries.len() && entries[i].0 == r && entries[i].1 == c {
                sum += entries[i].2;
                i += 1;
            }
            if sum == 0.0 {
                continue; // duplicates cancelled exactly — keep CSR canonical
            }
            while current_row < r {
                indptr.push(indices.len());
                current_row += 1;
            }
            indices.push(c);
            values.push(sum);
        }
        while current_row < self.rows {
            indptr.push(indices.len());
            current_row += 1;
        }
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }
}

/// A CSR sparse matrix of `f64` values.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices of nonzeros, row by row.
    indices: Vec<usize>,
    /// Nonzero values aligned with `indices`.
    values: Vec<f64>,
}

impl SparseMatrix {
    /// An empty (all-zero) `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        TripletBuilder::new(rows, cols).build()
    }

    /// Sparse identity of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 1.0);
        }
        b.build()
    }

    /// Builds from per-row `(col, value)` lists.
    pub fn from_row_lists(cols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        let mut b = TripletBuilder::new(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            for &(j, v) in row {
                b.push(i, j, v);
            }
        }
        b.build()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over the `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of nonzeros in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Reads entry `(i, j)` (O(row nnz)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i).find(|&(c, _)| c == j).map_or(0.0, |(_, v)| v)
    }

    /// Sparse matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, v) in self.row(i) {
                acc += v * x[j];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Transposed product `self^T * x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, v) in self.row(i) {
                y[j] += v * xi;
            }
        }
        Ok(y)
    }

    /// Allocation-free `self * x`, writing into `y` (`y.len() == rows`).
    ///
    /// The workhorse of iterative solvers: CG calls this once per
    /// iteration, so the buffers are caller-owned and reused.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, self.rows),
                got: (x.len(), y.len()),
            });
        }
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, v) in self.row(i) {
                acc += v * x[j];
            }
            *yi = acc;
        }
        Ok(())
    }

    /// Allocation-free `self^T * x`, writing into `y` (`y.len() == cols`).
    pub fn matvec_transpose_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, self.cols),
                got: (x.len(), y.len()),
            });
        }
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, v) in self.row(i) {
                y[j] += v * xi;
            }
        }
        Ok(())
    }

    /// The Gram matrix `AᵀA` as CSR.
    ///
    /// Assembled row-by-row from the outer products of `A`'s rows, so the
    /// cost is O(Σᵢ nnz(rowᵢ)²) triplets. That is O(nnz) for
    /// bounded-row-degree inputs (incidence matrices, θ-spanner rows), but
    /// a strategy with one dense row (the hierarchical root, the Haar
    /// total row) makes `AᵀA` itself dense — for those, apply the normal
    /// equations matrix-free via [`crate::solve_normal_equations`]
    /// instead of materializing this product.
    pub fn gram(&self) -> SparseMatrix {
        let mut b = TripletBuilder::new(self.cols, self.cols);
        for i in 0..self.rows {
            for (j1, v1) in self.row(i) {
                for (j2, v2) in self.row(i) {
                    b.push(j1, j2, v1 * v2);
                }
            }
        }
        b.build()
    }

    /// Per-column squared L2 norms — the diagonal of `AᵀA`, computed in
    /// O(nnz) without materializing the Gram matrix. This is the Jacobi
    /// preconditioner for normal-equation CG.
    pub fn col_sq_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                norms[j] += v * v;
            }
        }
        norms
    }

    /// Fraction of entries stored: `nnz / (rows * cols)` (0 for an empty
    /// shape). The engine's plan-path chooser keys off this.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Largest entry magnitude (0 for a matrix with no stored entries).
    pub fn max_abs(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for (_, v) in self.row(i) {
                m = m.max(v.abs());
            }
        }
        m
    }

    /// A copy with every entry of magnitude ≤ `tol` dropped from the
    /// stored pattern.
    ///
    /// Sparse products of structurally-cancelling operands (e.g. a
    /// dyadic strategy times a Haar basis, where whole wavelet columns
    /// sum to zero across a row's support) leave rounding residue at
    /// entries that are mathematically zero: partial sums `m·x` round
    /// for non-power-of-two `m`, so the cancellation comes back as
    /// ~1e-13 instead of 0.0. Those phantom entries are numerically
    /// irrelevant but **structurally ruinous** — they densify the
    /// product's Gram and break the chordal zero-fill pattern a
    /// downstream sparse Cholesky depends on. Callers prune with a
    /// tolerance well below the smallest true entry (see
    /// `GramSolver::plan`).
    pub fn dropping_below(&self, tol: f64) -> SparseMatrix {
        // Filtering preserves the canonical CSR order: assemble directly.
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                if v.abs() > tol {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Transpose as a new CSR matrix (counting pass, no triplet sort: a
    /// CSR walk emits each output row's columns in ascending order).
    pub fn transpose(&self) -> SparseMatrix {
        let nnz = self.nnz();
        let mut indptr = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            indptr[j + 1] += 1;
        }
        for j in 0..self.cols {
            indptr[j + 1] += indptr[j];
        }
        let mut next = indptr.clone();
        let mut indices = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                let slot = next[j];
                indices[slot] = i;
                values[slot] = v;
                next[j] += 1;
            }
        }
        SparseMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Sparse-sparse product `self * other` (CSR x CSR -> CSR).
    pub fn matmul(&self, other: &SparseMatrix) -> Result<SparseMatrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, self.cols),
                got: (other.rows, other.cols),
            });
        }
        // Sparse accumulation per output row; each row's touched set is
        // sorted locally and appended, so no global triplet sort.
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        let mut acc: Vec<f64> = vec![0.0; other.cols];
        let mut occupied: Vec<bool> = vec![false; other.cols];
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..self.rows {
            for (k, v) in self.row(i) {
                for (j, w) in other.row(k) {
                    if !occupied[j] {
                        occupied[j] = true;
                        touched.push(j);
                    }
                    acc[j] += v * w;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                if acc[j] != 0.0 {
                    indices.push(j);
                    values.push(acc[j]);
                }
                acc[j] = 0.0;
                occupied[j] = false;
            }
            touched.clear();
            indptr.push(indices.len());
        }
        Ok(SparseMatrix {
            rows: self.rows,
            cols: other.cols,
            indptr,
            indices,
            values,
        })
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Builds a CSR matrix from a dense one, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> SparseMatrix {
        let mut b = TripletBuilder::new(m.rows(), m.cols());
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    /// Maximum column L1 norm (the unbounded-DP sensitivity of the matrix
    /// viewed as a query workload).
    pub fn max_col_l1(&self) -> f64 {
        let mut norms = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                norms[j] += v.abs();
            }
        }
        norms.into_iter().fold(0.0_f64, f64::max)
    }

    /// Per-column L1 norms.
    pub fn col_l1_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                norms[j] += v.abs();
            }
        }
        norms
    }

    /// Scales all values by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(2, 0, 3.0);
        b.push(2, 1, 4.0);
        b.build()
    }

    #[test]
    fn build_and_get() {
        let m = small();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(1, 1);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.5);
        let m = b.build();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn duplicates_are_summed_across_interleaved_pushes() {
        // Pushes arrive out of order and interleaved with other
        // coordinates (the incidence-assembly pattern: one triplet per
        // edge endpoint, no pre-deduping).
        let mut b = TripletBuilder::new(3, 3);
        b.push(2, 1, 1.0);
        b.push(0, 2, 4.0);
        b.push(2, 1, 2.0);
        b.push(1, 1, 7.0);
        b.push(2, 1, 3.0);
        b.push(0, 2, -1.0);
        let m = b.build();
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 1), 7.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn same_column_different_rows_never_merge() {
        let mut b = TripletBuilder::new(3, 1);
        b.push(0, 0, 1.0);
        b.push(2, 0, 5.0);
        let m = b.build();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn exact_cancellation_drops_the_entry() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.5);
        b.push(0, 0, -1.5);
        b.push(1, 1, 2.0);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.row_nnz(0), 0);
        // Canonical form: a cancelled build equals a never-pushed build.
        let mut b2 = TripletBuilder::new(2, 2);
        b2.push(1, 1, 2.0);
        assert_eq!(m, b2.build());
    }

    #[test]
    fn matvec_and_transpose() {
        let m = small();
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 0.0, 7.0]);
        let yt = m.matvec_transpose(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(yt, vec![4.0, 4.0, 2.0]);
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        // (M^T)^T == M
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_dense() {
        let m = small();
        let p = m.matmul(&m.transpose()).unwrap();
        let dense = m.to_dense();
        let expected = dense.matmul(&dense.transpose()).unwrap();
        assert!(p.to_dense().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn max_abs_and_dropping_below() {
        let mut b = TripletBuilder::new(2, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, -4.0);
        b.push(1, 1, 1e-13);
        b.push(1, 2, -2e-13);
        let m = b.build();
        assert_eq!(m.max_abs(), 4.0);
        let pruned = m.dropping_below(1e-10);
        assert_eq!(pruned.nnz(), 2);
        assert_eq!(pruned.rows(), 2);
        assert_eq!(pruned.cols(), 3);
        assert_eq!(pruned.get(0, 0), 1.0);
        assert_eq!(pruned.get(0, 2), -4.0);
        assert_eq!(pruned.get(1, 1), 0.0);
        // Canonical CSR out: round-trips through dense unchanged.
        assert_eq!(SparseMatrix::from_dense(&pruned.to_dense()), pruned);
        assert_eq!(SparseMatrix::zeros(2, 2).max_abs(), 0.0);
        // tol = 0 keeps every stored entry.
        assert_eq!(m.dropping_below(0.0), m);
    }

    #[test]
    fn dense_roundtrip() {
        let m = small();
        let rt = SparseMatrix::from_dense(&m.to_dense());
        assert_eq!(rt, m);
    }

    #[test]
    fn identity_matvec() {
        let i = SparseMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x).unwrap(), x);
    }

    #[test]
    fn col_norms() {
        let m = small();
        assert_eq!(m.col_l1_norms(), vec![4.0, 4.0, 2.0]);
        assert_eq!(m.max_col_l1(), 4.0);
    }

    #[test]
    fn shape_errors() {
        let m = small();
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_transpose(&[1.0]).is_err());
        assert!(m.matmul(&SparseMatrix::identity(2)).is_err());
    }

    #[test]
    fn scale() {
        let mut m = small();
        m.scale_mut(2.0);
        assert_eq!(m.get(2, 1), 8.0);
    }

    #[test]
    fn matvec_into_matches_allocating_kernels() {
        let m = small();
        let x = [1.0, -2.0, 3.0];
        let mut y = vec![0.0; 3];
        m.matvec_into(&x, &mut y).unwrap();
        assert_eq!(y, m.matvec(&x).unwrap());
        let mut yt = vec![7.0; 3]; // stale contents must be overwritten
        m.matvec_transpose_into(&x, &mut yt).unwrap();
        assert_eq!(yt, m.matvec_transpose(&x).unwrap());
        assert!(m.matvec_into(&x, &mut [0.0; 2]).is_err());
        assert!(m.matvec_transpose_into(&[1.0], &mut yt).is_err());
    }

    #[test]
    fn gram_matches_dense_reference() {
        let m = small();
        let dense = m.to_dense();
        let expected = dense.transpose().matmul(&dense).unwrap();
        assert!(m.gram().to_dense().approx_eq(&expected, 1e-12));
        // gram of a matrix with an empty row/col stays consistent.
        let g = m.gram();
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 3);
    }

    #[test]
    fn col_sq_norms_is_gram_diagonal() {
        let m = small();
        let g = m.gram();
        let sq = m.col_sq_norms();
        for (j, &s) in sq.iter().enumerate() {
            assert!((g.get(j, j) - s).abs() < 1e-12);
        }
        assert_eq!(sq, vec![10.0, 16.0, 4.0]);
    }

    #[test]
    fn density_reports_fill_fraction() {
        assert_eq!(small().density(), 4.0 / 9.0);
        assert_eq!(SparseMatrix::zeros(0, 5).density(), 0.0);
        assert_eq!(SparseMatrix::identity(8).density(), 1.0 / 8.0);
    }
}
