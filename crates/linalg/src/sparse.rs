//! Compressed sparse row (CSR) matrices.
//!
//! Policy-graph incidence matrices `P_G` and transformed workloads `W_G` are
//! extremely sparse (two nonzeros per column for `P_G`, boundary-edge
//! patterns for range queries), so the core crate stores them in CSR form
//! and only densifies for the small lower-bound eigenproblems.

use crate::dense::Matrix;
use crate::LinalgError;

/// A builder collecting `(row, col, value)` triplets before compression.
#[derive(Clone, Debug, Default)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`. Duplicate coordinates are summed on
    /// compression.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of (uncompressed) entries collected so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been collected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses the triplets into a CSR matrix, summing duplicates.
    pub fn build(mut self) -> SparseMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        indptr.push(0);
        let mut current_row = 0usize;
        for (r, c, v) in self.entries {
            while current_row < r {
                indptr.push(indices.len());
                current_row += 1;
            }
            if let (Some(&last_c), Some(last_v)) = (indices.last(), values.last_mut()) {
                if indices.len() > *indptr.last().unwrap() && last_c == c {
                    *last_v += v;
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
        }
        while current_row < self.rows {
            indptr.push(indices.len());
            current_row += 1;
        }
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }
}

/// A CSR sparse matrix of `f64` values.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices of nonzeros, row by row.
    indices: Vec<usize>,
    /// Nonzero values aligned with `indices`.
    values: Vec<f64>,
}

impl SparseMatrix {
    /// An empty (all-zero) `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        TripletBuilder::new(rows, cols).build()
    }

    /// Sparse identity of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 1.0);
        }
        b.build()
    }

    /// Builds from per-row `(col, value)` lists.
    pub fn from_row_lists(cols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        let mut b = TripletBuilder::new(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            for &(j, v) in row {
                b.push(i, j, v);
            }
        }
        b.build()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over the `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of nonzeros in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Reads entry `(i, j)` (O(row nnz)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i).find(|&(c, _)| c == j).map_or(0.0, |(_, v)| v)
    }

    /// Sparse matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, v) in self.row(i) {
                acc += v * x[j];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Transposed product `self^T * x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, v) in self.row(i) {
                y[j] += v * xi;
            }
        }
        Ok(y)
    }

    /// Transpose as a new CSR matrix.
    pub fn transpose(&self) -> SparseMatrix {
        let mut b = TripletBuilder::new(self.cols, self.rows);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                b.push(j, i, v);
            }
        }
        b.build()
    }

    /// Sparse-sparse product `self * other` (CSR x CSR -> CSR).
    pub fn matmul(&self, other: &SparseMatrix) -> Result<SparseMatrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, self.cols),
                got: (other.rows, other.cols),
            });
        }
        let mut b = TripletBuilder::new(self.rows, other.cols);
        // Scratch accumulator per output row (sparse accumulation pattern).
        let mut acc: Vec<f64> = vec![0.0; other.cols];
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..self.rows {
            for (k, v) in self.row(i) {
                for (j, w) in other.row(k) {
                    if acc[j] == 0.0 {
                        touched.push(j);
                    }
                    acc[j] += v * w;
                }
            }
            for &j in &touched {
                if acc[j] != 0.0 {
                    b.push(i, j, acc[j]);
                }
                acc[j] = 0.0;
            }
            touched.clear();
        }
        Ok(b.build())
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Builds a CSR matrix from a dense one, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> SparseMatrix {
        let mut b = TripletBuilder::new(m.rows(), m.cols());
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    /// Maximum column L1 norm (the unbounded-DP sensitivity of the matrix
    /// viewed as a query workload).
    pub fn max_col_l1(&self) -> f64 {
        let mut norms = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                norms[j] += v.abs();
            }
        }
        norms.into_iter().fold(0.0_f64, f64::max)
    }

    /// Per-column L1 norms.
    pub fn col_l1_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                norms[j] += v.abs();
            }
        }
        norms
    }

    /// Scales all values by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(2, 0, 3.0);
        b.push(2, 1, 4.0);
        b.build()
    }

    #[test]
    fn build_and_get() {
        let m = small();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(1, 1);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.5);
        let m = b.build();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = small();
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 0.0, 7.0]);
        let yt = m.matvec_transpose(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(yt, vec![4.0, 4.0, 2.0]);
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        // (M^T)^T == M
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_dense() {
        let m = small();
        let p = m.matmul(&m.transpose()).unwrap();
        let dense = m.to_dense();
        let expected = dense.matmul(&dense.transpose()).unwrap();
        assert!(p.to_dense().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn dense_roundtrip() {
        let m = small();
        let rt = SparseMatrix::from_dense(&m.to_dense());
        assert_eq!(rt, m);
    }

    #[test]
    fn identity_matvec() {
        let i = SparseMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x).unwrap(), x);
    }

    #[test]
    fn col_norms() {
        let m = small();
        assert_eq!(m.col_l1_norms(), vec![4.0, 4.0, 2.0]);
        assert_eq!(m.max_col_l1(), 4.0);
    }

    #[test]
    fn shape_errors() {
        let m = small();
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_transpose(&[1.0]).is_err());
        assert!(m.matmul(&SparseMatrix::identity(2)).is_err());
    }

    #[test]
    fn scale() {
        let mut m = small();
        m.scale_mut(2.0);
        assert_eq!(m.get(2, 1), 8.0);
    }
}
