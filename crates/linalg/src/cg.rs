//! Conjugate gradient for sparse symmetric positive-definite systems.
//!
//! Two SPD systems dominate Blowfish planning. The min-norm transformed
//! database `x_G = P_Gᵀ (P_G P_Gᵀ)⁻¹ x` solves against the *grounded graph
//! Laplacian* `L = P_G P_Gᵀ` — sparse, SPD (whenever the policy graph is
//! connected and touches ⊥), and far too large to densify for grid
//! policies. The matrix mechanism's per-release reconstruction
//! `A⁺ ỹ = (AᵀA)⁻¹ Aᵀ ỹ` solves the *normal equations* of a
//! full-column-rank strategy `A` — and for hierarchical/Haar strategies
//! `AᵀA` is dense (the total row fills it in) even though `A` itself is
//! O(k log k)-sparse, so that solve must stay matrix-free.
//!
//! Both run through one Jacobi-preconditioned CG core:
//!
//! * [`conjugate_gradient`] — solve `A x = b` for an explicit sparse SPD
//!   `A`, preconditioned by `diag(A)`.
//! * [`solve_normal_equations`] — solve `AᵀA x = Aᵀ y` for a sparse
//!   (rectangular, full column rank) `A`, applying `AᵀA` as two
//!   matvecs per iteration and preconditioning by the column squared
//!   L2 norms (= `diag(AᵀA)`, computed in O(nnz)). Peak memory is
//!   O(nnz + rows + cols); no k×k object is ever formed.
//!
//! Solvers either converge to the requested tolerance or fail typed
//! ([`LinalgError::NoConvergence`] with the iteration count, or
//! [`LinalgError::NotPositiveDefinite`] when the operator betrays
//! indefiniteness mid-iteration) — an unconverged `x` is never returned
//! silently.

use crate::dense::dot;
use crate::sparse::SparseMatrix;
use crate::sparse_cholesky::SparseCholesky;
use crate::LinalgError;

/// Options for [`conjugate_gradient`] and [`solve_normal_equations`].
///
/// ## Choosing `tol`
///
/// `tol` bounds the *relative preconditioned-system residual*
/// `‖r‖₂ / ‖b‖₂` of the system actually solved. For the normal equations
/// the backward error in the least-squares solution scales like
/// `κ(AᵀA) · tol = κ(A)² · tol`, so ill-conditioned strategies need
/// headroom: the default `1e-10` is comfortable for graph Laplacians and
/// well-clustered strategy spectra (hierarchical/Haar, κ(A)² in the tens),
/// while matching a dense Cholesky/pseudoinverse reference to ≤1e-9
/// relative — as the engine's sparse-vs-dense equivalence tests do —
/// calls for `tol = 1e-12`. Below ~`1e-14` the f64 recurrence stagnates
/// and the iteration cap becomes the practical stop.
///
/// ## Choosing `max_iter`
///
/// `max_iter = 0` (the default) auto-sizes to `10·n + 50`, generous for
/// the clustered spectra above: exact-arithmetic CG finishes in as many
/// iterations as there are *distinct* eigenvalues, which is ~log₂ k for
/// hierarchical strategies (observable via [`CgSolution::iterations`]).
/// If a strategy is so ill-conditioned that the cap trips, the solver
/// returns [`LinalgError::NoConvergence`] carrying the count — callers
/// should treat that as "pick the dense path or a better preconditioner",
/// not retry with a bigger cap.
#[derive(Clone, Copy, Debug)]
pub struct CgOptions {
    /// Relative residual tolerance `‖r‖₂ / ‖b‖₂`.
    pub tol: f64,
    /// Iteration cap; `0` auto-sizes to `10 * n + 50`.
    pub max_iter: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tol: 1e-10,
            max_iter: 0, // 0 = auto (10 n + 50)
        }
    }
}

/// Result of a CG solve.
#[derive(Clone, Debug)]
pub struct CgSolution {
    /// The approximate solution.
    pub x: Vec<f64>,
    /// Iterations performed. Tests pin convergence behaviour on this
    /// (e.g. ~log₂ k iterations on hierarchical normal equations).
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Reusable scratch for the CG solvers: every working vector a solve
/// needs (`x`, `r`, `z`, `p`, `Ap`, the preconditioner diagonal and its
/// inverse, the row-space matvec scratch) lives here, so a mechanism
/// serving many releases allocates them **once** instead of per call.
///
/// [`CgWorkspace::allocations`] counts buffer (re)allocations: after a
/// warm-up solve it stays flat across further same-shape solves — the
/// bench notes pin the before/after story on this counter.
#[derive(Clone, Debug, Default)]
pub struct CgWorkspace {
    x: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    diag: Vec<f64>,
    diag_inv: Vec<f64>,
    row_scratch: Vec<f64>,
    pc_scratch: Vec<f64>,
    allocations: usize,
}

impl CgWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        CgWorkspace::default()
    }

    /// How many buffer (re)allocations this workspace has performed.
    /// Same-shape solve sequences pay them only on the first solve.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    fn ensure(buf: &mut Vec<f64>, len: usize, allocations: &mut usize) {
        if buf.len() != len {
            *allocations += 1;
            buf.clear();
            buf.resize(len, 0.0);
        }
    }
}

/// Which preconditioner a Gram-system solve runs under.
#[derive(Clone, Copy, Debug)]
pub enum GramPreconditioner<'a> {
    /// `diag(AᵀA)` computed on the fly (one O(nnz) sweep per solve).
    Jacobi,
    /// A caller-cached `diag(AᵀA)` (e.g. computed once at plan time) —
    /// skips the per-solve O(nnz) recompute.
    JacobiWith(&'a [f64]),
    /// An IC(0) incomplete-Cholesky factor of the Gram matrix
    /// ([`crate::sparse_cholesky::incomplete_cholesky0`]), applied as
    /// two zero-allocation triangular solves per iteration. Used when
    /// the *complete* factor's predicted fill exceeds the caller's
    /// budget but the Gram matrix itself is still formable.
    Ic0(&'a SparseCholesky),
}

/// Preconditioned CG over an abstract SPD operator, working entirely out
/// of `ws`. `apply` computes `out = Op(x)` and may use the provided
/// row-space scratch (length `scratch_len`); `chol_pc = None` applies
/// the Jacobi preconditioner from `ws.diag_inv` (already validated by
/// the caller).
#[allow(clippy::too_many_arguments)]
fn pcg_core(
    what: &'static str,
    n: usize,
    scratch_len: usize,
    b: &[f64],
    opts: CgOptions,
    chol_pc: Option<&SparseCholesky>,
    ws: &mut CgWorkspace,
    mut apply: impl FnMut(&[f64], &mut [f64], &mut [f64]) -> Result<(), LinalgError>,
) -> Result<CgSolution, LinalgError> {
    let max_iter = if opts.max_iter == 0 {
        10 * n + 50
    } else {
        opts.max_iter
    };
    let bnorm = dot(b, b).sqrt();
    if bnorm == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }
    let allocs = &mut ws.allocations;
    CgWorkspace::ensure(&mut ws.x, n, allocs);
    CgWorkspace::ensure(&mut ws.r, n, allocs);
    CgWorkspace::ensure(&mut ws.z, n, allocs);
    CgWorkspace::ensure(&mut ws.p, n, allocs);
    CgWorkspace::ensure(&mut ws.ap, n, allocs);
    CgWorkspace::ensure(&mut ws.row_scratch, scratch_len, allocs);
    if chol_pc.is_some() {
        CgWorkspace::ensure(&mut ws.pc_scratch, n, allocs);
    }

    ws.x.fill(0.0);
    ws.r.copy_from_slice(b);
    match chol_pc {
        Some(c) => {
            ws.z.copy_from_slice(&ws.r);
            c.solve_in_place(&mut ws.z, &mut ws.pc_scratch);
        }
        None => {
            for i in 0..n {
                ws.z[i] = ws.r[i] * ws.diag_inv[i];
            }
        }
    }
    ws.p.copy_from_slice(&ws.z);
    let mut rz = dot(&ws.r, &ws.z);

    for it in 0..max_iter {
        apply(&ws.p, &mut ws.row_scratch, &mut ws.ap)?;
        let pap = dot(&ws.p, &ws.ap);
        if pap <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: it });
        }
        let alpha = rz / pap;
        for i in 0..n {
            ws.x[i] += alpha * ws.p[i];
            ws.r[i] -= alpha * ws.ap[i];
        }
        let rnorm = dot(&ws.r, &ws.r).sqrt();
        if rnorm / bnorm <= opts.tol {
            return Ok(CgSolution {
                x: ws.x.clone(),
                iterations: it + 1,
                residual: rnorm / bnorm,
            });
        }
        match chol_pc {
            Some(c) => {
                ws.z.copy_from_slice(&ws.r);
                c.solve_in_place(&mut ws.z, &mut ws.pc_scratch);
            }
            None => {
                for i in 0..n {
                    ws.z[i] = ws.r[i] * ws.diag_inv[i];
                }
            }
        }
        let rz_new = dot(&ws.r, &ws.z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            ws.p[i] = ws.z[i] + beta * ws.p[i];
        }
    }
    Err(LinalgError::NoConvergence {
        what,
        iterations: max_iter,
    })
}

/// Validates `diag > 0` and stores its inverse in `ws.diag_inv`.
fn invert_diag_into(ws: &mut CgWorkspace, n: usize) -> Result<(), LinalgError> {
    let allocs = &mut ws.allocations;
    CgWorkspace::ensure(&mut ws.diag_inv, n, allocs);
    for i in 0..n {
        let d = ws.diag[i];
        if d <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: i });
        }
        ws.diag_inv[i] = 1.0 / d;
    }
    Ok(())
}

/// Solves `A x = b` for sparse SPD `A` with Jacobi-preconditioned CG.
pub fn conjugate_gradient(
    a: &SparseMatrix,
    b: &[f64],
    opts: CgOptions,
) -> Result<CgSolution, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
        });
    }
    let mut ws = CgWorkspace::new();
    CgWorkspace::ensure(&mut ws.diag, n, &mut ws.allocations);
    for i in 0..n {
        ws.diag[i] = a.get(i, i);
    }
    invert_diag_into(&mut ws, n)?;
    pcg_core(
        "conjugate gradient",
        n,
        0,
        b,
        opts,
        None,
        &mut ws,
        |x, _scratch, y| a.matvec_into(x, y),
    )
}

/// Applies the pseudoinverse of a full-column-rank sparse strategy `A` to
/// `y` by solving the normal equations `AᵀA x = Aᵀ y` matrix-free.
///
/// `AᵀA` is never materialized: each CG iteration applies it as
/// `x ↦ Aᵀ(A x)` (two O(nnz) matvecs through a reused row-space scratch
/// buffer), and the Jacobi preconditioner is [`SparseMatrix::col_sq_norms`].
/// Peak memory is O(nnz + rows + cols), which is what lets the matrix
/// mechanism serve releases at k = 65 536 where the dense k×k
/// pseudoinverse (32 GiB) cannot exist.
///
/// Requires `A` to have full column rank; a structurally empty column is
/// rejected up front as [`LinalgError::NotPositiveDefinite`], and rank
/// deficiency among nonempty columns surfaces the same way mid-iteration.
/// See [`CgOptions`] for tolerance guidance — the residual is measured on
/// the normal-equation system, so agreement with a dense reference to
/// ≤1e-9 wants `tol = 1e-12`.
pub fn solve_normal_equations(
    a: &SparseMatrix,
    y: &[f64],
    opts: CgOptions,
) -> Result<CgSolution, LinalgError> {
    solve_normal_equations_with(
        a,
        y,
        opts,
        GramPreconditioner::Jacobi,
        &mut CgWorkspace::new(),
    )
}

/// [`solve_normal_equations`] with a caller-chosen preconditioner and a
/// reusable [`CgWorkspace`] — the plan-once/serve-many entry point: a
/// mechanism holding the workspace (and, ideally, a cached
/// [`GramPreconditioner::JacobiWith`] diagonal or an
/// [`GramPreconditioner::Ic0`] factor) pays zero steady-state
/// allocations beyond the returned solution vector.
pub fn solve_normal_equations_with(
    a: &SparseMatrix,
    y: &[f64],
    opts: CgOptions,
    pc: GramPreconditioner<'_>,
    ws: &mut CgWorkspace,
) -> Result<CgSolution, LinalgError> {
    if y.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), 1),
            got: (y.len(), 1),
        });
    }
    let b = a.matvec_transpose(y)?;
    solve_gram_system_with(a, &b, opts, pc, ws)
}

/// Solves `AᵀA x = b` matrix-free for a column-space right-hand side `b`
/// (length `a.cols()`).
///
/// [`solve_normal_equations`] is this with `b = Aᵀ y`; the direct entry
/// exists for callers that already hold a column-space vector — e.g. the
/// matrix mechanism's per-query error, which needs `(AᵀA)⁻¹ wᵢ` for a
/// workload row `wᵢ`. Same preconditioner, memory profile, and typed
/// failure modes as [`solve_normal_equations`].
pub fn solve_gram_system(
    a: &SparseMatrix,
    b: &[f64],
    opts: CgOptions,
) -> Result<CgSolution, LinalgError> {
    solve_gram_system_with(
        a,
        b,
        opts,
        GramPreconditioner::Jacobi,
        &mut CgWorkspace::new(),
    )
}

/// [`solve_gram_system`] with a caller-chosen preconditioner and a
/// reusable [`CgWorkspace`]. See [`solve_normal_equations_with`].
pub fn solve_gram_system_with(
    a: &SparseMatrix,
    b: &[f64],
    opts: CgOptions,
    pc: GramPreconditioner<'_>,
    ws: &mut CgWorkspace,
) -> Result<CgSolution, LinalgError> {
    let n = a.cols();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
        });
    }
    let chol_pc = match pc {
        GramPreconditioner::Jacobi => {
            let allocs = &mut ws.allocations;
            CgWorkspace::ensure(&mut ws.diag, n, allocs);
            ws.diag.fill(0.0);
            for i in 0..a.rows() {
                for (j, v) in a.row(i) {
                    ws.diag[j] += v * v;
                }
            }
            invert_diag_into(ws, n)?;
            None
        }
        GramPreconditioner::JacobiWith(diag) => {
            if diag.len() != n {
                return Err(LinalgError::ShapeMismatch {
                    expected: (n, 1),
                    got: (diag.len(), 1),
                });
            }
            let allocs = &mut ws.allocations;
            CgWorkspace::ensure(&mut ws.diag, n, allocs);
            ws.diag.copy_from_slice(diag);
            invert_diag_into(ws, n)?;
            None
        }
        GramPreconditioner::Ic0(chol) => {
            if chol.n() != n {
                return Err(LinalgError::ShapeMismatch {
                    expected: (n, n),
                    got: (chol.n(), chol.n()),
                });
            }
            Some(chol)
        }
    };
    pcg_core(
        "normal-equation conjugate gradient",
        n,
        a.rows(),
        b,
        opts,
        chol_pc,
        ws,
        |x, scratch, out| {
            a.matvec_into(x, scratch)?;
            a.matvec_transpose_into(scratch, out)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    /// Grounded Laplacian of a path on `n` vertices with a ⊥-edge at the end.
    fn grounded_path_laplacian(n: usize) -> SparseMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            let mut deg = 0.0;
            if i > 0 {
                deg += 1.0;
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                deg += 1.0;
                b.push(i, i + 1, -1.0);
            }
            if i == n - 1 {
                deg += 1.0; // edge to ⊥ grounds the system
            }
            b.push(i, i, deg);
        }
        b.build()
    }

    #[test]
    fn solves_grounded_path() {
        let n = 50;
        let a = grounded_path_laplacian(n);
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&xtrue).unwrap();
        let sol = conjugate_gradient(&a, &b, CgOptions::default()).unwrap();
        for (u, v) in sol.x.iter().zip(&xtrue) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn solves_grid_laplacian() {
        // Grounded Laplacian of a 10x10 grid with one corner tied to ⊥.
        let k = 10;
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut b = TripletBuilder::new(n, n);
        let mut deg = vec![0.0_f64; n];
        for r in 0..k {
            for c in 0..k {
                let u = idx(r, c);
                if c + 1 < k {
                    let v = idx(r, c + 1);
                    b.push(u, v, -1.0);
                    b.push(v, u, -1.0);
                    deg[u] += 1.0;
                    deg[v] += 1.0;
                }
                if r + 1 < k {
                    let v = idx(r + 1, c);
                    b.push(u, v, -1.0);
                    b.push(v, u, -1.0);
                    deg[u] += 1.0;
                    deg[v] += 1.0;
                }
            }
        }
        deg[0] += 1.0; // corner grounded
        for (i, d) in deg.iter().enumerate() {
            b.push(i, i, *d);
        }
        let a = b.build();
        let xtrue: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let rhs = a.matvec(&xtrue).unwrap();
        let sol = conjugate_gradient(&a, &rhs, CgOptions::default()).unwrap();
        for (u, v) in sol.x.iter().zip(&xtrue) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = grounded_path_laplacian(5);
        let sol = conjugate_gradient(&a, &[0.0; 5], CgOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = grounded_path_laplacian(5);
        assert!(conjugate_gradient(&a, &[0.0; 4], CgOptions::default()).is_err());
    }

    #[test]
    fn rejects_zero_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        let a = b.build();
        assert!(conjugate_gradient(&a, &[1.0, 1.0], CgOptions::default()).is_err());
    }

    #[test]
    fn iteration_cap_respected() {
        let a = grounded_path_laplacian(100);
        let b: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let res = conjugate_gradient(
            &a,
            &b,
            CgOptions {
                tol: 1e-14,
                max_iter: 2,
            },
        );
        assert!(matches!(res, Err(LinalgError::NoConvergence { .. })));
    }

    /// A small full-column-rank tall strategy for normal-equation tests.
    fn tall_strategy() -> SparseMatrix {
        // 6x4: identity rows plus two range rows.
        let mut b = TripletBuilder::new(6, 4);
        for j in 0..4 {
            b.push(j, j, 1.0);
        }
        for j in 0..4 {
            b.push(4, j, 1.0); // total row (dense in AᵀA!)
        }
        b.push(5, 1, 1.0);
        b.push(5, 2, 1.0);
        b.build()
    }

    #[test]
    fn normal_equations_match_dense_least_squares() {
        let a = tall_strategy();
        let y = [2.0, -1.0, 0.5, 3.0, 4.0, 1.0];
        let sol = solve_normal_equations(
            &a,
            &y,
            CgOptions {
                tol: 1e-12,
                max_iter: 0,
            },
        )
        .unwrap();
        // Dense reference: x = (AᵀA)⁻¹ Aᵀ y via pseudoinverse.
        let pinv = crate::svd::pseudoinverse(&a.to_dense()).unwrap();
        let reference = pinv.matvec(&y).unwrap();
        for (u, v) in sol.x.iter().zip(&reference) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
        // The residual of the solved system is genuinely small.
        assert!(sol.residual <= 1e-12);
    }

    #[test]
    fn normal_equations_on_identity_are_exact_and_instant() {
        let a = SparseMatrix::identity(8);
        let y: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        let sol = solve_normal_equations(&a, &y, CgOptions::default()).unwrap();
        assert!(sol.iterations <= 2);
        for (u, v) in sol.x.iter().zip(&y) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_equations_reject_empty_column() {
        // Column 2 is structurally empty: rank deficient, typed rejection.
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        b.push(2, 1, 1.0);
        let a = b.build();
        let res = solve_normal_equations(&a, &[1.0, 1.0, 1.0], CgOptions::default());
        assert!(matches!(
            res,
            Err(LinalgError::NotPositiveDefinite { pivot: 2 })
        ));
    }

    #[test]
    fn normal_equations_reject_bad_shape_and_short_circuit_zero() {
        let a = tall_strategy();
        assert!(solve_normal_equations(&a, &[1.0; 4], CgOptions::default()).is_err());
        let sol = solve_normal_equations(&a, &[0.0; 6], CgOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn workspace_allocations_flatten_after_first_solve() {
        let a = tall_strategy();
        let y = [2.0, -1.0, 0.5, 3.0, 4.0, 1.0];
        let mut ws = CgWorkspace::new();
        let first = solve_normal_equations_with(
            &a,
            &y,
            CgOptions::default(),
            GramPreconditioner::Jacobi,
            &mut ws,
        )
        .unwrap();
        let after_first = ws.allocations();
        assert!(after_first > 0);
        for _ in 0..5 {
            let again = solve_normal_equations_with(
                &a,
                &y,
                CgOptions::default(),
                GramPreconditioner::Jacobi,
                &mut ws,
            )
            .unwrap();
            for (u, v) in again.x.iter().zip(&first.x) {
                assert!((u - v).abs() < 1e-12);
            }
        }
        assert_eq!(
            ws.allocations(),
            after_first,
            "steady-state solves must not grow the workspace"
        );
    }

    #[test]
    fn cached_jacobi_diag_matches_on_the_fly() {
        let a = tall_strategy();
        let y = [1.0, 0.0, -2.0, 0.5, 3.0, -1.0];
        let diag = a.col_sq_norms();
        let mut ws = CgWorkspace::new();
        let cached = solve_normal_equations_with(
            &a,
            &y,
            CgOptions::default(),
            GramPreconditioner::JacobiWith(&diag),
            &mut ws,
        )
        .unwrap();
        let fresh = solve_normal_equations(&a, &y, CgOptions::default()).unwrap();
        for (u, v) in cached.x.iter().zip(&fresh.x) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn ic0_preconditioner_converges_faster_and_agrees() {
        use crate::sparse_cholesky::incomplete_cholesky0;
        // A gram matrix with enough structure that IC(0) beats Jacobi.
        let a = grounded_path_laplacian(60);
        let gram = a.transpose().matmul(&a).unwrap();
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.13).cos()).collect();
        let ic = incomplete_cholesky0(&gram).unwrap();
        let mut ws = CgWorkspace::new();
        let opts = CgOptions {
            tol: 1e-12,
            max_iter: 0,
        };
        let pc =
            solve_gram_system_with(&a, &b, opts, GramPreconditioner::Ic0(&ic), &mut ws).unwrap();
        let jacobi = solve_gram_system(&a, &b, opts).unwrap();
        for (u, v) in pc.x.iter().zip(&jacobi.x) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
        assert!(
            pc.iterations <= jacobi.iterations,
            "IC(0) took {} vs Jacobi {}",
            pc.iterations,
            jacobi.iterations
        );
    }

    #[test]
    fn normal_equations_converge_in_spectrum_clusters() {
        // AᵀA of the tall strategy has few distinct eigenvalues; CG should
        // converge in far fewer than n iterations.
        let a = tall_strategy();
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let sol = solve_normal_equations(&a, &y, CgOptions::default()).unwrap();
        assert!(sol.iterations <= 4, "took {}", sol.iterations);
    }
}
