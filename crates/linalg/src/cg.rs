//! Conjugate gradient for sparse symmetric positive-definite systems.
//!
//! The min-norm transformed database `x_G = P_Gᵀ (P_G P_Gᵀ)⁻¹ x` requires
//! solving against the *grounded graph Laplacian* `L = P_G P_Gᵀ` — sparse,
//! SPD (whenever the policy graph is connected and touches ⊥), and far too
//! large to densify for grid policies. CG with Jacobi (diagonal)
//! preconditioning is the textbook tool.

use crate::dense::dot;
use crate::sparse::SparseMatrix;
use crate::LinalgError;

/// Options for [`conjugate_gradient`].
#[derive(Clone, Copy, Debug)]
pub struct CgOptions {
    /// Relative residual tolerance `‖r‖₂ / ‖b‖₂`.
    pub tol: f64,
    /// Iteration cap. Defaults to `10 * n` which is generous for graph
    /// Laplacians with Jacobi preconditioning.
    pub max_iter: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tol: 1e-10,
            max_iter: 0, // 0 = auto (10 n)
        }
    }
}

/// Result of a CG solve.
#[derive(Clone, Debug)]
pub struct CgSolution {
    /// The approximate solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Solves `A x = b` for sparse SPD `A` with Jacobi-preconditioned CG.
pub fn conjugate_gradient(
    a: &SparseMatrix,
    b: &[f64],
    opts: CgOptions,
) -> Result<CgSolution, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
        });
    }
    let max_iter = if opts.max_iter == 0 {
        10 * n + 50
    } else {
        opts.max_iter
    };
    let bnorm = dot(b, b).sqrt();
    if bnorm == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }
    // Jacobi preconditioner: M⁻¹ = diag(A)⁻¹.
    let mut diag_inv = vec![1.0; n];
    for (i, di) in diag_inv.iter_mut().enumerate() {
        let d = a.get(i, i);
        if d <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: i });
        }
        *di = 1.0 / d;
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = r.iter().zip(&diag_inv).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);

    for it in 0..max_iter {
        let ap = a.matvec(&p)?;
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: it });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rnorm = dot(&r, &r).sqrt();
        if rnorm / bnorm <= opts.tol {
            return Ok(CgSolution {
                x,
                iterations: it + 1,
                residual: rnorm / bnorm,
            });
        }
        for i in 0..n {
            z[i] = r[i] * diag_inv[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(LinalgError::NoConvergence {
        what: "conjugate gradient",
        iterations: max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    /// Grounded Laplacian of a path on `n` vertices with a ⊥-edge at the end.
    fn grounded_path_laplacian(n: usize) -> SparseMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            let mut deg = 0.0;
            if i > 0 {
                deg += 1.0;
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                deg += 1.0;
                b.push(i, i + 1, -1.0);
            }
            if i == n - 1 {
                deg += 1.0; // edge to ⊥ grounds the system
            }
            b.push(i, i, deg);
        }
        b.build()
    }

    #[test]
    fn solves_grounded_path() {
        let n = 50;
        let a = grounded_path_laplacian(n);
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&xtrue).unwrap();
        let sol = conjugate_gradient(&a, &b, CgOptions::default()).unwrap();
        for (u, v) in sol.x.iter().zip(&xtrue) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn solves_grid_laplacian() {
        // Grounded Laplacian of a 10x10 grid with one corner tied to ⊥.
        let k = 10;
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut b = TripletBuilder::new(n, n);
        let mut deg = vec![0.0_f64; n];
        for r in 0..k {
            for c in 0..k {
                let u = idx(r, c);
                if c + 1 < k {
                    let v = idx(r, c + 1);
                    b.push(u, v, -1.0);
                    b.push(v, u, -1.0);
                    deg[u] += 1.0;
                    deg[v] += 1.0;
                }
                if r + 1 < k {
                    let v = idx(r + 1, c);
                    b.push(u, v, -1.0);
                    b.push(v, u, -1.0);
                    deg[u] += 1.0;
                    deg[v] += 1.0;
                }
            }
        }
        deg[0] += 1.0; // corner grounded
        for (i, d) in deg.iter().enumerate() {
            b.push(i, i, *d);
        }
        let a = b.build();
        let xtrue: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let rhs = a.matvec(&xtrue).unwrap();
        let sol = conjugate_gradient(&a, &rhs, CgOptions::default()).unwrap();
        for (u, v) in sol.x.iter().zip(&xtrue) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = grounded_path_laplacian(5);
        let sol = conjugate_gradient(&a, &[0.0; 5], CgOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = grounded_path_laplacian(5);
        assert!(conjugate_gradient(&a, &[0.0; 4], CgOptions::default()).is_err());
    }

    #[test]
    fn rejects_zero_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        let a = b.build();
        assert!(conjugate_gradient(&a, &[1.0, 1.0], CgOptions::default()).is_err());
    }

    #[test]
    fn iteration_cap_respected() {
        let a = grounded_path_laplacian(100);
        let b: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let res = conjugate_gradient(
            &a,
            &b,
            CgOptions {
                tol: 1e-14,
                max_iter: 2,
            },
        );
        assert!(matches!(res, Err(LinalgError::NoConvergence { .. })));
    }
}
