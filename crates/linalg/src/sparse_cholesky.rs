//! Sparse Cholesky factorization: factor the Gram matrix once, serve
//! releases forever with two O(nnz(L)) triangular solves.
//!
//! The matrix mechanism is a plan-once/serve-many system — the strategy
//! `A` is fixed at plan time, so the normal-equations operator `AᵀA` is
//! too. Re-running Jacobi-PCG on every release re-pays O(iters · nnz)
//! per release; this module factors `P G Pᵀ = L Lᵀ` **once** and turns
//! each release into a forward solve, a back solve, and two index
//! permutations.
//!
//! # Ordering choice
//!
//! Fill-in is decided entirely by the elimination order. We implement
//! reverse Cuthill–McKee ([`rcm_ordering`]) — BFS from a
//! pseudo-peripheral vertex, neighbors visited by increasing degree,
//! order reversed — which confines fill to a narrow band for the
//! mesh/band-like graphs that policy Gram matrices produce.
//! [`CholeskyOrdering::Auto`] runs the **symbolic pass only** (O(nnz)
//! time, O(n) space, no numerics) under both the natural and the RCM
//! order and keeps whichever predicts less fill: for Gram matrices that
//! arrive in a perfect elimination order — notably [`dyadic_haar_basis`]
//! rotations of hierarchical strategies, whose tree-ancestor sparsity is
//! chordal with *zero* fill in leaf-first order — natural wins and RCM
//! is discarded without ever touching a value.
//!
//! # Symbolic / numeric split
//!
//! [`SymbolicCholesky::analyze`] computes the elimination tree (CSparse
//! `cs_etree` with path compression) and per-column nonzero counts of
//! `L` in one O(nnz·α) sweep, optionally aborting early once predicted
//! fill exceeds a cap (so a structurally dense Gram costs O(cap), not
//! O(n²), to reject). The symbolic object — permutation, parent array,
//! column pointers — is reusable across **numeric refactors**:
//! [`SymbolicCholesky::factorize`] is an up-looking numeric pass
//! (CSparse `cs_chol`: `ereach` row patterns in topological order, dense
//! scatter, per-column write cursors) that can be called again whenever
//! the strategy's *values* change but its *pattern* does not.
//!
//! # IC(0) fallback rule
//!
//! When the symbolic pass predicts fill beyond the caller's budget, a
//! complete factor would blow the O(nnz) memory story — but the no-fill
//! positions of `L` still capture most of the operator. Callers use
//! [`incomplete_cholesky0`] — same up-looking kernel, pattern pinned to
//! `lower(G)`, fill dropped by position — as a PCG preconditioner in
//! that regime. IC(0) can break down (`d ≤ 0`) on matrices where full
//! Cholesky would succeed; breakdown is a typed
//! [`LinalgError::NotPositiveDefinite`] and callers fall back to Jacobi
//! PCG, so no input ever regresses past the pre-factorization path.

use crate::sparse::{SparseMatrix, TripletBuilder};
use crate::LinalgError;

const NONE: usize = usize::MAX;

/// Fill-reducing elimination order for [`SymbolicCholesky::analyze`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CholeskyOrdering {
    /// Factor in the matrix's given order. Optimal when the matrix is
    /// already in a perfect elimination order (e.g. the leaf-first
    /// tree-ancestor Gram produced by a [`dyadic_haar_basis`] rotation).
    Natural,
    /// Reverse Cuthill–McKee bandwidth reduction over the adjacency of
    /// the Gram matrix.
    ReverseCuthillMcKee,
    /// Run the symbolic pass under both orders and keep whichever
    /// predicts less fill.
    Auto,
}

impl std::fmt::Display for CholeskyOrdering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyOrdering::Natural => write!(f, "natural"),
            CholeskyOrdering::ReverseCuthillMcKee => write!(f, "rcm"),
            CholeskyOrdering::Auto => write!(f, "auto"),
        }
    }
}

/// Reverse Cuthill–McKee ordering of a symmetric sparse matrix's
/// adjacency graph. Returns `perm` with `perm[new] = old`; every
/// connected component is swept by BFS from a pseudo-peripheral start
/// (min-degree seed, one George–Liu re-rooting sweep), neighbors taken
/// by increasing degree, and the whole order reversed.
pub fn rcm_ordering(g: &SparseMatrix) -> Vec<usize> {
    let n = g.rows();
    let degree: Vec<usize> = (0..n).map(|i| g.row_nnz(i)).collect();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    // One BFS sweep from `start`, appending into `out`; returns the last
    // vertex reached (a peripheral candidate).
    let bfs = |start: usize, seen: &mut Vec<bool>, out: &mut Vec<usize>| -> usize {
        let mut q = std::collections::VecDeque::new();
        let mut nb: Vec<usize> = Vec::new();
        seen[start] = true;
        q.push_back(start);
        let mut last = start;
        while let Some(v) = q.pop_front() {
            out.push(v);
            last = v;
            nb.clear();
            nb.extend(g.row(v).map(|(j, _)| j).filter(|&j| j != v && !seen[j]));
            nb.sort_unstable_by_key(|&j| (degree[j], j));
            for &j in &nb {
                if !seen[j] {
                    seen[j] = true;
                    q.push_back(j);
                }
            }
        }
        last
    };

    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        // Min-degree unvisited vertex of this component as the seed …
        let mut start = seed;
        // … then re-root at the far end of one BFS (pseudo-peripheral).
        let mut probe_seen = visited.clone();
        let mut scratch = Vec::new();
        let far = bfs(start, &mut probe_seen, &mut scratch);
        let min_deg = scratch.iter().map(|&v| degree[v]).min().unwrap_or(0);
        if degree[far] <= min_deg + 1 {
            start = far;
        }
        bfs(start, &mut visited, &mut order);
    }
    order.reverse();
    order
}

/// The reusable symbolic half of a sparse Cholesky factorization:
/// permutation, elimination tree, and the exact column pointers of `L`.
/// Produced by [`SymbolicCholesky::analyze`]; turn it into numbers with
/// [`SymbolicCholesky::factorize`] (repeatably, across numeric
/// refactors of a fixed pattern).
#[derive(Clone, Debug)]
pub struct SymbolicCholesky {
    n: usize,
    /// `perm[new] = old` — the elimination order.
    perm: Vec<usize>,
    /// `perm_inv[old] = new`.
    perm_inv: Vec<usize>,
    /// Elimination tree over permuted indices (`NONE` = root).
    parent: Vec<usize>,
    /// CSC column pointers of `L` (length `n + 1`), diagonal-first.
    colptr: Vec<usize>,
    /// Which ordering produced this analysis.
    ordering: CholeskyOrdering,
}

impl SymbolicCholesky {
    /// Symbolic analysis of the SPD matrix `g` under `ordering`.
    ///
    /// With `fill_cap = Some(cap)`, the per-column count sweep aborts
    /// with [`LinalgError::FillBudgetExceeded`] as soon as the running
    /// nnz(L) passes `cap` — O(cap) work to reject a dense factor,
    /// never O(n²). `Auto` tries natural first, then RCM, and keeps the
    /// sparser prediction.
    pub fn analyze(
        g: &SparseMatrix,
        ordering: CholeskyOrdering,
        fill_cap: Option<usize>,
    ) -> Result<SymbolicCholesky, LinalgError> {
        if g.rows() != g.cols() {
            return Err(LinalgError::NotSquare {
                rows: g.rows(),
                cols: g.cols(),
            });
        }
        match ordering {
            CholeskyOrdering::Natural => {
                let perm: Vec<usize> = (0..g.rows()).collect();
                Self::analyze_with_perm(g, perm, CholeskyOrdering::Natural, fill_cap)
            }
            CholeskyOrdering::ReverseCuthillMcKee => Self::analyze_with_perm(
                g,
                rcm_ordering(g),
                CholeskyOrdering::ReverseCuthillMcKee,
                fill_cap,
            ),
            CholeskyOrdering::Auto => {
                let natural = Self::analyze(g, CholeskyOrdering::Natural, fill_cap);
                // Cap the RCM probe at the natural fill: RCM only has to
                // beat the incumbent, never explore past it.
                let rcm_cap = match (&natural, fill_cap) {
                    (Ok(s), _) => Some(s.nnz_l()),
                    (Err(_), cap) => cap,
                };
                let rcm = Self::analyze(g, CholeskyOrdering::ReverseCuthillMcKee, rcm_cap);
                match (natural, rcm) {
                    (Ok(a), Ok(b)) => Ok(if b.nnz_l() < a.nnz_l() { b } else { a }),
                    (Ok(a), Err(_)) => Ok(a),
                    (Err(_), Ok(b)) => Ok(b),
                    (Err(a), Err(_)) => Err(a),
                }
            }
        }
    }

    fn analyze_with_perm(
        g: &SparseMatrix,
        perm: Vec<usize>,
        ordering: CholeskyOrdering,
        fill_cap: Option<usize>,
    ) -> Result<SymbolicCholesky, LinalgError> {
        let n = g.rows();
        let mut perm_inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            perm_inv[old] = new;
        }
        // Phase 1 — elimination tree (CSparse `cs_etree`): walk every
        // lower entry up the partially built forest with **path
        // compression** (the `ancestor` shortcuts), which finds parents
        // in near-linear time but visits a compressed path, not the
        // true one.
        let mut parent = vec![NONE; n];
        let mut ancestor = vec![NONE; n];
        for (k, &pk) in perm.iter().enumerate() {
            for (jold, _) in g.row(pk) {
                let mut j = perm_inv[jold];
                if j >= k {
                    continue;
                }
                while j != NONE && j < k {
                    let next = ancestor[j];
                    ancestor[j] = k;
                    if next == NONE {
                        parent[j] = k;
                    }
                    j = next;
                }
            }
        }
        // Phase 2 — column counts via true-parent `ereach` walks: for
        // row k, the columns of L(k, ·) are exactly the nodes on the
        // (final-)etree paths from each lower entry up to k, each
        // visited once thanks to the per-row marks. This is the same
        // pattern the numeric pass will fill in, entry for entry.
        let mut mark = vec![NONE; n];
        let mut count = vec![1usize; n]; // diagonal of every column
        let mut nnz_total = n;
        for k in 0..n {
            mark[k] = k;
            for (jold, _) in g.row(perm[k]) {
                let mut j = perm_inv[jold];
                if j >= k {
                    continue;
                }
                // (k is an etree ancestor of every lower entry of row k,
                // so the walk always terminates at a marked node; the
                // NONE guard only matters for non-symmetric misuse.)
                while j != NONE && mark[j] != k {
                    mark[j] = k;
                    count[j] += 1;
                    nnz_total += 1;
                    if let Some(cap) = fill_cap {
                        if nnz_total > cap {
                            return Err(LinalgError::FillBudgetExceeded {
                                predicted_at_least: nnz_total,
                                cap,
                            });
                        }
                    }
                    j = parent[j];
                }
            }
        }
        let mut colptr = Vec::with_capacity(n + 1);
        colptr.push(0usize);
        let mut acc = 0usize;
        for &c in &count {
            acc += c;
            colptr.push(acc);
        }
        Ok(SymbolicCholesky {
            n,
            perm,
            perm_inv,
            parent,
            colptr,
            ordering,
        })
    }

    /// Predicted nonzeros of `L` (including the diagonal).
    pub fn nnz_l(&self) -> usize {
        self.colptr[self.n]
    }

    /// Dimension of the analyzed matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The ordering that produced this analysis (`Auto` resolves to the
    /// winner).
    pub fn ordering(&self) -> CholeskyOrdering {
        self.ordering
    }

    /// The elimination order, `perm[new] = old`.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Up-looking numeric factorization of `g` into the analyzed
    /// pattern: `P g Pᵀ = L Lᵀ`. Reusable — call again after any
    /// same-pattern refactor of `g`'s values. Fails with
    /// [`LinalgError::NotPositiveDefinite`] on a non-SPD pivot.
    pub fn factorize(&self, g: &SparseMatrix) -> Result<SparseCholesky, LinalgError> {
        let n = self.n;
        if g.rows() != n || g.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, n),
                got: (g.rows(), g.cols()),
            });
        }
        let nnz = self.nnz_l();
        let mut rowind = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        // Per-column write cursor: next free slot past the diagonal.
        let mut cursor: Vec<usize> = (0..n).map(|j| self.colptr[j] + 1).collect();
        let mut x = vec![0.0f64; n]; // dense scatter of row k
        let mut mark = vec![NONE; n];
        let mut stack = vec![0usize; n]; // ereach output (topological)
        let mut path = vec![0usize; n]; // one tree path, before reversal

        for k in 0..n {
            // ereach(k): union of tree paths from row k's lower entries
            // up to (excl.) k, emitted in topological order.
            let mut top = n;
            mark[k] = k;
            x[k] = 0.0;
            for (jold, v) in g.row(self.perm[k]) {
                let j = self.perm_inv[jold];
                if j > k {
                    continue;
                }
                x[j] = v;
                let mut len = 0usize;
                let mut i = j;
                while i != k && mark[i] != k {
                    path[len] = i;
                    len += 1;
                    mark[i] = k;
                    i = self.parent[i];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    stack[top] = path[len];
                }
            }
            let mut d = x[k];
            x[k] = 0.0;
            for &j in &stack[top..n] {
                let lkj = x[j] / values[self.colptr[j]];
                x[j] = 0.0;
                for p in self.colptr[j] + 1..cursor[j] {
                    x[rowind[p]] -= values[p] * lkj;
                }
                d -= lkj * lkj;
                let p = cursor[j];
                cursor[j] += 1;
                rowind[p] = k;
                values[p] = lkj;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: k });
            }
            rowind[self.colptr[k]] = k;
            values[self.colptr[k]] = d.sqrt();
        }
        Ok(SparseCholesky {
            n,
            perm: self.perm.clone(),
            colptr: self.colptr.clone(),
            rowind,
            values,
        })
    }
}

/// A numeric sparse Cholesky factor `P G Pᵀ = L Lᵀ` in CSC layout
/// (diagonal entry first in every column, row indices ascending), with
/// allocation-free permuted triangular solves.
#[derive(Clone, Debug)]
pub struct SparseCholesky {
    n: usize,
    perm: Vec<usize>,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    values: Vec<f64>,
}

impl SparseCholesky {
    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzeros stored in `L` (including the diagonal).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The elimination order used, `perm[new] = old`.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `G x = b`. Allocates the result and one scratch vector;
    /// the hot path is [`SparseCholesky::solve_in_place`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.n, 1),
                got: (b.len(), 1),
            });
        }
        let mut x = b.to_vec();
        let mut scratch = vec![0.0; self.n];
        self.solve_in_place(&mut x, &mut scratch);
        Ok(x)
    }

    /// Solves `G v ← v` in place with zero allocations: permute into
    /// `scratch`, forward solve `L`, back solve `Lᵀ`, permute back.
    /// Both slices must have length `n`.
    pub fn solve_in_place(&self, v: &mut [f64], scratch: &mut [f64]) {
        debug_assert_eq!(v.len(), self.n);
        debug_assert_eq!(scratch.len(), self.n);
        for new in 0..self.n {
            scratch[new] = v[self.perm[new]];
        }
        // Forward: L y = Pb. Diagonal-first CSC makes both sweeps a
        // single pass over the stored entries.
        for j in 0..self.n {
            let yj = scratch[j] / self.values[self.colptr[j]];
            scratch[j] = yj;
            for p in self.colptr[j] + 1..self.colptr[j + 1] {
                scratch[self.rowind[p]] -= self.values[p] * yj;
            }
        }
        // Backward: Lᵀ z = y.
        for j in (0..self.n).rev() {
            let mut zj = scratch[j];
            for p in self.colptr[j] + 1..self.colptr[j + 1] {
                zj -= self.values[p] * scratch[self.rowind[p]];
            }
            scratch[j] = zj / self.values[self.colptr[j]];
        }
        for new in 0..self.n {
            v[self.perm[new]] = scratch[new];
        }
    }

    /// The factor `L` as a CSR matrix over **permuted** indices
    /// (`L L ᵀ = P G Pᵀ`) — for reconstruction tests and inspection.
    pub fn l_matrix(&self) -> SparseMatrix {
        let mut b = TripletBuilder::new(self.n, self.n);
        for j in 0..self.n {
            for p in self.colptr[j]..self.colptr[j + 1] {
                b.push(self.rowind[p], j, self.values[p]);
            }
        }
        b.build()
    }
}

/// IC(0): incomplete Cholesky with zero fill — the up-looking kernel
/// with the pattern pinned to `lower(G)` (fill dropped by position), in
/// natural order. The result is a [`SparseCholesky`] usable as a PCG
/// preconditioner (`M = L Lᵀ ≈ G`, applied via
/// [`SparseCholesky::solve_in_place`]).
///
/// IC(0) may break down (`d ≤ 0`) on SPD inputs where the complete
/// factorization would succeed; the typed
/// [`LinalgError::NotPositiveDefinite`] tells callers to fall back to a
/// Jacobi preconditioner.
pub fn incomplete_cholesky0(g: &SparseMatrix) -> Result<SparseCholesky, LinalgError> {
    let n = g.rows();
    if g.rows() != g.cols() {
        return Err(LinalgError::NotSquare {
            rows: g.rows(),
            cols: g.cols(),
        });
    }
    // Pattern = lower(G) in CSC, which by symmetry is the tail of each
    // CSR row: column j's rows are exactly {i ≥ j : G(j, i) ≠ 0}.
    let mut colptr = Vec::with_capacity(n + 1);
    colptr.push(0usize);
    for j in 0..n {
        let lower = g.row(j).filter(|&(i, _)| i >= j).count();
        colptr.push(colptr[j] + lower.max(1));
    }
    let nnz = colptr[n];
    let mut rowind = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    let mut cursor: Vec<usize> = (0..n).map(|j| colptr[j] + 1).collect();
    let mut x = vec![0.0f64; n];
    let mut mark = vec![NONE; n];
    let mut pattern = vec![0usize; n];

    for k in 0..n {
        // Scatter the lower entries of row k and record its fixed
        // pattern (ascending, from the sorted CSR row).
        let mut len = 0usize;
        let mut d = 0.0f64;
        mark[k] = k;
        for (j, v) in g.row(k) {
            if j > k {
                continue;
            }
            if j == k {
                d = v;
            } else {
                x[j] = v;
                mark[j] = k;
                pattern[len] = j;
                len += 1;
            }
        }
        for &j in &pattern[..len] {
            let lkj = x[j] / values[colptr[j]];
            x[j] = 0.0;
            for p in colptr[j] + 1..cursor[j] {
                let i = rowind[p];
                // Drop by position: only update entries inside row k's
                // own pattern (or its diagonal, folded into d below).
                if mark[i] == k && i != k {
                    x[i] -= values[p] * lkj;
                }
            }
            d -= lkj * lkj;
            let p = cursor[j];
            cursor[j] += 1;
            rowind[p] = k;
            values[p] = lkj;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: k });
        }
        rowind[colptr[k]] = k;
        values[colptr[k]] = d.sqrt();
    }
    Ok(SparseCholesky {
        n,
        perm: (0..n).collect(),
        colptr,
        rowind,
        values,
    })
}

/// The orthonormal **unbalanced dyadic Haar basis** `Q` over a domain of
/// size `k` (any `k ≥ 1`, clipped from the next power of two), as a
/// `k × k` CSR matrix whose columns are the basis vectors.
///
/// Why it matters here: the Gram matrix `AᵀA` of a hierarchical or
/// wavelet strategy is structurally **dense** (~2k² nonzeros — every
/// pair of leaves shares a tree ancestor), so no permutation makes it
/// directly factorable at k = 65 536. But under the congruence
/// `AᵀA x = b  ⇔  (AQ)ᵀ(AQ) z = Qᵀb, x = Qz`, the rotated strategy
/// `B = AQ` has ≤ log₂k + 1 nonzeros per row — a dyadic row of `A` has
/// nonzero inner product only with the Haar vectors of its own
/// ancestor-or-self tree nodes (every other wavelet sums to zero across
/// the row's support) — and `BᵀB` has tree-ancestor-pair sparsity
/// (O(k log k) nonzeros). That pattern is **chordal**: columns are
/// emitted deepest-first (the total column last), which is a perfect
/// elimination order, so the natural-order Cholesky factor has *zero
/// fill*.
///
/// Columns are orthonormal (`QᵀQ = I`), so the congruence preserves
/// conditioning exactly: internal node `t` with clipped child supports
/// `L`, `R` contributes `(|R|·1_L − |L|·1_R) / √(|L||R|(|L|+|R|))`, and
/// the final column is `1/√k`.
pub fn dyadic_haar_basis(k: usize) -> SparseMatrix {
    assert!(k >= 1, "domain must be non-empty");
    // Collect (depth, lo, mid, hi) for every tree node with two
    // non-empty clipped children.
    let padded = k.next_power_of_two();
    let mut nodes: Vec<(usize, usize, usize, usize)> = Vec::new();
    let mut frontier: Vec<(usize, usize, usize)> = vec![(0usize, padded, 0usize)];
    while let Some((start, size, depth)) = frontier.pop() {
        if size < 2 || start >= k {
            continue;
        }
        let half = size / 2;
        let mid = (start + half).min(k);
        let hi = (start + size).min(k);
        if mid > start && hi > mid {
            nodes.push((depth, start, mid, hi));
        }
        frontier.push((start, half, depth + 1));
        if start + half < k {
            frontier.push((start + half, half, depth + 1));
        }
    }
    // Deepest-first column order makes natural elimination leaf-first.
    nodes.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    debug_assert_eq!(nodes.len(), k - 1, "a binary tree over k leaves");

    let mut b = TripletBuilder::new(k, k);
    for (col, &(_, lo, mid, hi)) in nodes.iter().enumerate() {
        let (nl, nr) = ((mid - lo) as f64, (hi - mid) as f64);
        let scale = 1.0 / (nl * nr * (nl + nr)).sqrt();
        for row in lo..mid {
            b.push(row, col, nr * scale);
        }
        for row in mid..hi {
            b.push(row, col, -(nl * scale));
        }
    }
    let total = 1.0 / (k as f64).sqrt();
    for row in 0..k {
        b.push(row, k - 1, total);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::Cholesky;
    use crate::dense::Matrix;

    /// A small SPD matrix with a 2-D-grid-like sparsity pattern.
    fn grid_spd(side: usize) -> SparseMatrix {
        let n = side * side;
        let mut b = TripletBuilder::new(n, n);
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                b.push(i, i, 4.5);
                if c + 1 < side {
                    b.push(i, i + 1, -1.0);
                    b.push(i + 1, i, -1.0);
                }
                if r + 1 < side {
                    b.push(i, i + side, -1.0);
                    b.push(i + side, i, -1.0);
                }
            }
        }
        b.build()
    }

    /// Dense binary hierarchical strategy (mirrors
    /// `blowfish-mechanisms`), for rotation tests without a cross-crate
    /// dev dependency.
    fn hierarchical_dense(k: usize) -> Matrix {
        let padded = k.next_power_of_two();
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut size = padded;
        loop {
            let mut start = 0;
            while start < padded {
                let mut row = vec![0.0; k];
                row[start.min(k)..(start + size).min(k)].fill(1.0);
                if row.iter().any(|&v| v != 0.0) {
                    rows.push(row);
                }
                start += size;
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }
        Matrix::from_rows(&rows).unwrap()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn factor_and_solve_match_dense_cholesky() {
        for ordering in [
            CholeskyOrdering::Natural,
            CholeskyOrdering::ReverseCuthillMcKee,
            CholeskyOrdering::Auto,
        ] {
            let g = grid_spd(5);
            let n = g.rows();
            let sym = SymbolicCholesky::analyze(&g, ordering, None).unwrap();
            let chol = sym.factorize(&g).unwrap();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 2.0).collect();
            let x = chol.solve(&b).unwrap();
            let dense = Cholesky::factor(&g.to_dense()).unwrap();
            let x_ref = dense.solve(&b).unwrap();
            assert_close(&x, &x_ref, 1e-9);
        }
    }

    #[test]
    fn llt_reconstructs_permuted_input() {
        let g = grid_spd(4);
        let n = g.rows();
        let sym =
            SymbolicCholesky::analyze(&g, CholeskyOrdering::ReverseCuthillMcKee, None).unwrap();
        let chol = sym.factorize(&g).unwrap();
        let l = chol.l_matrix().to_dense();
        let llt = l.matmul(&l.transpose()).unwrap();
        let perm = chol.permutation();
        for i in 0..n {
            for j in 0..n {
                let expected = g.get(perm[i], perm[j]);
                assert!(
                    (llt[(i, j)] - expected).abs() < 1e-10,
                    "({i},{j}): {} vs {expected}",
                    llt[(i, j)]
                );
            }
        }
    }

    #[test]
    fn rcm_is_a_permutation_and_round_trips() {
        let g = grid_spd(6);
        let perm = rcm_ordering(&g);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.rows()).collect::<Vec<_>>());
        // Inverse round-trip through a symbolic analysis.
        let sym =
            SymbolicCholesky::analyze(&g, CholeskyOrdering::ReverseCuthillMcKee, None).unwrap();
        let p = sym.permutation();
        let mut inv = vec![0usize; p.len()];
        for (new, &old) in p.iter().enumerate() {
            inv[old] = new;
        }
        for old in 0..p.len() {
            assert_eq!(p[inv[old]], old);
        }
    }

    #[test]
    fn rcm_beats_natural_on_an_arrow_matrix() {
        // Arrow pointing the wrong way: a dense hub at index 0 gives the
        // natural order complete fill; RCM orders the hub last → none.
        let n = 24;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, (n + 2) as f64);
            if i > 0 {
                b.push(0, i, 1.0);
                b.push(i, 0, 1.0);
            }
        }
        let g = b.build();
        let natural = SymbolicCholesky::analyze(&g, CholeskyOrdering::Natural, None).unwrap();
        let rcm =
            SymbolicCholesky::analyze(&g, CholeskyOrdering::ReverseCuthillMcKee, None).unwrap();
        assert_eq!(natural.nnz_l(), n * (n + 1) / 2, "hub-first fills in");
        assert_eq!(rcm.nnz_l(), 2 * n - 1, "hub-last has zero fill");
        let auto = SymbolicCholesky::analyze(&g, CholeskyOrdering::Auto, None).unwrap();
        assert_eq!(auto.nnz_l(), rcm.nnz_l());
        assert_eq!(auto.ordering(), CholeskyOrdering::ReverseCuthillMcKee);
    }

    #[test]
    fn fill_cap_aborts_early_and_is_typed() {
        let n = 32;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            for j in 0..n {
                b.push(i, j, if i == j { n as f64 } else { -0.5 });
            }
        }
        let g = b.build();
        let err = SymbolicCholesky::analyze(&g, CholeskyOrdering::Natural, Some(40)).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::FillBudgetExceeded { cap: 40, .. }
        ));
        // Without the cap the same matrix analyzes (and factors) fine.
        let sym = SymbolicCholesky::analyze(&g, CholeskyOrdering::Natural, None).unwrap();
        assert!(sym.factorize(&g).is_ok());
    }

    #[test]
    fn non_positive_definite_pivot_is_typed() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 2.0);
        b.push(1, 0, 2.0);
        b.push(1, 1, 1.0);
        let g = b.build();
        let sym = SymbolicCholesky::analyze(&g, CholeskyOrdering::Natural, None).unwrap();
        assert!(matches!(
            sym.factorize(&g),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn haar_basis_is_orthonormal() {
        for k in [1usize, 2, 3, 6, 8, 13, 32, 100] {
            let q = dyadic_haar_basis(k);
            assert_eq!((q.rows(), q.cols()), (k, k));
            let qtq = q.transpose().matmul(&q).unwrap().to_dense();
            for i in 0..k {
                for j in 0..k {
                    let expected = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (qtq[(i, j)] - expected).abs() < 1e-12,
                        "k={k} ({i},{j}): {}",
                        qtq[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn rotated_hierarchical_gram_factors_with_zero_fill() {
        // The point of the Haar congruence: gram(A·Q) is chordal in its
        // emitted order — natural-order symbolic analysis predicts zero
        // fill, while the unrotated gram is structurally dense.
        for k in [16usize, 48, 64] {
            let a = SparseMatrix::from_dense(&hierarchical_dense(k));
            let q = dyadic_haar_basis(k);
            let bq = a.matmul(&q).unwrap();
            let gram = bq.transpose().matmul(&bq).unwrap();
            let sym = SymbolicCholesky::analyze(&gram, CholeskyOrdering::Natural, None).unwrap();
            let stored_lower = (gram.nnz() + k) / 2;
            // The stored gram may be *sparser* than the structural
            // ancestor-pair pattern (TripletBuilder drops exact-zero
            // cancellations), and those positions come back as "fill";
            // allow that sliver while still pinning the chordal story.
            assert!(
                sym.nnz_l() <= stored_lower + 2,
                "k={k}: natural order fills in ({} vs {stored_lower})",
                sym.nnz_l()
            );
            assert!(
                gram.nnz() < k * k / 2,
                "k={k}: rotated gram must be sparse, got {} nnz",
                gram.nnz()
            );
            // And the factor actually solves the rotated system.
            let chol = sym.factorize(&gram).unwrap();
            let b: Vec<f64> = (0..k).map(|i| (i as f64).cos()).collect();
            let z = chol.solve(&b).unwrap();
            let dense = Cholesky::factor(&gram.to_dense()).unwrap();
            assert_close(&z, &dense.solve(&b).unwrap(), 1e-8);
        }
    }

    #[test]
    fn ic0_is_exact_when_the_pattern_admits_no_fill() {
        // Tridiagonal SPD: lower(G) is the complete Cholesky pattern, so
        // IC(0) and the full factorization coincide.
        let n = 12;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
                b.push(i + 1, i, -1.0);
            }
        }
        let g = b.build();
        let ic = incomplete_cholesky0(&g).unwrap();
        let rhs: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let x = ic.solve(&rhs).unwrap();
        let x_ref = Cholesky::factor(&g.to_dense())
            .unwrap()
            .solve(&rhs)
            .unwrap();
        assert_close(&x, &x_ref, 1e-9);
    }

    #[test]
    fn ic0_breakdown_is_typed() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 3.0);
        b.push(1, 0, 3.0);
        b.push(1, 1, 1.0);
        let g = b.build();
        assert!(matches!(
            incomplete_cholesky0(&g),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn solve_in_place_is_allocation_free_and_reusable() {
        let g = grid_spd(4);
        let n = g.rows();
        let sym = SymbolicCholesky::analyze(&g, CholeskyOrdering::Auto, None).unwrap();
        let chol = sym.factorize(&g).unwrap();
        let mut scratch = vec![0.0; n];
        let dense = Cholesky::factor(&g.to_dense()).unwrap();
        for round in 0..3 {
            let b: Vec<f64> = (0..n).map(|i| (i + round) as f64 * 0.1 + 1.0).collect();
            let mut v = b.clone();
            chol.solve_in_place(&mut v, &mut scratch);
            assert_close(&v, &dense.solve(&b).unwrap(), 1e-9);
        }
    }

    #[test]
    fn symbolic_is_reusable_across_numeric_refactors() {
        let g1 = grid_spd(4);
        // Same pattern, different values.
        let mut b = TripletBuilder::new(g1.rows(), g1.cols());
        for i in 0..g1.rows() {
            for (j, v) in g1.row(i) {
                b.push(i, j, if i == j { v + 3.0 } else { v * 0.5 });
            }
        }
        let g2 = b.build();
        let sym = SymbolicCholesky::analyze(&g1, CholeskyOrdering::Auto, None).unwrap();
        for g in [&g1, &g2] {
            let chol = sym.factorize(g).unwrap();
            let rhs = vec![1.0; g.rows()];
            let x = chol.solve(&rhs).unwrap();
            let x_ref = Cholesky::factor(&g.to_dense())
                .unwrap()
                .solve(&rhs)
                .unwrap();
            assert_close(&x, &x_ref, 1e-9);
        }
    }
}
