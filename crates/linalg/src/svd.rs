//! Singular values and Moore–Penrose pseudoinverses.
//!
//! The matrix mechanism (Section 4.1 / Eq. 2 of the paper) needs `A⁺` for a
//! strategy matrix `A`, and the transformational-equivalence machinery needs
//! the right inverse `P_G⁻¹ = P_Gᵀ (P_G P_Gᵀ)⁻¹`. The Appendix-A lower
//! bounds need singular values of transformed workloads.
//!
//! Singular values are obtained from the eigenvalues of the Gram matrix
//! (`σᵢ(A)² = λᵢ(AᵀA)`), which is accurate to ~√ε of machine precision —
//! more than enough for error bounds that are plotted on log-scale axes.

use crate::cholesky::Cholesky;
use crate::dense::Matrix;
use crate::eigen::eigh;
use crate::LinalgError;

/// Singular values of `a` in descending order.
///
/// Computed from the smaller of the two Gram matrices (`AᵀA` or `AAᵀ`),
/// neither of which materializes a transpose.
pub fn singular_values(a: &Matrix) -> Result<Vec<f64>, LinalgError> {
    let gram = if a.cols() <= a.rows() {
        a.gram()
    } else {
        a.gram_t()
    };
    let mut vals: Vec<f64> = eigh(&gram)?
        .values
        .into_iter()
        .map(|v| v.max(0.0).sqrt())
        .collect();
    vals.reverse();
    Ok(vals)
}

/// Numerical rank: number of singular values above `tol * σ_max`.
pub fn rank(a: &Matrix, tol: f64) -> Result<usize, LinalgError> {
    let sv = singular_values(a)?;
    let smax = sv.first().copied().unwrap_or(0.0);
    if smax == 0.0 {
        return Ok(0);
    }
    Ok(sv.iter().filter(|&&s| s > tol * smax).count())
}

/// How [`pseudoinverse_with_method`] derived `A⁺`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinvMethod {
    /// `A Aᵀ` was SPD (full row rank): `A⁺ = Aᵀ (A Aᵀ)⁻¹` via one
    /// Cholesky matrix solve. `A A⁺ = I` holds exactly; `A⁺ A = I` only
    /// when `A` is square.
    CholeskyRowRank,
    /// `Aᵀ A` was SPD (full column rank): `A⁺ = (Aᵀ A)⁻¹ Aᵀ` via one
    /// Cholesky matrix solve on the normal equations. `A⁺ A = I` holds
    /// exactly — the property that lets the matrix mechanism skip its
    /// support-condition check.
    CholeskyColumnRank,
    /// Neither Gram matrix was positive definite (rank deficient, or a
    /// degenerate empty shape): the eigendecomposition fallback
    /// [`pseudoinverse_eigen`] was used.
    Eigen,
}

/// Moore–Penrose pseudoinverse.
///
/// Fast paths (both a single Cholesky factorization plus one block
/// triangular solve — no explicit inverse, no transpose of the result
/// path's Gram matrix):
/// * full row rank: `A⁺ = Aᵀ (A Aᵀ)⁻¹ = ((A Aᵀ)⁻¹ A)ᵀ`,
/// * full column rank: `A⁺ = (Aᵀ A)⁻¹ Aᵀ` (Cholesky on the normal
///   equations),
///
/// with the eigendecomposition-based [`pseudoinverse_eigen`] as the general
/// fallback when neither Gram matrix is positive definite (rank-deficient
/// matrices).
pub fn pseudoinverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    Ok(pseudoinverse_with_method(a)?.0)
}

/// [`pseudoinverse`] plus a report of which derivation path was taken, so
/// callers (the matrix mechanism) can exploit path-specific guarantees.
pub fn pseudoinverse_with_method(a: &Matrix) -> Result<(Matrix, PinvMethod), LinalgError> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok((Matrix::zeros(n, m), PinvMethod::Eigen));
    }
    if m <= n {
        // Try full row rank: A Aᵀ is m × m.
        let aat = a.gram_t();
        if let Ok(ch) = Cholesky::factor(&aat) {
            let y = ch.solve_matrix(a)?; // (A Aᵀ)⁻¹ A
            return Ok((y.transpose(), PinvMethod::CholeskyRowRank));
        }
    } else {
        // Try full column rank: AᵀA is n × n.
        let ata = a.gram();
        if let Ok(ch) = Cholesky::factor(&ata) {
            let p = ch.solve_matrix(&a.transpose())?; // (Aᵀ A)⁻¹ Aᵀ
            return Ok((p, PinvMethod::CholeskyColumnRank));
        }
    }
    Ok((pseudoinverse_eigen(a)?, PinvMethod::Eigen))
}

/// General pseudoinverse for rank-deficient matrices — also the reference
/// implementation the property tests pin the Cholesky fast paths against.
///
/// Uses `AᵀA = V diag(λ) Vᵀ`; then `A⁺ = V diag(λ⁺) Vᵀ Aᵀ` where
/// `λ⁺ = 1/λ` on the numerically nonzero spectrum.
pub fn pseudoinverse_eigen(a: &Matrix) -> Result<Matrix, LinalgError> {
    let ata = a.gram();
    let eig = eigh(&ata)?;
    let lmax = eig.values.iter().fold(0.0_f64, |acc, &v| acc.max(v));
    let cutoff = lmax * 1e-12;
    let n = ata.rows();
    // V diag(λ⁺) Vᵀ
    let mut vd = eig.vectors.clone();
    for i in 0..n {
        for j in 0..n {
            let lam = eig.values[j];
            vd[(i, j)] *= if lam > cutoff { 1.0 / lam } else { 0.0 };
        }
    }
    let core = vd.matmul(&eig.vectors.transpose())?;
    core.matmul(&a.transpose())
}

/// Checks the four Penrose conditions within `tol` (test helper, but public
/// because downstream crates' tests reuse it).
pub fn is_pseudoinverse(a: &Matrix, aplus: &Matrix, tol: f64) -> bool {
    let Ok(ap) = a.matmul(aplus) else {
        return false;
    };
    let Ok(pa) = aplus.matmul(a) else {
        return false;
    };
    let Ok(apa) = ap.matmul(a) else { return false };
    let Ok(pap) = pa.matmul(aplus) else {
        return false;
    };
    apa.approx_eq(a, tol)
        && pap.approx_eq(aplus, tol)
        && ap.approx_eq(&ap.transpose(), tol)
        && pa.approx_eq(&pa.transpose(), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Matrix::from_vec(m, n, data).unwrap()
    }

    #[test]
    fn singular_values_of_diagonal() {
        let a = Matrix::from_diag(&[3.0, -4.0, 0.0]);
        let sv = singular_values(&a).unwrap();
        assert!((sv[0] - 4.0).abs() < 1e-10);
        assert!((sv[1] - 3.0).abs() < 1e-10);
        assert!(sv[2].abs() < 1e-10);
    }

    #[test]
    fn singular_values_wide_vs_tall_agree() {
        let a = random(4, 7, 1);
        let sv1 = singular_values(&a).unwrap();
        let sv2 = singular_values(&a.transpose()).unwrap();
        for (x, y) in sv1.iter().zip(&sv2) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_detection() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 2.0;
        // Third row is a copy of the first: rank 2.
        a[(2, 0)] = 1.0;
        assert_eq!(rank(&a, 1e-9).unwrap(), 2);
        assert_eq!(rank(&Matrix::identity(4), 1e-9).unwrap(), 4);
        assert_eq!(rank(&Matrix::zeros(2, 2), 1e-9).unwrap(), 0);
    }

    #[test]
    fn pinv_square_invertible() {
        let a = random(5, 5, 2);
        let p = pseudoinverse(&a).unwrap();
        assert!(a.matmul(&p).unwrap().approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn pinv_wide_is_right_inverse() {
        let a = random(3, 6, 3);
        let p = pseudoinverse(&a).unwrap();
        assert!(a.matmul(&p).unwrap().approx_eq(&Matrix::identity(3), 1e-8));
        assert!(is_pseudoinverse(&a, &p, 1e-7));
    }

    #[test]
    fn pinv_tall_is_left_inverse() {
        let a = random(6, 3, 4);
        let p = pseudoinverse(&a).unwrap();
        assert!(p.matmul(&a).unwrap().approx_eq(&Matrix::identity(3), 1e-8));
        assert!(is_pseudoinverse(&a, &p, 1e-7));
    }

    #[test]
    fn pinv_rank_deficient() {
        // Rank-1 matrix: outer product.
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a[(i, j)] = ((i + 1) * (j + 1)) as f64;
            }
        }
        let p = pseudoinverse(&a).unwrap();
        assert!(is_pseudoinverse(&a, &p, 1e-7));
    }

    #[test]
    fn pinv_zero_matrix() {
        let a = Matrix::zeros(2, 3);
        let p = pseudoinverse(&a).unwrap();
        assert_eq!(p.shape(), (3, 2));
        assert!(p.max_abs() < 1e-12);
    }

    #[test]
    fn matrix_mechanism_identity_case() {
        // W A A⁺ = W must hold when rows of W lie in the row space of A
        // (here A = hierarchical-ish strategy spanning R^k).
        let a = random(6, 4, 9); // full column rank w.h.p.
        let w = random(3, 4, 10);
        let ap = pseudoinverse(&a).unwrap();
        let waa = w.matmul(&ap.matmul(&a).unwrap().transpose()).unwrap();
        // A⁺A = I_4 for full column rank, so WA⁺A = W.
        assert!(waa.approx_eq(&w, 1e-8));
    }
}
