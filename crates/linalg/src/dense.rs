//! Dense row-major `f64` matrices.
//!
//! This is the workhorse type behind workload matrices (`W`), strategy
//! matrices (`A`), and the small symmetric systems solved by the lower-bound
//! machinery. The hot kernels are tuned for the plan-and-serve path:
//!
//! * [`Matrix::matmul`] is register-blocked (four strategy rows per sweep of
//!   the output row) and transpose-aware — inner loops only ever walk
//!   contiguous rows, never strided columns;
//! * [`Matrix::gram`] (`AᵀA`) accumulates into row tails via slices, and
//!   [`Matrix::gram_t`] (`AAᵀ`) reduces to unrolled row-pair dot products,
//!   so neither ever materializes a transpose;
//! * [`dot`] and [`Matrix::matvec`] run four independent accumulators so
//!   the FP add chain is not the bottleneck;
//! * [`Matrix::col_view`] is an allocation-free column view for callers
//!   that must read a strided column without copying (e.g. the
//!   eigenvector permutation in `jacobi_eigh`); the former `Vec`-returning
//!   [`Matrix::col`] inner-loop call sites (LU/Cholesky block solves) were
//!   instead restructured to transpose-once / right-looking row sweeps.
//!
//! The straightforward implementations are kept as [`Matrix::matmul_naive`]
//! and [`Matrix::gram_naive`]; property tests
//! (`tests/linalg_properties.rs`) pin the optimized kernels to them within
//! `1e-9` across random shapes. Optimized kernels may reassociate
//! floating-point sums, so results are bit-close, not bit-identical, to the
//! naive references.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::LinalgError;

/// A dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from a slice of rows. All rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|row| row.len() != c) {
            return Err(LinalgError::RaggedRows);
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Builds a diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector. Hot loops should prefer the
    /// allocation-free [`Matrix::col_view`].
    pub fn col(&self, j: usize) -> Vec<f64> {
        self.col_view(j).iter().collect()
    }

    /// Allocation-free view of column `j` (strided access into the
    /// row-major buffer).
    ///
    /// Panics when `j` is out of range — the strided iterator would
    /// otherwise silently yield a wrong-shaped column in release builds.
    #[inline]
    pub fn col_view(&self, j: usize) -> ColView<'_> {
        assert!(
            j < self.cols,
            "column {j} out of range ({} cols)",
            self.cols
        );
        ColView {
            data: &self.data,
            stride: self.cols,
            offset: j,
            len: self.rows,
        }
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer (used by the
    /// factorization kernels to split rows without aliasing).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `self * x` (fused unrolled dot per row).
    ///
    /// Returns an error when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = dot(self.row(i), x);
        }
        Ok(y)
    }

    /// Vector-matrix product `x^T * self` (returns a row vector).
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                got: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (yj, &aij) in y.iter_mut().zip(self.row(i)) {
                *yj += xi * aij;
            }
        }
        Ok(y)
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// i-k-j loop order with 4-way register blocking over `k`: each sweep of
    /// the output row folds in four rows of `other` at once, quartering the
    /// output-row load/store traffic, and every inner loop walks contiguous
    /// memory. Blocks of zero coefficients (common in strategy matrices)
    /// are skipped.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, self.cols),
                got: (other.rows, other.cols),
            });
        }
        let p = other.cols;
        let n = self.cols;
        let mut out = Matrix::zeros(self.rows, p);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * p..(i + 1) * p];
            let mut k = 0;
            while k + 4 <= n {
                let (a0, a1, a2, a3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
                if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
                    let b0 = &other.data[k * p..(k + 1) * p];
                    let b1 = &other.data[(k + 1) * p..(k + 2) * p];
                    let b2 = &other.data[(k + 2) * p..(k + 3) * p];
                    let b3 = &other.data[(k + 3) * p..(k + 4) * p];
                    for j in 0..p {
                        orow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                }
                k += 4;
            }
            while k < n {
                let aik = arow[k];
                if aik != 0.0 {
                    let brow = &other.data[k * p..(k + 1) * p];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += aik * b;
                    }
                }
                k += 1;
            }
        }
        Ok(out)
    }

    /// Reference i-k-j matrix product without register blocking. Kept as
    /// the equivalence baseline for [`Matrix::matmul`] (property tests pin
    /// the two within `1e-9`).
    pub fn matmul_naive(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, self.cols),
                got: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Computes the Gram matrix `self^T * self` exploiting symmetry.
    ///
    /// Accumulates each output-row tail through slices (no per-entry index
    /// arithmetic); same accumulation order as [`Matrix::gram_naive`].
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                let gtail = &mut g.data[i * n + i..(i + 1) * n];
                for (gv, &rv) in gtail.iter_mut().zip(&row[i..]) {
                    *gv += ri * rv;
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g.data[i * n + j] = g.data[j * n + i];
            }
        }
        g
    }

    /// Reference entry-indexed Gram computation. Kept as the equivalence
    /// baseline for [`Matrix::gram`] / [`Matrix::gram_t`].
    pub fn gram_naive(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// The outer Gram matrix `self * self^T` computed directly from row
    /// pairs (`(AAᵀ)_{ij} = ⟨row_i, row_j⟩`) — transpose-aware: equivalent
    /// to `self.transpose().gram()` without ever materializing the
    /// transpose.
    pub fn gram_t(&self) -> Matrix {
        let m = self.rows;
        let mut g = Matrix::zeros(m, m);
        for i in 0..m {
            for j in i..m {
                let v = dot(self.row(i), self.row(j));
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        g
    }

    /// Scales every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum column L1 norm — the L1 operator norm, which is exactly the
    /// (unbounded) differential-privacy sensitivity of a query matrix.
    pub fn max_col_l1(&self) -> f64 {
        let mut norms = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (n, &v) in norms.iter_mut().zip(self.row(i)) {
                *n += v.abs();
            }
        }
        norms.into_iter().fold(0.0_f64, f64::max)
    }

    /// Sum of squares of row `i` (used for per-query matrix-mechanism error).
    pub fn row_sq_norm(&self, i: usize) -> f64 {
        self.row(i).iter().map(|v| v * v).sum()
    }

    /// Entrywise approximate comparison within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Horizontally stacks `self` and `other` (same row count).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, other.cols),
                got: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Vertically stacks `self` and `other` (same column count).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (other.rows, self.cols),
                got: (other.rows, other.cols),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Removes column `j`, returning a new matrix (used by the Case II
    /// bounded-policy reduction that drops a domain value).
    pub fn drop_col(&self, j: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols - 1);
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            dst[..j].copy_from_slice(&src[..j]);
            dst[j..].copy_from_slice(&src[j + 1..]);
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
            .expect("matrix multiplication shape mismatch")
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let cshow = self.cols.min(10);
            for j in 0..cshow {
                write!(f, "{:9.4}", self[(i, j)])?;
                if j + 1 < cshow {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 10 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// An allocation-free, strided view of one matrix column. Created by
/// [`Matrix::col_view`]; use it wherever a column must be read without
/// copying (e.g. the eigenvector permutation in `jacobi_eigh`) —
/// [`Matrix::col`] itself is now a thin copying wrapper over it.
#[derive(Clone, Copy, Debug)]
pub struct ColView<'a> {
    data: &'a [f64],
    stride: usize,
    offset: usize,
    len: usize,
}

impl ColView<'_> {
    /// Number of entries (the matrix row count).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entry `i` of the column.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.data[self.offset + i * self.stride]
    }

    /// Iterates the column entries top to bottom.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.data
            .iter()
            .skip(self.offset)
            .step_by(self.stride.max(1))
            .take(self.len)
            .copied()
    }
}

impl Index<usize> for ColView<'_> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[self.offset + i * self.stride]
    }
}

/// Dot product of two equal-length slices, unrolled over four independent
/// accumulators so the floating-point add latency chain is not the
/// bottleneck. Reassociates the sum relative to a sequential fold (results
/// are bit-close, not bit-identical, for lengths above 4).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let head = n - n % 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i < head {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut s = (s0 + s1) + (s2 + s3);
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

/// L1 norm of a slice.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// L2 norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L-infinity norm of a slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// `a - b` elementwise.
pub fn sub_vec(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + b` elementwise.
pub fn add_vec(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// `a + s * b` elementwise (axpy).
pub fn axpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert_eq!(i.row(2), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn from_vec_shape_checked() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matvec_known() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]).unwrap();
        let y = m.matvec(&[3.0, 2.0, 1.0]).unwrap();
        assert_eq!(y, vec![5.0, 4.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn vecmat_matches_transpose_matvec() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]).unwrap();
        let x = [2.0, -1.0];
        let a = m.vecmat(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 0.0));
        assert!(i.matmul(&m).unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.0, -1.0, 3.0, 1.0]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
        assert!(g.approx_eq(&a.gram_naive(), 0.0));
    }

    #[test]
    fn gram_t_matches_transposed_gram() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.0, -1.0, 3.0, 1.0]).unwrap();
        let gt = a.gram_t();
        assert_eq!(gt.shape(), (3, 3));
        assert!(gt.approx_eq(&a.transpose().gram(), 1e-12));
        assert!(gt.approx_eq(&a.matmul(&a.transpose()).unwrap(), 1e-12));
    }

    #[test]
    fn blocked_matmul_matches_naive() {
        // Shapes straddling the 4-way unroll boundary, with zero blocks.
        for (m, k, p) in [(3usize, 4usize, 5usize), (5, 9, 3), (2, 11, 7)] {
            let mut a = Matrix::zeros(m, k);
            let mut b = Matrix::zeros(k, p);
            for i in 0..m {
                for j in 0..k {
                    a[(i, j)] = if (i + j) % 3 == 0 {
                        0.0
                    } else {
                        (i * k + j) as f64 - 3.0
                    };
                }
            }
            for i in 0..k {
                for j in 0..p {
                    b[(i, j)] = ((i * p + j) % 5) as f64 - 2.0;
                }
            }
            let fast = a.matmul(&b).unwrap();
            let naive = a.matmul_naive(&b).unwrap();
            assert!(fast.approx_eq(&naive, 1e-9), "{m}x{k}x{p}");
        }
    }

    #[test]
    fn col_view_matches_col() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let v = m.col_view(1);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.get(2), 6.0);
        assert_eq!(v[0], 2.0);
        assert_eq!(v.iter().collect::<Vec<f64>>(), m.col(1));
    }

    #[test]
    fn max_col_l1_is_sensitivity() {
        // C_k (prefix sums) has sensitivity k: the first column is all ones.
        let k = 5;
        let mut c = Matrix::zeros(k, k);
        for i in 0..k {
            for j in 0..=i {
                c[(i, j)] = 1.0;
            }
        }
        assert_eq!(c.max_col_l1(), k as f64);
        assert_eq!(Matrix::identity(k).max_col_l1(), 1.0);
    }

    #[test]
    fn stack_and_drop_col() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 1);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 2));
        let d = h.drop_col(1);
        assert_eq!(d.shape(), (2, 2));
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 1)], 0.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm1(&[-1.0, 2.0]), 3.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(sub_vec(&[3.0], &[1.0]), vec![2.0]);
        assert_eq!(add_vec(&[3.0], &[1.0]), vec![4.0]);
        assert_eq!(axpy(&[1.0], 2.0, &[3.0]), vec![7.0]);
    }

    #[test]
    fn operators() {
        let a = Matrix::identity(2);
        let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let s = &a + &b;
        assert_eq!(s[(0, 1)], 1.0);
        let d = &s - &b;
        assert!(d.approx_eq(&a, 0.0));
        let n = -&a;
        assert_eq!(n[(0, 0)], -1.0);
        let p = &a * &b;
        assert!(p.approx_eq(&b, 0.0));
    }

    #[test]
    fn row_sq_norm_and_norms() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 4.0, 1.0, 0.0]).unwrap();
        assert_eq!(m.row_sq_norm(0), 25.0);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - 26.0_f64.sqrt()).abs() < 1e-12);
    }
}
