//! Dense LU factorization with partial pivoting.
//!
//! General-purpose square solver used for inverting tree incidence matrices
//! (`P_G` is square and invertible when `G` is a tree) and anywhere a system
//! is not symmetric positive-definite.

use crate::dense::Matrix;
use crate::LinalgError;

/// LU factorization `P A = L U` with partial pivoting.
#[derive(Clone, Debug)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper, on/above).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// Returns [`LinalgError::Singular`] when a pivot column is numerically
    /// zero.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_abs().max(1.0);
        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below row.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= 1e-13 * scale {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                perm.swap(pivot_row, col);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let p = lu[(col, col)];
            for r in (col + 1)..n {
                let m = lu[(r, col)] / p;
                lu[(r, col)] = m;
                if m != 0.0 {
                    for j in (col + 1)..n {
                        let v = lu[(col, j)];
                        lu[(r, j)] -= m * v;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let row = self.lu.row(i);
            let mut v = y[i];
            for k in 0..i {
                v -= row[k] * y[k];
            }
            y[i] = v;
        }
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut v = y[i];
            for k in (i + 1)..n {
                v -= row[k] * y[k];
            }
            y[i] = v / row[i];
        }
        Ok(y)
    }

    /// Solves `A X = B` column by column (transpose-once pattern: `B` is
    /// transposed a single time so each column solve reads a contiguous
    /// row instead of allocating a strided column copy).
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, b.cols()),
                got: b.shape(),
            });
        }
        let bt = b.transpose();
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(bt.row(j))?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// The inverse `A⁻¹`.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.lu.rows()))
    }

    /// Determinant of `A`.
    pub fn determinant(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_vec(3, 3, vec![2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[4.0, 5.0, 6.0]).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&[4.0, 5.0, 6.0]) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_vec(3, 3, vec![1.0, 2.0, 3.0, 0.0, 1.0, 4.0, 5.0, 6.0, 0.0]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-9));
        assert!(inv
            .matmul(&a)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 8.0, 4.0, 6.0]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.determinant() - (-14.0)).abs() < 1e-10);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((lu.determinant() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn prefix_sum_matrix_inverts_to_differences() {
        // C_k (lower-triangular ones) is the inverse of P_G for the line
        // policy (Example 4.1 in the paper). Its inverse is the forward
        // difference matrix.
        let k = 5;
        let mut c = Matrix::zeros(k, k);
        for i in 0..k {
            for j in 0..=i {
                c[(i, j)] = 1.0;
            }
        }
        let inv = Lu::factor(&c).unwrap().inverse().unwrap();
        for i in 0..k {
            for j in 0..k {
                let expected = if i == j {
                    1.0
                } else if j + 1 == i {
                    -1.0
                } else {
                    0.0
                };
                assert!((inv[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(Lu::factor(&Matrix::zeros(2, 3)).is_err());
    }
}
