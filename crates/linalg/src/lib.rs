//! # blowfish-linalg
//!
//! Self-contained dense + sparse linear algebra for the `blowfish-privacy`
//! workspace — the numerical substrate behind the policy-aware private
//! mechanisms of *Haney, Machanavajjhala & Ding, "Design of Policy-Aware
//! Differentially Private Algorithms" (VLDB 2015)*.
//!
//! The paper's machinery needs, concretely:
//!
//! * workload matrices and their products (dense + CSR sparse),
//! * Moore–Penrose pseudoinverses for the matrix mechanism `M_A(W, x) =
//!   Wx + WA⁺ Lap(Δ_A/ε)` (Eq. 2),
//! * right inverses `P_G⁻¹ = P_Gᵀ (P_G P_Gᵀ)⁻¹` of policy incidence
//!   matrices (Section 4.4), where `P_G P_Gᵀ` is a grounded graph Laplacian
//!   (Cholesky when small, conjugate gradient when sparse/large),
//! * symmetric eigendecompositions and singular values for the Appendix-A
//!   SVD lower bounds (Figure 10).
//!
//! No external linear-algebra crates are used; everything here is
//! implemented from scratch and cross-checked by redundant algorithms
//! (QL vs Jacobi eigensolvers, Cholesky vs LU solves).

pub mod cg;
pub mod cholesky;
pub mod dense;
pub mod eigen;
pub mod lu;
pub mod sparse;
pub mod sparse_cholesky;
pub mod svd;

pub use cg::{
    conjugate_gradient, solve_gram_system, solve_gram_system_with, solve_normal_equations,
    solve_normal_equations_with, CgOptions, CgSolution, CgWorkspace, GramPreconditioner,
};
pub use cholesky::Cholesky;
pub use dense::{add_vec, axpy, dot, norm1, norm2, norm_inf, sub_vec, ColView, Matrix};
pub use eigen::{eigenvalues, eigh, jacobi_eigh, sqrt_psd, SymmetricEigen};
pub use lu::Lu;
pub use sparse::{SparseMatrix, TripletBuilder};
pub use sparse_cholesky::{
    dyadic_haar_basis, incomplete_cholesky0, rcm_ordering, CholeskyOrdering, SparseCholesky,
    SymbolicCholesky,
};
pub use svd::{
    is_pseudoinverse, pseudoinverse, pseudoinverse_eigen, pseudoinverse_with_method, rank,
    singular_values, PinvMethod,
};

/// Errors reported by the linear-algebra substrate.
#[derive(Clone, Debug, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// The shape the operation required.
        expected: (usize, usize),
        /// The shape it received.
        got: (usize, usize),
    },
    /// A square matrix was required.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// Rows of differing lengths were supplied to a row-wise constructor.
    RaggedRows,
    /// Cholesky pivot failure: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// A negative eigenvalue was found where a PSD matrix was required.
    NotPositiveSemidefinite {
        /// The offending eigenvalue.
        eigenvalue: f64,
    },
    /// LU pivot failure: the matrix is numerically singular.
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// An iterative method exhausted its iteration budget.
    NoConvergence {
        /// Human-readable description of the method.
        what: &'static str,
        /// The iteration budget that was exhausted.
        iterations: usize,
    },
    /// A symbolic Cholesky analysis predicted more factor fill than the
    /// caller's budget allows (the analysis aborts early, so
    /// `predicted_at_least` is a lower bound on the true fill).
    FillBudgetExceeded {
        /// Running nnz(L) when the analysis aborted.
        predicted_at_least: usize,
        /// The fill budget that was exceeded.
        cap: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "square matrix required, got {rows}x{cols}")
            }
            LinalgError::RaggedRows => write!(f, "rows have differing lengths"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NotPositiveSemidefinite { eigenvalue } => {
                write!(f, "matrix is not PSD (eigenvalue {eigenvalue})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is numerically singular (pivot {pivot})")
            }
            LinalgError::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge within {iterations} iterations")
            }
            LinalgError::FillBudgetExceeded {
                predicted_at_least,
                cap,
            } => {
                write!(
                    f,
                    "cholesky fill budget exceeded: ≥{predicted_at_least} nnz predicted, cap {cap}"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = LinalgError::ShapeMismatch {
            expected: (2, 2),
            got: (3, 1),
        };
        assert!(e.to_string().contains("shape mismatch"));
        let e = LinalgError::NoConvergence {
            what: "cg",
            iterations: 10,
        };
        assert!(e.to_string().contains("did not converge"));
    }

    #[test]
    fn cross_module_smoke() {
        // P_G for a 3-vertex line with ⊥ at the right (Figure 2 of the
        // paper): P = [[1,0,0],[-1,1,0],[0,-1,1]], whose inverse is the
        // prefix-sum matrix C_3.
        let p =
            Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, -1.0, 1.0, 0.0, 0.0, -1.0, 1.0]).unwrap();
        let inv = Lu::factor(&p).unwrap().inverse().unwrap();
        let mut c3 = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..=i {
                c3[(i, j)] = 1.0;
            }
        }
        assert!(inv.approx_eq(&c3, 1e-12));
        // And the pseudoinverse agrees with the true inverse here.
        let pinv = pseudoinverse(&p).unwrap();
        assert!(pinv.approx_eq(&c3, 1e-8));
    }
}
