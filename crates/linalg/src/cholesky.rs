//! Dense Cholesky factorization for symmetric positive-definite systems.
//!
//! This is the planning kernel behind the matrix-mechanism pseudoinverse
//! (`A⁺` via the normal equations, see [`crate::svd::pseudoinverse`]) and
//! small grounded-Laplacian solves where the conjugate-gradient route is
//! unnecessary. The factorization is the row-oriented Cholesky–Crout
//! variant whose inner loops are unrolled [`dot`] products over row
//! prefixes, and the triangular substitutions run *right-looking* so both
//! the forward and backward passes only ever touch contiguous rows of `L`
//! — [`Cholesky::solve_matrix`] performs whole-row axpy updates on the
//! RHS block instead of solving (and allocating) column by column.

use crate::dense::{dot, Matrix};
use crate::LinalgError;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot drops below
    /// a tiny positive tolerance (the matrix is singular or indefinite).
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        // Row-oriented Cholesky–Crout: row i is completed in one pass, with
        // every inner reduction a dot product of two finished row prefixes.
        for i in 0..n {
            let (done, rest) = l.as_mut_slice().split_at_mut(i * n);
            let lrow = &mut rest[..n];
            for j in 0..i {
                let ljrow = &done[j * n..j * n + j];
                let s = a[(i, j)] - dot(&lrow[..j], ljrow);
                lrow[j] = s / done[j * n + j];
            }
            let diag = a[(i, i)] - dot(&lrow[..i], &lrow[..i]);
            if diag <= 1e-12 * (1.0 + a[(i, i)].abs()) {
                return Err(LinalgError::NotPositiveDefinite { pivot: i });
            }
            lrow[i] = diag.sqrt();
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        // Forward: L y = b (dot over the finished prefix).
        let mut y = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            y[i] = (y[i] - dot(&row[..i], &y[..i])) / row[i];
        }
        // Backward: Lᵀ x = y, right-looking — once x_i is known, its
        // contribution `L[i][k]·x_i` is pushed into every earlier equation
        // using row `i` of `L` (contiguous), instead of gathering the
        // strided column `L[·][i]`.
        for i in (0..n).rev() {
            let row = self.l.row(i);
            let xi = y[i] / row[i];
            y[i] = xi;
            if xi != 0.0 {
                for (yk, &lik) in y[..i].iter_mut().zip(&row[..i]) {
                    *yk -= lik * xi;
                }
            }
        }
        Ok(y)
    }

    /// Solves `A X = B` for a whole RHS block at once: the forward and
    /// backward substitutions run as row-axpy updates over `B`'s rows, so
    /// no per-column gather or allocation happens (this is what makes
    /// [`Cholesky::inverse`] and the solve-based pseudoinverse paths
    /// cheap).
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, b.cols()),
                got: b.shape(),
            });
        }
        let p = b.cols();
        let mut y = b.clone();
        // Forward: L Y = B.
        for i in 0..n {
            let lrow = self.l.row(i);
            let (above, rest) = y.as_mut_slice().split_at_mut(i * p);
            let yrow = &mut rest[..p];
            for (k, &lik) in lrow[..i].iter().enumerate() {
                if lik != 0.0 {
                    let yk = &above[k * p..(k + 1) * p];
                    for (v, &u) in yrow.iter_mut().zip(yk) {
                        *v -= lik * u;
                    }
                }
            }
            let d = lrow[i];
            for v in yrow.iter_mut() {
                *v /= d;
            }
        }
        // Backward: Lᵀ X = Y, right-looking over rows.
        for i in (0..n).rev() {
            let lrow = self.l.row(i);
            let (above, rest) = y.as_mut_slice().split_at_mut(i * p);
            {
                let xrow = &mut rest[..p];
                let d = lrow[i];
                for v in xrow.iter_mut() {
                    *v /= d;
                }
            }
            let xrow = &rest[..p];
            for (k, &lik) in lrow[..i].iter().enumerate() {
                if lik != 0.0 {
                    let yk = &mut above[k * p..(k + 1) * p];
                    for (u, &x) in yk.iter_mut().zip(xrow) {
                        *u -= lik * x;
                    }
                }
            }
        }
        Ok(y)
    }

    /// The inverse `A⁻¹` (solve against the identity).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.l.rows()))
    }

    /// `det(A) = prod(L_ii)^2`.
    pub fn determinant(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.l.rows() {
            d *= self.l[(i, i)];
        }
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B^T B + I for a random-ish B, guaranteed SPD.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.l();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.determinant() - 24.0).abs() < 1e-10);
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&x).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn grounded_laplacian_of_path_is_spd() {
        // P P^T for the 4-vertex line policy with ⊥ attached at the right
        // end: vertex degrees (1, 2, 2, 2), off-diagonal -1. SPD because the
        // ⊥ edge grounds the Laplacian.
        let grounded = Matrix::from_vec(
            4,
            4,
            vec![
                1.0, -1.0, 0.0, 0.0, //
                -1.0, 2.0, -1.0, 0.0, //
                0.0, -1.0, 2.0, -1.0, //
                0.0, 0.0, -1.0, 2.0,
            ],
        )
        .unwrap();
        assert!(Cholesky::factor(&grounded).is_ok());

        // The ordinary (ungrounded) path Laplacian is singular and must be
        // rejected.
        let singular = Matrix::from_vec(
            4,
            4,
            vec![
                1.0, -1.0, 0.0, 0.0, //
                -1.0, 2.0, -1.0, 0.0, //
                0.0, -1.0, 2.0, -1.0, //
                0.0, 0.0, -1.0, 1.0,
            ],
        )
        .unwrap();
        assert!(Cholesky::factor(&singular).is_err());
    }
}
