//! Dense Cholesky factorization for symmetric positive-definite systems.
//!
//! Used for the full-row-rank pseudoinverse path `A⁺ = Aᵀ(AAᵀ)⁻¹` and for
//! small grounded-Laplacian solves where the conjugate-gradient route is
//! unnecessary.

use crate::dense::Matrix;
use crate::LinalgError;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot drops below
    /// a tiny positive tolerance (the matrix is singular or indefinite).
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 1e-12 * (1.0 + a[(j, j)].abs()) {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        // Forward: L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let mut v = y[i];
            for k in 0..i {
                v -= row[k] * y[k];
            }
            y[i] = v / row[i];
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut v = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                v -= self.l[(k, i)] * yk;
            }
            y[i] = v / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, b.cols()),
                got: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// The inverse `A⁻¹` (solve against the identity).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.l.rows()))
    }

    /// `det(A) = prod(L_ii)^2`.
    pub fn determinant(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.l.rows() {
            d *= self.l[(i, i)];
        }
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B^T B + I for a random-ish B, guaranteed SPD.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.l();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.determinant() - 24.0).abs() < 1e-10);
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&x).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn grounded_laplacian_of_path_is_spd() {
        // P P^T for the 4-vertex line policy with ⊥ attached at the right
        // end: vertex degrees (1, 2, 2, 2), off-diagonal -1. SPD because the
        // ⊥ edge grounds the Laplacian.
        let grounded = Matrix::from_vec(
            4,
            4,
            vec![
                1.0, -1.0, 0.0, 0.0, //
                -1.0, 2.0, -1.0, 0.0, //
                0.0, -1.0, 2.0, -1.0, //
                0.0, 0.0, -1.0, 2.0,
            ],
        )
        .unwrap();
        assert!(Cholesky::factor(&grounded).is_ok());

        // The ordinary (ungrounded) path Laplacian is singular and must be
        // rejected.
        let singular = Matrix::from_vec(
            4,
            4,
            vec![
                1.0, -1.0, 0.0, 0.0, //
                -1.0, 2.0, -1.0, 0.0, //
                0.0, -1.0, 2.0, -1.0, //
                0.0, 0.0, -1.0, 1.0,
            ],
        )
        .unwrap();
        assert!(Cholesky::factor(&singular).is_err());
    }
}
