//! Symmetric eigensolvers.
//!
//! Two independent implementations:
//!
//! * [`eigh`] — Householder tridiagonalization followed by implicit-shift QL
//!   iteration (the classic EISPACK `tred2`/`tql2` pair). O(n³) with a small
//!   constant; the default.
//! * [`jacobi_eigh`] — cyclic Jacobi rotations. Slower but conceptually
//!   independent; the test-suite cross-checks the two against each other on
//!   random symmetric matrices.
//!
//! Both return eigenvalues in ascending order together with an orthogonal
//! matrix of column eigenvectors. The lower-bound machinery of Appendix A
//! (Figure 10) consumes these to compute singular values of transformed
//! workloads `W_G`.

use crate::dense::Matrix;
use crate::LinalgError;

/// Eigen decomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthogonal matrix whose columns are the corresponding eigenvectors.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Reconstructs `V diag(λ) Vᵀ` (primarily for tests).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut vd = self.vectors.clone();
        for i in 0..n {
            for j in 0..n {
                vd[(i, j)] *= self.values[j];
            }
        }
        vd.matmul(&self.vectors.transpose()).expect("shapes agree")
    }
}

/// Symmetric eigendecomposition via Householder tridiagonalization + QL.
///
/// The input must be square and (numerically) symmetric; symmetry is
/// enforced by averaging `A` with `Aᵀ` before decomposition so tiny
/// asymmetries from accumulated floating-point error are harmless.
pub fn eigh(a: &Matrix) -> Result<SymmetricEigen, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymmetricEigen {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    // Symmetrize defensively.
    let mut z = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            z[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    let mut d = vec![0.0; n]; // diagonal
    let mut e = vec![0.0; n]; // off-diagonal
    tred2(&mut z, &mut d, &mut e);
    // Transpose-once pattern: `tql2`'s rotation loop touches eigenvector
    // *columns* of the accumulated transformation — strided in row-major
    // storage. Holding the transpose during the iteration turns every
    // rotation into a contiguous two-row sweep; the final sort then reads
    // eigenvector `j` from row `j`.
    let mut zt = z.transpose();
    tql2(&mut zt, &mut d, &mut e)?;
    // Sort ascending, permuting eigenvector rows (of `zt`) alongside.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let zrow = zt.row(old_j);
        for i in 0..n {
            vectors[(i, new_j)] = zrow[i];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

/// Householder reduction of a real symmetric matrix to tridiagonal form.
///
/// On exit `z` holds the accumulated orthogonal transformation, `d` the
/// diagonal and `e` the sub-diagonal (with `e[0] = 0`). Port of the EISPACK
/// `tred2` routine (as presented in Numerical Recipes).
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix,
/// accumulating the eigenvectors into the *rows* of `zt` (the transposed
/// transformation from `tred2`), so each plane rotation updates two
/// contiguous rows instead of two strided columns. Port of EISPACK `tql2`.
fn tql2(zt: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<(), LinalgError> {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(LinalgError::NoConvergence {
                    what: "tql2 QL iteration",
                    iterations: 50,
                });
            }
            // Form implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix:
                // rows i and i+1 of the transposed storage, contiguous.
                {
                    let (head, tail) = zt.as_mut_slice().split_at_mut((i + 1) * n);
                    let row_i = &mut head[i * n..];
                    let row_i1 = &mut tail[..n];
                    for (vi, vi1) in row_i.iter_mut().zip(row_i1.iter_mut()) {
                        let f = *vi1;
                        *vi1 = s * *vi + c * f;
                        *vi = c * *vi - s * f;
                    }
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Symmetric eigendecomposition via the cyclic Jacobi method.
///
/// Independent of [`eigh`]; used as a cross-check and for callers who prefer
/// the (more robust, slower) rotation method.
pub fn jacobi_eigh(a: &Matrix) -> Result<SymmetricEigen, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    // Symmetrize defensively.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
            m[(i, j)] = avg;
            m[(j, i)] = avg;
        }
    }
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    for sweep in 0..=max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * (1.0 + m.max_abs()) {
            break;
        }
        if sweep == max_sweeps {
            return Err(LinalgError::NoConvergence {
                what: "Jacobi eigenvalue sweeps",
                iterations: max_sweeps,
            });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation J(p, q, θ) on both sides.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let col = v.col_view(old_j);
        for i in 0..n {
            vectors[(i, new_j)] = col.get(i);
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

/// Eigenvalues only, ascending (convenience wrapper over [`eigh`]).
pub fn eigenvalues(a: &Matrix) -> Result<Vec<f64>, LinalgError> {
    Ok(eigh(a)?.values)
}

/// Symmetric positive-semidefinite square root `A^{1/2} = V diag(√λ) Vᵀ`.
///
/// Negative eigenvalues within `-tol` are clamped to zero; larger negative
/// eigenvalues are an error (the matrix is not PSD).
pub fn sqrt_psd(a: &Matrix, tol: f64) -> Result<Matrix, LinalgError> {
    let eig = eigh(a)?;
    let scale = eig
        .values
        .iter()
        .fold(0.0_f64, |m, v| m.max(v.abs()))
        .max(1.0);
    let mut sqrt_vals = Vec::with_capacity(eig.values.len());
    for &v in &eig.values {
        if v < -tol * scale {
            return Err(LinalgError::NotPositiveSemidefinite { eigenvalue: v });
        }
        sqrt_vals.push(v.max(0.0).sqrt());
    }
    let n = eig.values.len();
    let mut vd = eig.vectors.clone();
    for i in 0..n {
        for j in 0..n {
            vd[(i, j)] *= sqrt_vals[j];
        }
    }
    vd.matmul(&eig.vectors.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = rng.gen_range(-1.0..1.0);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = eigh(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = eigh(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_random() {
        for seed in 0..5 {
            let a = random_symmetric(12, seed);
            let e = eigh(&a).unwrap();
            assert!(
                e.reconstruct().approx_eq(&a, 1e-9),
                "reconstruction failed for seed {seed}"
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(10, 42);
        let e = eigh(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(10), 1e-9));
    }

    #[test]
    fn jacobi_matches_ql() {
        for seed in 0..4 {
            let a = random_symmetric(9, 100 + seed);
            let e1 = eigh(&a).unwrap();
            let e2 = jacobi_eigh(&a).unwrap();
            for (v1, v2) in e1.values.iter().zip(&e2.values) {
                assert!(
                    (v1 - v2).abs() < 1e-8,
                    "eigenvalue mismatch: {v1} vs {v2} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn jacobi_reconstruction() {
        let a = random_symmetric(8, 7);
        let e = jacobi_eigh(&a).unwrap();
        assert!(e.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn path_laplacian_spectrum() {
        // The path-graph Laplacian on n vertices has eigenvalues
        // 4 sin²(πk / 2n) for k = 0..n-1 — a classic closed form.
        let n = 6;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l[(i, i)] = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            if i + 1 < n {
                l[(i, i + 1)] = -1.0;
                l[(i + 1, i)] = -1.0;
            }
        }
        let vals = eigenvalues(&l).unwrap();
        for (k, v) in vals.iter().enumerate() {
            let expected = 4.0
                * (std::f64::consts::PI * k as f64 / (2.0 * n as f64))
                    .sin()
                    .powi(2);
            assert!(
                (v - expected).abs() < 1e-9,
                "eigenvalue {k}: got {v}, expected {expected}"
            );
        }
    }

    #[test]
    fn sqrt_psd_squares_back() {
        let b = random_symmetric(6, 3);
        let a = b.matmul(&b.transpose()).unwrap(); // PSD
        let s = sqrt_psd(&a, 1e-9).unwrap();
        assert!(s.matmul(&s).unwrap().approx_eq(&a, 1e-8));
    }

    #[test]
    fn sqrt_psd_rejects_indefinite() {
        let a = Matrix::from_diag(&[1.0, -1.0]);
        assert!(sqrt_psd(&a, 1e-9).is_err());
    }

    #[test]
    fn rejects_non_square() {
        assert!(eigh(&Matrix::zeros(2, 3)).is_err());
        assert!(jacobi_eigh(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_matrix() {
        let e = eigh(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn repeated_eigenvalues() {
        let a = Matrix::identity(5).scaled(2.0);
        let e = eigh(&a).unwrap();
        for v in &e.values {
            assert!((v - 2.0).abs() < 1e-12);
        }
        assert!(e.reconstruct().approx_eq(&a, 1e-10));
    }
}
