//! Strategies for the line policy `G¹_k` (Algorithm 1 + Section 5.4).
//!
//! Under `G¹_k` the transformed database `x_G = P_G⁻¹x` is the vector of
//! prefix sums (Example 4.1), and Blowfish neighbors map to unit changes of
//! a single prefix (Claim 4.2). The strategies here estimate `x̃_G` under
//! ordinary unbounded ε-DP and answer everything by differencing:
//!
//! * `Transformed + Laplace` — Algorithm 1 / Theorem 5.2: `Θ(1/ε²)` per
//!   range query, beating Privelet's `O(log³k/ε²)` by the full polylog.
//! * `Transformed + ConsistentEst` — isotonic post-processing (prefix sums
//!   are non-decreasing; Section 5.4.2).
//! * `Trans + DAWA (+ Cons)` — DAWA on the transformed database
//!   (Section 5.4.1), valid because `G¹_k` is a tree (Theorem 4.3).
//!
//! A generic tree-policy variant works for any tree `G` through the
//! [`Incidence`] machinery.

use std::sync::Arc;

use rand::{Rng, RngCore};

use blowfish_core::{DataVector, Epsilon, Incidence};
use blowfish_mechanisms::{
    consistent_prefix_estimate, dawa_histogram, hierarchical_histogram, laplace_histogram,
    DawaOptions,
};

use crate::mechanism::{Estimate, Mechanism};
use crate::StrategyError;

/// How to estimate the transformed (edge-space) database of a tree policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeEstimator {
    /// Laplace noise per edge value (the data-independent Algorithm 1).
    Laplace,
    /// Laplace + isotonic consistency (`Transformed + ConsistentEst`).
    /// Only meaningful when the edge values are non-decreasing in edge
    /// order — true for the line policy's prefix sums.
    LaplaceConsistent,
    /// DAWA on the transformed database (`Trans + DAWA`).
    Dawa,
    /// DAWA + isotonic consistency (`Trans + DAWA + Cons`).
    DawaConsistent,
    /// Hay's hierarchical estimator on the transformed database — an
    /// extension beyond the paper toward its stated open question
    /// ("designing data dependent Blowfish mechanisms for Hist under G¹_k
    /// with optimal error"): the WLS tree shares budget across prefix
    /// scales, trading Algorithm 1's Θ(1/ε²) short-range error for better
    /// long-range behaviour.
    Hierarchical,
    /// Hierarchical + isotonic consistency.
    HierarchicalConsistent,
}

impl TreeEstimator {
    /// Short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            TreeEstimator::Laplace => "Transformed + Laplace",
            TreeEstimator::LaplaceConsistent => "Transformed + ConsistentEst",
            TreeEstimator::Dawa => "Trans + Dawa",
            TreeEstimator::DawaConsistent => "Trans + Dawa + Cons",
            TreeEstimator::Hierarchical => "Trans + Hierarchical",
            TreeEstimator::HierarchicalConsistent => "Trans + Hier + Cons",
        }
    }
}

/// Estimates an edge-space vector under unbounded ε-DP with the chosen
/// estimator. `monotone_total` enables the isotonic variants (pass the
/// public database total).
fn estimate_edges<R: Rng + ?Sized>(
    x_g: &[f64],
    eps: Epsilon,
    estimator: TreeEstimator,
    monotone_total: Option<f64>,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    let raw = match estimator {
        TreeEstimator::Laplace | TreeEstimator::LaplaceConsistent => {
            laplace_histogram(x_g, 1.0, eps, rng)?
        }
        TreeEstimator::Dawa | TreeEstimator::DawaConsistent => {
            dawa_histogram(x_g, eps, DawaOptions::default(), rng)?
        }
        TreeEstimator::Hierarchical | TreeEstimator::HierarchicalConsistent => {
            hierarchical_histogram(x_g, eps, rng)?
        }
    };
    match estimator {
        TreeEstimator::LaplaceConsistent
        | TreeEstimator::DawaConsistent
        | TreeEstimator::HierarchicalConsistent => {
            let total = monotone_total.ok_or(StrategyError::BadQuery {
                what: "consistency requires the public total (monotone edge order)",
            })?;
            Ok(consistent_prefix_estimate(&raw, total))
        }
        _ => Ok(raw),
    }
}

/// The `(ε, G¹_k)`-Blowfish line strategy as a [`Mechanism`]: estimates
/// the prefix sums under ε-DP and differences them back to cell counts,
/// reconstructing the last cell from the public total `n` (Case II).
#[derive(Clone, Copy, Debug)]
pub struct LineMechanism {
    eps: Epsilon,
    estimator: TreeEstimator,
}

impl LineMechanism {
    /// Binds the budget and edge-space estimator.
    pub fn new(eps: Epsilon, estimator: TreeEstimator) -> Self {
        LineMechanism { eps, estimator }
    }

    /// The chosen edge-space estimator.
    pub fn estimator(&self) -> TreeEstimator {
        self.estimator
    }

    /// Releases the histogram estimate `x̂` over the full domain (generic
    /// over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        let k = x.len();
        if k < 2 {
            return Err(StrategyError::BadQuery {
                what: "line policy needs at least 2 domain values",
            });
        }
        let n = x.total();
        // x_G: the first k−1 prefix sums (the k-th is the public n).
        let full_prefix = x.prefix_sums();
        let x_g = &full_prefix[..k - 1];
        let x_tilde = estimate_edges(x_g, self.eps, self.estimator, Some(n), rng)?;
        // Difference back: x̂[0] = x̃_G[0]; x̂[i] = x̃_G[i] − x̃_G[i−1];
        // x̂[k−1] = n − x̃_G[k−2].
        let mut out = Vec::with_capacity(k);
        out.push(x_tilde[0]);
        for i in 1..k - 1 {
            out.push(x_tilde[i] - x_tilde[i - 1]);
        }
        out.push(n - x_tilde[k - 2]);
        Ok(out)
    }
}

impl Mechanism for LineMechanism {
    fn name(&self) -> &str {
        self.estimator.name()
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// The generic tree-policy Blowfish strategy as a [`Mechanism`]: solves
/// `x_G` exactly (subtree sums), estimates it under ε-DP, and maps back
/// through `x̂ = P_G·x̃_G` with Case II/III reconstruction from the
/// (public) component totals. Sound for any tree policy by Theorem 4.3.
///
/// The [`Incidence`] is shared (`Arc`) so a plan cache can build it once
/// and serve it across fits and trials.
///
/// Isotonic variants are rejected here: general tree edge orders are not
/// monotone (use [`LineMechanism`] for the line policy).
#[derive(Clone, Debug)]
pub struct TreeMechanism {
    incidence: Arc<Incidence>,
    eps: Epsilon,
    estimator: TreeEstimator,
}

impl TreeMechanism {
    /// Binds a prepared incidence, budget, and estimator.
    pub fn new(
        incidence: Arc<Incidence>,
        eps: Epsilon,
        estimator: TreeEstimator,
    ) -> Result<Self, StrategyError> {
        if matches!(
            estimator,
            TreeEstimator::LaplaceConsistent
                | TreeEstimator::DawaConsistent
                | TreeEstimator::HierarchicalConsistent
        ) {
            return Err(StrategyError::BadQuery {
                what: "isotonic consistency requires a monotone edge order (line policy)",
            });
        }
        Ok(TreeMechanism {
            incidence,
            eps,
            estimator,
        })
    }

    /// The shared incidence.
    pub fn incidence(&self) -> &Arc<Incidence> {
        &self.incidence
    }

    /// Releases the histogram estimate (generic over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        tree_histogram_impl(&self.incidence, x, self.eps, self.estimator, rng)
    }
}

impl Mechanism for TreeMechanism {
    fn name(&self) -> &str {
        self.estimator.name()
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// Shared body of the tree strategy (borrowed incidence, already
/// validated estimator).
fn tree_histogram_impl<R: Rng + ?Sized>(
    inc: &Incidence,
    x: &DataVector,
    eps: Epsilon,
    estimator: TreeEstimator,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    let reduced = inc.reduce_database(x)?;
    let x_g = inc.solve_tree(&reduced)?;
    let x_tilde = estimate_edges(&x_g, eps, estimator, None, rng)?;
    let est_reduced = inc.apply(&x_tilde)?;
    let totals = inc.component_totals(x)?;
    Ok(inc.reconstruct_database(&est_reduced, &totals)?)
}

/// The `(ε, G¹_k)`-Blowfish histogram estimate — thin wrapper over
/// [`LineMechanism`]. Returns `x̂` over the full domain.
pub fn line_blowfish_histogram<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    estimator: TreeEstimator,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    LineMechanism::new(eps, estimator).fit_histogram(x, rng)
}

/// The generic tree-policy Blowfish histogram — thin wrapper over the
/// [`TreeMechanism`] body for a borrowed incidence.
pub fn tree_blowfish_histogram<R: Rng + ?Sized>(
    inc: &Incidence,
    x: &DataVector,
    eps: Epsilon,
    estimator: TreeEstimator,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    if matches!(
        estimator,
        TreeEstimator::LaplaceConsistent
            | TreeEstimator::DawaConsistent
            | TreeEstimator::HierarchicalConsistent
    ) {
        return Err(StrategyError::BadQuery {
            what: "isotonic consistency requires a monotone edge order (line policy)",
        });
    }
    tree_histogram_impl(inc, x, eps, estimator, rng)
}

/// Analytic per-query error of Algorithm 1 on `R_k` (Theorem 5.2): each
/// range is the difference of at most two noisy prefixes, `≈ 2·(2/ε²)`.
pub fn line_range_error(eps: Epsilon) -> f64 {
    2.0 * blowfish_mechanisms::laplace_variance(1.0 / eps.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::{Domain, PolicyGraph, RangeQuery, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(counts: Vec<f64>) -> DataVector {
        let k = counts.len();
        DataVector::new(Domain::one_dim(k), counts).unwrap()
    }

    #[test]
    fn histogram_estimates_are_unbiased_and_total_preserving() {
        let x = db(vec![5.0, 0.0, 3.0, 7.0, 1.0, 0.0, 2.0, 9.0]);
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 400;
        let mut mean = [0.0; 8];
        for _ in 0..trials {
            let est = line_blowfish_histogram(&x, eps, TreeEstimator::Laplace, &mut rng).unwrap();
            // The reconstruction forces Σ x̂ = n exactly.
            assert!((est.iter().sum::<f64>() - x.total()).abs() < 1e-9);
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        for (i, m) in mean.iter().enumerate() {
            let avg = m / trials as f64;
            assert!(
                (avg - x.get(i)).abs() < 0.6,
                "cell {i}: {avg} vs {}",
                x.get(i)
            );
        }
    }

    #[test]
    fn theorem_5_2_error_constant_in_k() {
        // Algorithm 1's per-range error is Θ(1/ε²), independent of k.
        let eps = Epsilon::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 200;
        let mut errors = Vec::new();
        for k in [64usize, 512] {
            let x = db(vec![1.0; k]);
            let d = Domain::one_dim(k);
            // Random mid-size ranges avoiding the endpoints.
            let specs: Vec<RangeQuery> = (0..50)
                .map(|i| {
                    let l = (i * 3) % (k / 2);
                    RangeQuery::one_dim(&d, l, l + k / 4).unwrap()
                })
                .collect();
            let truth = crate::answering::true_ranges_1d(&x, &specs).unwrap();
            let mut acc = 0.0;
            for _ in 0..trials {
                let est =
                    line_blowfish_histogram(&x, eps, TreeEstimator::Laplace, &mut rng).unwrap();
                let ans = crate::answering::answer_ranges_1d(&est, &specs).unwrap();
                acc += blowfish_core::mse_per_query(&truth, &ans).unwrap();
            }
            errors.push(acc / trials as f64);
        }
        let expected = line_range_error(eps); // 2·2/ε² = 16
        for e in &errors {
            assert!(
                (e - expected).abs() / expected < 0.25,
                "measured {e} vs analytic {expected}"
            );
        }
        // Flat in k: the two domain sizes agree within noise.
        assert!((errors[0] - errors[1]).abs() / expected < 0.3);
    }

    #[test]
    fn consistency_helps_on_sparse_data() {
        let k = 512;
        let mut counts = vec![0.0; k];
        counts[50] = 2000.0;
        counts[300] = 1000.0;
        let x = db(counts);
        let eps = Epsilon::new(0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let d = Domain::one_dim(k);
        let mut sp_rng = StdRng::seed_from_u64(99);
        let (_, specs) = Workload::random_ranges(&d, 200, &mut sp_rng).unwrap();
        let truth = crate::answering::true_ranges_1d(&x, &specs).unwrap();
        let trials = 60;
        let mut raw = 0.0;
        let mut cons = 0.0;
        for _ in 0..trials {
            let a = line_blowfish_histogram(&x, eps, TreeEstimator::Laplace, &mut rng).unwrap();
            let b = line_blowfish_histogram(&x, eps, TreeEstimator::LaplaceConsistent, &mut rng)
                .unwrap();
            raw += blowfish_core::mse_per_query(
                &truth,
                &crate::answering::answer_ranges_1d(&a, &specs).unwrap(),
            )
            .unwrap();
            cons += blowfish_core::mse_per_query(
                &truth,
                &crate::answering::answer_ranges_1d(&b, &specs).unwrap(),
            )
            .unwrap();
        }
        assert!(cons < raw, "consistency did not help: {cons} vs {raw}");
    }

    #[test]
    fn dawa_variant_runs() {
        let x = db(vec![0.0, 0.0, 100.0, 0.0, 0.0, 0.0, 50.0, 0.0]);
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for est in [TreeEstimator::Dawa, TreeEstimator::DawaConsistent] {
            let e = line_blowfish_histogram(&x, eps, est, &mut rng).unwrap();
            assert_eq!(e.len(), 8);
        }
    }

    #[test]
    fn generic_tree_strategy_matches_line_semantics() {
        // Run the generic tree machinery on the line policy and verify it
        // is unbiased too (it reconstructs through P_G rather than by
        // direct differencing).
        let x = db(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0]);
        let g = PolicyGraph::line(6).unwrap();
        let inc = Incidence::new(&g).unwrap();
        let eps = Epsilon::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 300;
        let mut mean = [0.0; 6];
        for _ in 0..trials {
            let est =
                tree_blowfish_histogram(&inc, &x, eps, TreeEstimator::Laplace, &mut rng).unwrap();
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        for (i, m) in mean.iter().enumerate() {
            let avg = m / trials as f64;
            assert!((avg - x.get(i)).abs() < 0.5, "cell {i}: {avg}");
        }
    }

    #[test]
    fn tree_strategy_rejects_consistency() {
        let x = db(vec![1.0; 4]);
        let g = PolicyGraph::line(4).unwrap();
        let inc = Incidence::new(&g).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(
            tree_blowfish_histogram(&inc, &x, eps, TreeEstimator::LaplaceConsistent, &mut rng)
                .is_err()
        );
    }

    #[test]
    fn tiny_domain_rejected() {
        let x = db(vec![1.0]);
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(line_blowfish_histogram(&x, eps, TreeEstimator::Laplace, &mut rng).is_err());
    }

    #[test]
    fn hierarchical_variant_is_unbiased() {
        let x = db(vec![2.0, 7.0, 1.0, 0.0, 3.0, 5.0, 4.0, 2.0]);
        let eps = Epsilon::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 300;
        let mut mean = [0.0; 8];
        for _ in 0..trials {
            let est =
                line_blowfish_histogram(&x, eps, TreeEstimator::Hierarchical, &mut rng).unwrap();
            assert!((est.iter().sum::<f64>() - x.total()).abs() < 1e-6);
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        for (i, m) in mean.iter().enumerate() {
            let avg = m / trials as f64;
            assert!((avg - x.get(i)).abs() < 1.5, "cell {i}: {avg}");
        }
        // Consistent variant also runs.
        let est = line_blowfish_histogram(&x, eps, TreeEstimator::HierarchicalConsistent, &mut rng)
            .unwrap();
        assert_eq!(est.len(), 8);
    }

    #[test]
    fn estimator_names() {
        assert_eq!(TreeEstimator::Laplace.name(), "Transformed + Laplace");
        assert_eq!(TreeEstimator::DawaConsistent.name(), "Trans + Dawa + Cons");
    }
}
