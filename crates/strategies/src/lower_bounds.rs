//! SVD lower bounds for Blowfish matrix mechanisms (Appendix A,
//! Corollary A.2; Figure 10).
//!
//! Li & Miklau's SVD bound for `(ε, δ)`-DP matrix mechanisms states that
//! answering `W` costs at least `P(ε,δ)·(Σᵢ σᵢ(W))²/n` where `σᵢ` are the
//! singular values and `n` the number of columns. Through transformational
//! equivalence the bound transfers to any Blowfish policy by evaluating it
//! on the transformed workload `W_G = W′·P_G` (with `n_G = |E|` columns).
//!
//! Computing `σ(W_G)` naively needs the `|E| × |E|` Gram matrix — hopeless
//! for complete-graph (bounded-DP) policies with `|E| = Θ(k²)`. Instead we
//! use that the nonzero eigenvalues of `P_GᵀMP_G` (with `M = W′ᵀW′`)
//! coincide with those of `L^{1/2}·M·L^{1/2}` where `L = P_G·P_Gᵀ` is the
//! `(k−r) × (k−r)` grounded Laplacian — an O(k³) computation for every
//! policy, with closed-form `M` for range workloads.

use blowfish_linalg::{eigenvalues, sqrt_psd, Matrix};

use blowfish_core::{Delta, Epsilon, Incidence, PolicyGraph};

use crate::StrategyError;

/// The constant `P(ε, δ) = 2·ln(2/δ)/ε²` of Corollary A.2.
pub fn p_eps_delta(eps: Epsilon, delta: Delta) -> f64 {
    2.0 * (2.0 / delta.value()).ln() / (eps.value() * eps.value())
}

/// Reduces a full `k × k` workload Gram matrix `M = WᵀW` to the Case II/III
/// rewritten workload's Gram `M′ = W′ᵀW′`: column `j` of `W′` is
/// `col_{o_j}(W) − col_{v*_c}(W)` for the component replacement `v*_c`
/// (identity when the component is grounded through a real ⊥-edge).
fn reduce_gram(m: &Matrix, inc: &Incidence) -> Matrix {
    let g = inc.grounding();
    let rows = g.num_rows();
    let vstar_of_row: Vec<Option<usize>> = (0..rows)
        .map(|r| g.replacement(g.component_of(g.orig_of(r))))
        .collect();
    let mut out = Matrix::zeros(rows, rows);
    // Row-difference pattern: out[i][j] = d_i[o_j] − d_i[v*_j] where
    // d_i = row_{o_i}(M) − row_{v*_i}(M) is computed once per output row
    // as one contiguous pass, instead of four strided lookups per entry.
    let mut diff = vec![0.0; m.cols()];
    for i in 0..rows {
        let oi = g.orig_of(i);
        match vstar_of_row[i] {
            Some(vi) => {
                for ((d, &a), &b) in diff.iter_mut().zip(m.row(oi)).zip(m.row(vi)) {
                    *d = a - b;
                }
            }
            None => diff.copy_from_slice(m.row(oi)),
        }
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            let mut v = diff[g.orig_of(j)];
            if let Some(vj) = vstar_of_row[j] {
                v -= diff[vj];
            }
            *o = v;
        }
    }
    out
}

/// The Corollary A.2 lower bound on the total error of any `(ε, δ, G)`-
/// Blowfish matrix mechanism answering a workload with Gram matrix
/// `workload_gram = WᵀW` (over the full `k`-value domain).
pub fn svd_lower_bound(
    workload_gram: &Matrix,
    policy: &PolicyGraph,
    eps: Epsilon,
    delta: Delta,
) -> Result<f64, StrategyError> {
    if workload_gram.rows() != policy.num_values() || !workload_gram.is_square() {
        return Err(StrategyError::BadQuery {
            what: "workload Gram must be k × k for the policy's domain",
        });
    }
    let inc = Incidence::new(policy)?;
    let m_reduced = reduce_gram(workload_gram, &inc);
    let l = inc.laplacian().to_dense();
    let l_half = sqrt_psd(&l, 1e-8)?;
    let s = l_half.matmul(&m_reduced)?.matmul(&l_half)?;
    let lambdas = eigenvalues(&s)?;
    let sum_sigma: f64 = lambdas.iter().map(|&v| v.max(0.0).sqrt()).sum();
    let n_g = inc.num_edges() as f64;
    Ok(p_eps_delta(eps, delta) * sum_sigma * sum_sigma / n_g)
}

/// The classic (unbounded-DP) SVD bound — equivalently the Blowfish bound
/// under the star policy, where `P_G = I_k` (provided separately both for
/// clarity and as a cross-check of the policy path).
pub fn svd_lower_bound_unbounded_dp(
    workload_gram: &Matrix,
    eps: Epsilon,
    delta: Delta,
) -> Result<f64, StrategyError> {
    let lambdas = eigenvalues(workload_gram)?;
    let sum_sigma: f64 = lambdas.iter().map(|&v| v.max(0.0).sqrt()).sum();
    let k = workload_gram.rows() as f64;
    Ok(p_eps_delta(eps, delta) * sum_sigma * sum_sigma / k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::{range_gram, range_gram_1d, Domain};

    fn eps_delta() -> (Epsilon, Delta) {
        (Epsilon::new(1.0).unwrap(), Delta::new(0.001).unwrap())
    }

    #[test]
    fn constant_matches_formula() {
        let (e, d) = eps_delta();
        let p = p_eps_delta(e, d);
        assert!((p - 2.0 * (2000.0_f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn star_policy_equals_unbounded_dp_bound() {
        let k = 12;
        let gram = range_gram_1d(k);
        let (e, d) = eps_delta();
        let star = PolicyGraph::star(k).unwrap();
        let a = svd_lower_bound(&gram, &star, e, d).unwrap();
        let b = svd_lower_bound_unbounded_dp(&gram, e, d).unwrap();
        assert!(
            (a - b).abs() / b < 1e-9,
            "star-policy bound {a} vs direct DP bound {b}"
        );
    }

    #[test]
    fn eigenvalue_trick_matches_explicit_gram() {
        // Cross-check the L^{1/2} M L^{1/2} path against explicitly
        // forming W_G and its Gram on a small instance.
        let k = 8;
        let g = PolicyGraph::theta_line(k, 2).unwrap();
        let inc = Incidence::new(&g).unwrap();
        let w = blowfish_core::Workload::all_ranges_1d(k);
        let (wg, _) = inc.transform_workload(&w).unwrap();
        let wg_dense = wg.to_dense_matrix();
        let explicit: f64 = blowfish_linalg::singular_values(&wg_dense)
            .unwrap()
            .iter()
            .sum();
        // Via the trick:
        let gram = range_gram_1d(k);
        let m_reduced = reduce_gram(&gram, &inc);
        let l = inc.laplacian().to_dense();
        let l_half = sqrt_psd(&l, 1e-8).unwrap();
        let s = l_half.matmul(&m_reduced).unwrap().matmul(&l_half).unwrap();
        let trick: f64 = eigenvalues(&s)
            .unwrap()
            .iter()
            .map(|&v| v.max(0.0).sqrt())
            .sum();
        assert!(
            (explicit - trick).abs() / explicit < 1e-6,
            "explicit {explicit} vs trick {trick}"
        );
    }

    #[test]
    fn figure_10a_structure() {
        // Figure 10a's qualitative shape: (i) at fixed k, tighter policies
        // (smaller θ) admit lower error floors — larger θ approaches the
        // complete graph, i.e. bounded DP, which is *worse*; (ii) the
        // unbounded-DP curve grows faster than every G^θ curve, so each θ
        // eventually crosses below it ("for sufficiently large domain
        // sizes").
        let (e, d) = eps_delta();
        let bound = |k: usize, theta: usize| {
            svd_lower_bound(
                &range_gram_1d(k),
                &PolicyGraph::theta_line(k, theta).unwrap(),
                e,
                d,
            )
            .unwrap()
        };
        // (i) θ-ordering at k = 64.
        let (t1, t4, t16) = (bound(64, 1), bound(64, 4), bound(64, 16));
        assert!(t1 < t4 && t4 < t16, "θ ordering violated: {t1} {t4} {t16}");
        // (ii) crossover: θ=16 sits above unbounded DP at k=64 but below
        // it at k=256.
        let dp64 = svd_lower_bound_unbounded_dp(&range_gram_1d(64), e, d).unwrap();
        let dp256 = svd_lower_bound_unbounded_dp(&range_gram_1d(256), e, d).unwrap();
        assert!(bound(64, 16) > dp64, "no crossover at small k");
        assert!(bound(256, 16) < dp256, "θ=16 should undercut DP at k=256");
        // θ=1 is already below DP at k=64.
        assert!(t1 < dp64);
    }

    #[test]
    fn bounds_are_positive_and_grow_with_domain() {
        let (e, d) = eps_delta();
        let mut prev = 0.0;
        for k in [16usize, 32, 64] {
            let gram = range_gram_1d(k);
            let b = svd_lower_bound(&gram, &PolicyGraph::line(k).unwrap(), e, d).unwrap();
            assert!(b > 0.0);
            assert!(b > prev, "bound should grow with k: {b} after {prev}");
            prev = b;
        }
    }

    #[test]
    fn two_dimensional_policies() {
        // Figure 10b smoke: grid policies on R_{k²}.
        let k = 5;
        let d2 = Domain::square(k);
        let gram = range_gram(&d2).unwrap();
        let (e, d) = eps_delta();
        let dp = svd_lower_bound_unbounded_dp(&gram, e, d).unwrap();
        let g1 = svd_lower_bound(
            &gram,
            &PolicyGraph::distance_threshold(d2.clone(), 1).unwrap(),
            e,
            d,
        )
        .unwrap();
        let bounded = svd_lower_bound(&gram, &PolicyGraph::complete(k * k).unwrap(), e, d).unwrap();
        assert!(g1 > 0.0 && bounded > 0.0 && dp > 0.0);
        // The paper's observation: every θ beats *bounded* DP.
        assert!(
            g1 < bounded,
            "G¹ bound {g1} should be below bounded-DP bound {bounded}"
        );
    }

    #[test]
    fn shape_validation() {
        let (e, d) = eps_delta();
        let gram = range_gram_1d(4);
        let g = PolicyGraph::line(5).unwrap();
        assert!(svd_lower_bound(&gram, &g, e, d).is_err());
    }
}
