//! The 2-D distance-threshold strategy for `G^θ_{k²}` (Section 5.3.2,
//! Theorem 5.6, Figure 7).
//!
//! The spanner `H^θ_{k²}` tiles the map into `s × s` blocks
//! (`s = max(θ/2, 1)`) whose corners are red: non-red vertices hang off
//! their block's red corner (*internal edges* — leaf edges whose
//! transformed values are simply the cell counts), and red vertices form a
//! coarse grid (*external edges*). Internal and external edges are
//! disjoint, so the strategy estimates them independently:
//!
//! * internal edges — all range queries over layers of thickness `s`
//!   (horizontal layers at ε/2, vertical at ε/2, since every internal edge
//!   appears in exactly one of each), via 2-D Privelet per layer;
//! * external edges — the red-vertex grid is exactly a `G¹_{m²}` instance
//!   over block totals, handled by [`crate::grid`].
//!
//! Everything is scaled by the certified stretch ℓ (Corollary 4.6) so the
//! result is `(ε, G^θ_{k²})`-Blowfish private, with per-query error
//! `O(d³·log^{3(d−1)}k·log³θ/ε²)` (Theorem 5.6).

use std::sync::Arc;

use rand::{Rng, RngCore};

use blowfish_core::spanner::theta_grid_spanner;
use blowfish_core::{DataVector, Domain, Epsilon};
use blowfish_mechanisms::privelet_histogram;

use crate::grid::grid_blowfish_histogram;
use crate::mechanism::{Estimate, Mechanism};
use crate::StrategyError;

/// A prepared `G^θ_{k²}` strategy.
#[derive(Clone, Debug)]
pub struct ThetaGridStrategy {
    k: usize,
    theta: usize,
    /// Block side `s = max(θ/2, 1)`.
    block: usize,
    /// Red grid dimension `m = k/s`.
    red_k: usize,
    /// Certified stretch ℓ of the spanner (Lemma 4.5).
    stretch: usize,
}

impl ThetaGridStrategy {
    /// Builds the strategy for a `k × k` domain and threshold θ. Requires
    /// the block side to divide `k`. The spanner stretch is certified on a
    /// reduced instance with the same block geometry (stretch is a local
    /// property of the block pattern; the tests cross-check this against
    /// direct certification).
    pub fn new(k: usize, theta: usize) -> Result<Self, StrategyError> {
        if theta == 0 {
            return Err(StrategyError::BadQuery {
                what: "θ must be at least 1",
            });
        }
        let s = (theta / 2).max(1);
        if !k.is_multiple_of(s) || k / s < 2 {
            return Err(StrategyError::BadQuery {
                what: "block side must divide k with at least a 2x2 red grid",
            });
        }
        // θ ≤ 2 degenerates to the G¹ grid: stretch is exactly θ (every
        // policy edge spans L1 distance ≤ θ, each unit a grid hop).
        let stretch = if s == 1 {
            theta
        } else {
            // Certify on a small instance with identical block geometry.
            let blocks = (k / s).clamp(2, 6);
            let kc = s * blocks;
            let spanner = theta_grid_spanner(kc, theta)?;
            spanner.certify_stretch(theta)?
        };
        Ok(ThetaGridStrategy {
            k,
            theta,
            block: s,
            red_k: k / s,
            stretch,
        })
    }

    /// The certified stretch ℓ.
    pub fn stretch(&self) -> usize {
        self.stretch
    }

    /// The policy threshold θ this strategy was built for.
    pub fn theta(&self) -> usize {
        self.theta
    }

    /// The block side `s`.
    pub fn block(&self) -> usize {
        self.block
    }

    /// The `(ε, G^θ_{k²})`-Blowfish histogram estimate.
    pub fn histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        let domain = x.domain();
        if domain.num_dims() != 2 || domain.dim(0) != self.k || domain.dim(1) != self.k {
            return Err(StrategyError::BadQuery {
                what: "database domain does not match the strategy's k × k grid",
            });
        }
        let eps_eff = eps.for_stretch(self.stretch)?;
        if self.block == 1 {
            // Degenerate: H = G¹ grid; delegate with the scaled budget.
            return grid_blowfish_histogram(x, eps_eff, rng);
        }
        let k = self.k;
        let s = self.block;
        let m = self.red_k;
        let at = |r: usize, c: usize| x.get(r * k + c);
        let is_red = |r: usize, c: usize| r % s == s - 1 && c % s == s - 1;

        // --- Internal edges: per-layer 2-D Privelet, ε_eff/2 per
        // direction (d = 2 budget split; layers within a direction are
        // disjoint → parallel composition).
        let eps_layer = eps_eff.split(2)?;
        let mut est_h = vec![0.0; k * k];
        for a in 0..m {
            let mut layer = vec![0.0; s * k];
            for dr in 0..s {
                for c in 0..k {
                    let r = a * s + dr;
                    layer[dr * k + c] = if is_red(r, c) { 0.0 } else { at(r, c) };
                }
            }
            let est = privelet_histogram(&layer, &[s, k], eps_layer, rng)?;
            for dr in 0..s {
                for c in 0..k {
                    est_h[(a * s + dr) * k + c] = est[dr * k + c];
                }
            }
        }
        let mut est_v = vec![0.0; k * k];
        for b in 0..m {
            let mut layer = vec![0.0; k * s];
            for r in 0..k {
                for dc in 0..s {
                    let c = b * s + dc;
                    layer[r * s + dc] = if is_red(r, c) { 0.0 } else { at(r, c) };
                }
            }
            let est = privelet_histogram(&layer, &[k, s], eps_layer, rng)?;
            for r in 0..k {
                for dc in 0..s {
                    est_v[r * k + (b * s + dc)] = est[r * s + dc];
                }
            }
        }

        // --- External edges: the red grid over block totals is a G¹_{m²}
        // instance; reuse the grid strategy (disjoint edges → full ε_eff).
        let mut blocks = vec![0.0; m * m];
        for r in 0..k {
            for c in 0..k {
                blocks[(r / s) * m + (c / s)] += at(r, c);
            }
        }
        let block_db =
            DataVector::new(Domain::square(m), blocks).expect("block histogram matches red domain");
        let block_est = grid_blowfish_histogram(&block_db, eps_eff, rng)?;

        // --- Reconstruction: non-red cells take their internal-edge
        // estimate (averaging the two independent layer estimates); red
        // cells absorb the block-total residual.
        let mut out = vec![0.0; k * k];
        for a in 0..m {
            for b in 0..m {
                let mut members = 0.0;
                for dr in 0..s {
                    for dc in 0..s {
                        let (r, c) = (a * s + dr, b * s + dc);
                        if !is_red(r, c) {
                            let e = 0.5 * (est_h[r * k + c] + est_v[r * k + c]);
                            out[r * k + c] = e;
                            members += e;
                        }
                    }
                }
                let red_r = (a + 1) * s - 1;
                let red_c = (b + 1) * s - 1;
                out[red_r * k + red_c] = block_est[a * m + b] - members;
            }
        }
        Ok(out)
    }
}

/// The θ-grid strategy as a [`Mechanism`]: a shared prepared
/// [`ThetaGridStrategy`] (block geometry + certified stretch, built once
/// by the plan cache) with the budget bound in.
#[derive(Clone, Debug)]
pub struct ThetaGridMechanism {
    strategy: Arc<ThetaGridStrategy>,
    eps: Epsilon,
}

impl ThetaGridMechanism {
    /// Binds a prepared strategy and budget.
    pub fn new(strategy: Arc<ThetaGridStrategy>, eps: Epsilon) -> Self {
        ThetaGridMechanism { strategy, eps }
    }

    /// The shared prepared strategy.
    pub fn strategy(&self) -> &Arc<ThetaGridStrategy> {
        &self.strategy
    }

    /// Releases the histogram estimate (generic over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        self.strategy.histogram(x, self.eps, rng)
    }
}

impl Mechanism for ThetaGridMechanism {
    fn name(&self) -> &str {
        "Transformed + Privelet"
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// Analytic per-query error order of the θ-grid strategy (Theorem 5.6,
/// d = 2): `d³·log^{3(d−1)}k·log³θ / ε²`.
pub fn theta_grid_error_order(k: usize, theta: usize, eps: Epsilon) -> f64 {
    let logk = (k.next_power_of_two().trailing_zeros() as f64 + 1.0).max(1.0);
    let logt = (theta.next_power_of_two().trailing_zeros() as f64 + 1.0).max(1.0);
    8.0 * logk.powi(3) * logt.powi(3) / (eps.value() * eps.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::{mse_per_query, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_db(k: usize, f: impl Fn(usize, usize) -> f64) -> DataVector {
        let counts = (0..k * k).map(|i| f(i / k, i % k)).collect::<Vec<f64>>();
        DataVector::new(Domain::square(k), counts).unwrap()
    }

    #[test]
    fn construction_and_stretch() {
        let s = ThetaGridStrategy::new(12, 4).unwrap();
        assert_eq!(s.block(), 2);
        assert!(s.stretch() <= 6, "stretch {}", s.stretch());
        // θ=2 degenerates: stretch exactly 2.
        let s2 = ThetaGridStrategy::new(8, 2).unwrap();
        assert_eq!(s2.block(), 1);
        assert_eq!(s2.stretch(), 2);
        // Non-divisible block rejected.
        assert!(ThetaGridStrategy::new(9, 4).is_err());
        assert!(ThetaGridStrategy::new(8, 0).is_err());
    }

    #[test]
    fn reduced_instance_certification_matches_direct() {
        // The stretch certified on a small same-geometry instance equals
        // direct certification on the full instance.
        for (k, theta) in [(12usize, 4usize), (16, 4), (18, 6)] {
            let s = (theta / 2).max(1);
            let direct = theta_grid_spanner(k, theta)
                .unwrap()
                .certify_stretch(theta)
                .unwrap();
            let strat = ThetaGridStrategy::new(k, theta).unwrap();
            assert_eq!(
                strat.stretch(),
                direct,
                "k={k} θ={theta} s={s}: reduced vs direct"
            );
        }
    }

    #[test]
    fn exact_at_negligible_noise() {
        let x = grid_db(8, |r, c| (r * 8 + c) as f64);
        let strat = ThetaGridStrategy::new(8, 4).unwrap();
        let eps = Epsilon::new(1e8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let est = strat.histogram(&x, eps, &mut rng).unwrap();
        for (e, t) in est.iter().zip(x.counts()) {
            assert!((e - t).abs() < 1e-2, "{e} vs {t}");
        }
    }

    #[test]
    fn unbiased_under_noise() {
        let x = grid_db(8, |r, c| ((r + 2 * c) % 5) as f64);
        let strat = ThetaGridStrategy::new(8, 4).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 150;
        let mut mean = vec![0.0; 64];
        for _ in 0..trials {
            let est = strat.histogram(&x, eps, &mut rng).unwrap();
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        for (i, m) in mean.iter().enumerate() {
            let avg = m / trials as f64;
            assert!(
                (avg - x.counts()[i]).abs() < 4.0,
                "cell {i}: {avg} vs {}",
                x.counts()[i]
            );
        }
    }

    #[test]
    fn degenerate_theta_matches_grid_with_scaled_budget() {
        // θ=1 → stretch 1 → identical to the plain grid strategy.
        let x = grid_db(6, |r, c| (r * c) as f64);
        let strat = ThetaGridStrategy::new(6, 1).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        let a = strat
            .histogram(&x, eps, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let b = grid_blowfish_histogram(&x, eps, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn range_error_reasonable_vs_dp() {
        // With a larger θ the policy is much weaker than DP, so the
        // strategy should comfortably beat DP Privelet at matched budgets
        // on moderate grids.
        let k = 16;
        let x = grid_db(k, |_, _| 2.0);
        let strat = ThetaGridStrategy::new(k, 4).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        let d = Domain::square(k);
        let mut sp_rng = StdRng::seed_from_u64(4);
        let (_, specs) = Workload::random_ranges(&d, 100, &mut sp_rng).unwrap();
        let truth = crate::answering::true_ranges_2d(&x, &specs).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 30;
        let mut blowfish = 0.0;
        let mut dp = 0.0;
        for _ in 0..trials {
            let b = strat.histogram(&x, eps, &mut rng).unwrap();
            blowfish += mse_per_query(
                &truth,
                &crate::answering::answer_ranges_2d(&b, k, k, &specs).unwrap(),
            )
            .unwrap();
            let p = crate::baselines::dp_privelet_nd(&x, eps.half(), &mut rng).unwrap();
            dp += mse_per_query(
                &truth,
                &crate::answering::answer_ranges_2d(&p, k, k, &specs).unwrap(),
            )
            .unwrap();
        }
        // The strategy pays stretch and budget splits; on a small grid it
        // may not dominate, but it must stay within a small factor.
        assert!(
            blowfish < dp * 5.0,
            "θ-grid {blowfish} catastrophically worse than DP {dp}"
        );
    }

    #[test]
    fn wrong_domain_rejected() {
        let strat = ThetaGridStrategy::new(8, 4).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let wrong = grid_db(6, |_, _| 0.0);
        assert!(strat.histogram(&wrong, eps, &mut rng).is_err());
        let one_d = DataVector::new(Domain::one_dim(64), vec![0.0; 64]).unwrap();
        assert!(strat.histogram(&one_d, eps, &mut rng).is_err());
    }

    #[test]
    fn error_order_helper() {
        let eps = Epsilon::new(1.0).unwrap();
        assert!(theta_grid_error_order(100, 8, eps) > theta_grid_error_order(100, 2, eps));
    }
}
