//! The uniform mechanism abstraction: one object-safe trait in front of
//! every baseline and Blowfish strategy in this crate.
//!
//! Historically each algorithm was a differently-shaped free function
//! (`line_blowfish_histogram`, `dp_dawa_1d`, `ThetaGridStrategy::run`, …)
//! and callers glued them together with ad-hoc closures. The
//! [`Mechanism`] trait fixes one shape — `fit(&self, x, rng) ->
//! Estimate` — and [`Estimate`] carries the prefix-sum / summed-area
//! machinery so batched range workloads are answered in O(1) per query
//! after a single O(k) preparation pass.
//!
//! Transformational equivalence (Section 4 of the paper) is what makes
//! this uniformity sound: every strategy, policy-aware or not, ultimately
//! releases a histogram estimate `x̂` over the original domain, so one
//! trait covers the whole zoo. The concrete implementors live next to
//! their algorithms ([`crate::baselines`], [`crate::line1d`],
//! [`crate::grid`], [`crate::theta_line`], [`crate::theta_grid`]); the
//! `blowfish-engine` crate builds the registry/planner layer on top.

use rand::RngCore;

use blowfish_core::{DataVector, Domain, Epsilon, RangeQuery};

use crate::StrategyError;

/// A fitted histogram release, prepared for O(1)-per-query range
/// answering.
///
/// For 1-D domains the constructor materializes prefix sums, for 2-D a
/// summed-area table — the same machinery as [`crate::answering`], so
/// answers are bit-identical to `answer_ranges_1d`/`answer_ranges_2d` on
/// the raw histogram. Domains with three or more dimensions fall back to
/// direct summation (O(volume) per query).
#[derive(Clone, Debug)]
pub struct Estimate {
    domain: Domain,
    histogram: Vec<f64>,
    /// Prefix sums (1-D) or summed-area table (2-D); empty for d ≥ 3.
    prefix: Vec<f64>,
}

impl Estimate {
    /// Wraps a histogram estimate over `domain`, building the answering
    /// tables.
    pub fn new(domain: &Domain, histogram: Vec<f64>) -> Result<Self, StrategyError> {
        if histogram.len() != domain.size() {
            return Err(StrategyError::BadQuery {
                what: "estimate length must equal the domain size",
            });
        }
        let prefix = match domain.num_dims() {
            1 => {
                let mut prefix = Vec::with_capacity(histogram.len());
                let mut acc = 0.0;
                for &v in &histogram {
                    acc += v;
                    prefix.push(acc);
                }
                prefix
            }
            2 => {
                let (rows, cols) = (domain.dim(0), domain.dim(1));
                let mut sat = vec![0.0; rows * cols];
                for r in 0..rows {
                    let mut row_acc = 0.0;
                    for c in 0..cols {
                        row_acc += histogram[r * cols + c];
                        sat[r * cols + c] =
                            row_acc + if r > 0 { sat[(r - 1) * cols + c] } else { 0.0 };
                    }
                }
                sat
            }
            _ => Vec::new(),
        };
        Ok(Estimate {
            domain: domain.clone(),
            histogram,
            prefix,
        })
    }

    /// The domain the estimate lives over.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The raw histogram estimate `x̂`.
    pub fn histogram(&self) -> &[f64] {
        &self.histogram
    }

    /// Consumes the estimate, returning the raw histogram.
    pub fn into_histogram(self) -> Vec<f64> {
        self.histogram
    }

    /// The estimated total `Σ x̂`.
    pub fn total(&self) -> f64 {
        self.histogram.iter().sum()
    }

    /// Answers one range query — O(1) for 1-D/2-D domains.
    ///
    /// `RangeQuery`'s fields are public, so bounds are re-validated here
    /// (`lo ≤ hi` per axis, `hi` within the domain) rather than trusting
    /// construction-time invariants.
    pub fn answer(&self, q: &RangeQuery) -> Result<f64, StrategyError> {
        match self.domain.num_dims() {
            1 => self.answer_1d(self.domain.dim(0), q),
            2 => self.answer_2d(self.domain.dim(0), self.domain.dim(1), q),
            _ => {
                let cells = q.cells(&self.domain)?;
                Ok(cells.into_iter().map(|c| self.histogram[c]).sum())
            }
        }
    }

    /// Validates and answers one 1-D query against the prefix sums. The
    /// single shared body behind [`Estimate::answer`] and
    /// [`Estimate::answer_many`], so the two entry points cannot diverge.
    #[inline]
    fn answer_1d(&self, k: usize, q: &RangeQuery) -> Result<f64, StrategyError> {
        if q.lo.len() != 1 || q.hi.len() != 1 || q.lo[0] > q.hi[0] || q.hi[0] >= k {
            return Err(StrategyError::BadQuery {
                what: "1-D range answering requires 1-D in-range specs",
            });
        }
        Ok(DataVector::range_from_prefix(
            &self.prefix,
            q.lo[0],
            q.hi[0],
        ))
    }

    /// Validates and answers one 2-D query against the summed-area table
    /// (shared body, see [`Estimate::answer_1d`]).
    #[inline]
    fn answer_2d(&self, rows: usize, cols: usize, q: &RangeQuery) -> Result<f64, StrategyError> {
        if q.lo.len() != 2
            || q.hi.len() != 2
            || q.lo[0] > q.hi[0]
            || q.lo[1] > q.hi[1]
            || q.hi[0] >= rows
            || q.hi[1] >= cols
        {
            return Err(StrategyError::BadQuery {
                what: "2-D range answering requires 2-D in-range specs",
            });
        }
        Ok(DataVector::range_from_prefix_2d(
            &self.prefix,
            cols,
            (q.lo[0], q.lo[1]),
            (q.hi[0], q.hi[1]),
        ))
    }

    /// Answers a batch of range queries with the dimensionality dispatch
    /// hoisted out of the per-query loop: one match, then a tight
    /// validate-and-difference loop over the prefix table. Produces
    /// exactly the same values (and the same errors) as calling
    /// [`Estimate::answer`] per query — both delegate to the same
    /// per-query bodies.
    pub fn answer_many(&self, specs: &[RangeQuery]) -> Result<Vec<f64>, StrategyError> {
        let mut out = Vec::with_capacity(specs.len());
        match self.domain.num_dims() {
            1 => {
                let k = self.domain.dim(0);
                for q in specs {
                    out.push(self.answer_1d(k, q)?);
                }
            }
            2 => {
                let (rows, cols) = (self.domain.dim(0), self.domain.dim(1));
                for q in specs {
                    out.push(self.answer_2d(rows, cols, q)?);
                }
            }
            _ => {
                for q in specs {
                    out.push(self.answer(q)?);
                }
            }
        }
        Ok(out)
    }

    /// Answers a batch of range queries (alias of [`Estimate::answer_many`],
    /// kept for source compatibility).
    pub fn answer_all(&self, specs: &[RangeQuery]) -> Result<Vec<f64>, StrategyError> {
        self.answer_many(specs)
    }
}

/// One differentially private (or Blowfish-private) histogram release
/// mechanism with its privacy parameters bound in.
///
/// Object safety is deliberate: the engine layer stores `Arc<dyn
/// Mechanism>` in its registry and serves fits from a shared plan cache.
/// Randomness comes in as `&mut dyn RngCore` so a single seeded generator
/// can drive heterogeneous mechanism sets reproducibly.
pub trait Mechanism: Send + Sync {
    /// Display name matching the paper's figure legends.
    fn name(&self) -> &str;

    /// The privacy budget one [`Mechanism::fit`] actually consumes — the
    /// ε of the mechanism's own guarantee at the policy it was built for
    /// (stretch/split scaling is already folded in internally by each
    /// strategy). Budget meters charge exactly this per release, so a
    /// baseline constructed at ε/2 is charged ε/2, not the session ε.
    fn epsilon(&self) -> Epsilon;

    /// Runs the mechanism on `x`, producing a query-ready [`Estimate`].
    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answering::{answer_ranges_1d, answer_ranges_2d};
    use blowfish_core::Domain;

    #[test]
    fn estimate_matches_answering_helpers_1d() {
        let d = Domain::one_dim(6);
        let hist = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let est = Estimate::new(&d, hist.clone()).unwrap();
        let specs = vec![
            RangeQuery::one_dim(&d, 0, 5).unwrap(),
            RangeQuery::one_dim(&d, 2, 4).unwrap(),
            RangeQuery::one_dim(&d, 3, 3).unwrap(),
        ];
        assert_eq!(
            est.answer_all(&specs).unwrap(),
            answer_ranges_1d(&hist, &specs).unwrap()
        );
        assert_eq!(est.total(), 23.0);
        assert_eq!(est.histogram(), hist.as_slice());
        assert_eq!(est.domain().size(), 6);
        assert_eq!(est.into_histogram(), hist);
    }

    #[test]
    fn estimate_matches_answering_helpers_2d() {
        let d = Domain::square(4);
        let hist: Vec<f64> = (0..16).map(|v| v as f64).collect();
        let est = Estimate::new(&d, hist.clone()).unwrap();
        let specs = vec![
            RangeQuery::new(&d, vec![0, 0], vec![3, 3]).unwrap(),
            RangeQuery::new(&d, vec![1, 1], vec![2, 3]).unwrap(),
            RangeQuery::new(&d, vec![2, 0], vec![2, 0]).unwrap(),
        ];
        assert_eq!(
            est.answer_all(&specs).unwrap(),
            answer_ranges_2d(&hist, 4, 4, &specs).unwrap()
        );
    }

    #[test]
    fn estimate_3d_falls_back_to_direct_sums() {
        let d = Domain::hypercube(3, 3).unwrap();
        let hist: Vec<f64> = (0..27).map(|v| v as f64).collect();
        let est = Estimate::new(&d, hist.clone()).unwrap();
        let q = RangeQuery::new(&d, vec![0, 0, 0], vec![2, 2, 2]).unwrap();
        assert_eq!(est.answer(&q).unwrap(), hist.iter().sum::<f64>());
        let q2 = RangeQuery::new(&d, vec![1, 1, 1], vec![1, 1, 1]).unwrap();
        assert_eq!(est.answer(&q2).unwrap(), hist[13]);
    }

    #[test]
    fn estimate_shape_validation() {
        let d = Domain::one_dim(4);
        assert!(Estimate::new(&d, vec![1.0; 3]).is_err());
        let est = Estimate::new(&d, vec![1.0; 4]).unwrap();
        let d2 = Domain::square(2);
        let spec2d = RangeQuery::new(&d2, vec![0, 0], vec![1, 1]).unwrap();
        assert!(est.answer(&spec2d).is_err());
        let est2 = Estimate::new(&d2, vec![1.0; 4]).unwrap();
        let d1 = Domain::one_dim(2);
        let spec1d = RangeQuery::one_dim(&d1, 0, 1).unwrap();
        assert!(est2.answer(&spec1d).is_err());
    }

    #[test]
    fn answer_many_matches_per_query_answers() {
        // 1-D and 2-D batched paths must be bit-identical to the one-query
        // path, and reject what it rejects.
        let d = Domain::one_dim(16);
        let hist: Vec<f64> = (0..16).map(|v| (v * 7 % 5) as f64).collect();
        let est = Estimate::new(&d, hist).unwrap();
        let specs: Vec<RangeQuery> = (0..16)
            .flat_map(|lo| (lo..16).map(move |hi| (lo, hi)))
            .map(|(lo, hi)| RangeQuery::one_dim(&d, lo, hi).unwrap())
            .collect();
        let batched = est.answer_many(&specs).unwrap();
        let single: Vec<f64> = specs.iter().map(|q| est.answer(q).unwrap()).collect();
        assert_eq!(batched, single);

        let d2 = Domain::square(5);
        let est2 = Estimate::new(&d2, (0..25).map(|v| v as f64).collect()).unwrap();
        let specs2 = vec![
            RangeQuery::new(&d2, vec![0, 0], vec![4, 4]).unwrap(),
            RangeQuery::new(&d2, vec![1, 2], vec![3, 4]).unwrap(),
            RangeQuery::new(&d2, vec![2, 2], vec![2, 2]).unwrap(),
        ];
        let batched2 = est2.answer_many(&specs2).unwrap();
        let single2: Vec<f64> = specs2.iter().map(|q| est2.answer(q).unwrap()).collect();
        assert_eq!(batched2, single2);

        // A bad query anywhere in the batch is an error, same as answer().
        let mut bad = RangeQuery::one_dim(&d, 1, 5).unwrap();
        bad.lo = vec![9];
        assert!(est.answer_many(&[bad]).is_err());
        // Dimension mismatch rejected through the batched path too.
        assert!(est.answer_many(&specs2).is_err());
    }

    #[test]
    fn estimate_rejects_inverted_ranges() {
        // RangeQuery fields are pub: a hand-mutated lo > hi must error,
        // not silently difference prefixes backwards.
        let d = Domain::one_dim(8);
        let est = Estimate::new(&d, vec![1.0; 8]).unwrap();
        let mut q = RangeQuery::one_dim(&d, 1, 5).unwrap();
        q.lo = vec![6];
        assert!(est.answer(&q).is_err());
        let d2 = Domain::square(4);
        let est2 = Estimate::new(&d2, vec![1.0; 16]).unwrap();
        let mut q2 = RangeQuery::new(&d2, vec![0, 1], vec![2, 3]).unwrap();
        q2.lo = vec![0, 4];
        assert!(est2.answer(&q2).is_err());
        q2.lo = vec![3, 1];
        assert!(est2.answer(&q2).is_err());
    }
}
