//! Bulk range-query answering from histogram estimates.
//!
//! Every strategy in this crate ultimately produces a histogram estimate
//! `x̂` over the original domain (for Blowfish strategies, `x̂ = P_G·x̃_G`
//! plus the Case II reconstruction — see DESIGN.md §6: summing `x̂` over a
//! box is *identical* to answering the transformed query `q_G` against the
//! per-edge estimates, because interior edge noise telescopes away). These
//! helpers turn `x̂` into O(1)-per-query range answers via prefix sums /
//! summed-area tables, which is what makes the 10,000-query workloads of
//! Section 6 cheap.

use blowfish_core::{DataVector, RangeQuery};

use crate::StrategyError;

/// Answers 1-D range queries from a histogram estimate via prefix sums.
pub fn answer_ranges_1d(estimate: &[f64], specs: &[RangeQuery]) -> Result<Vec<f64>, StrategyError> {
    let mut prefix = Vec::with_capacity(estimate.len());
    let mut acc = 0.0;
    for &v in estimate {
        acc += v;
        prefix.push(acc);
    }
    let k = estimate.len();
    let mut out = Vec::with_capacity(specs.len());
    for s in specs {
        if s.lo.len() != 1 || s.hi[0] >= k {
            return Err(StrategyError::BadQuery {
                what: "1-D range answering requires 1-D in-range specs",
            });
        }
        out.push(DataVector::range_from_prefix(&prefix, s.lo[0], s.hi[0]));
    }
    Ok(out)
}

/// Answers 2-D range queries from a row-major histogram estimate over a
/// `rows × cols` grid via a summed-area table.
pub fn answer_ranges_2d(
    estimate: &[f64],
    rows: usize,
    cols: usize,
    specs: &[RangeQuery],
) -> Result<Vec<f64>, StrategyError> {
    if estimate.len() != rows * cols {
        return Err(StrategyError::BadQuery {
            what: "estimate length must equal rows*cols",
        });
    }
    // Build the SAT.
    let mut sat = vec![0.0; rows * cols];
    for r in 0..rows {
        let mut row_acc = 0.0;
        for c in 0..cols {
            row_acc += estimate[r * cols + c];
            sat[r * cols + c] = row_acc + if r > 0 { sat[(r - 1) * cols + c] } else { 0.0 };
        }
    }
    let mut out = Vec::with_capacity(specs.len());
    for s in specs {
        if s.lo.len() != 2 || s.hi[0] >= rows || s.hi[1] >= cols {
            return Err(StrategyError::BadQuery {
                what: "2-D range answering requires 2-D in-range specs",
            });
        }
        out.push(DataVector::range_from_prefix_2d(
            &sat,
            cols,
            (s.lo[0], s.lo[1]),
            (s.hi[0], s.hi[1]),
        ));
    }
    Ok(out)
}

/// True answers for 1-D range specs (convenience for experiments).
pub fn true_ranges_1d(x: &DataVector, specs: &[RangeQuery]) -> Result<Vec<f64>, StrategyError> {
    answer_ranges_1d(x.counts(), specs)
}

/// True answers for 2-D range specs.
pub fn true_ranges_2d(x: &DataVector, specs: &[RangeQuery]) -> Result<Vec<f64>, StrategyError> {
    let d = x.domain();
    if d.num_dims() != 2 {
        return Err(StrategyError::BadQuery {
            what: "database is not two-dimensional",
        });
    }
    answer_ranges_2d(x.counts(), d.dim(0), d.dim(1), specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::Domain;

    #[test]
    fn ranges_1d_match_direct_sums() {
        let est = vec![1.0, 2.0, 3.0, 4.0];
        let d = Domain::one_dim(4);
        let specs = vec![
            RangeQuery::one_dim(&d, 0, 3).unwrap(),
            RangeQuery::one_dim(&d, 1, 2).unwrap(),
            RangeQuery::one_dim(&d, 2, 2).unwrap(),
        ];
        let ans = answer_ranges_1d(&est, &specs).unwrap();
        assert_eq!(ans, vec![10.0, 5.0, 3.0]);
    }

    #[test]
    fn ranges_2d_match_direct_sums() {
        // 3x3: 0..8
        let est: Vec<f64> = (0..9).map(|v| v as f64).collect();
        let d = Domain::square(3);
        let specs = vec![
            RangeQuery::new(&d, vec![0, 0], vec![2, 2]).unwrap(),
            RangeQuery::new(&d, vec![1, 1], vec![2, 2]).unwrap(),
            RangeQuery::new(&d, vec![0, 1], vec![1, 1]).unwrap(),
        ];
        let ans = answer_ranges_2d(&est, 3, 3, &specs).unwrap();
        assert_eq!(ans, vec![36.0, 24.0, 5.0]);
    }

    #[test]
    fn true_answer_helpers() {
        let x = DataVector::new(Domain::one_dim(3), vec![5.0, 0.0, 2.0]).unwrap();
        let d = Domain::one_dim(3);
        let specs = vec![RangeQuery::one_dim(&d, 0, 2).unwrap()];
        assert_eq!(true_ranges_1d(&x, &specs).unwrap(), vec![7.0]);

        let x2 = DataVector::new(Domain::square(2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let d2 = Domain::square(2);
        let specs2 = vec![RangeQuery::new(&d2, vec![0, 0], vec![1, 1]).unwrap()];
        assert_eq!(true_ranges_2d(&x2, &specs2).unwrap(), vec![10.0]);
    }

    #[test]
    fn shape_validation() {
        let d2 = Domain::square(2);
        let spec2d = RangeQuery::new(&d2, vec![0, 0], vec![1, 1]).unwrap();
        assert!(answer_ranges_1d(&[1.0, 2.0], std::slice::from_ref(&spec2d)).is_err());
        assert!(answer_ranges_2d(&[1.0; 3], 2, 2, std::slice::from_ref(&spec2d)).is_err());
        let d1 = Domain::one_dim(5);
        let spec1d = RangeQuery::one_dim(&d1, 0, 4).unwrap();
        assert!(answer_ranges_2d(&[1.0; 4], 2, 2, std::slice::from_ref(&spec1d)).is_err());
        // 1-D spec out of range for a shorter estimate.
        assert!(answer_ranges_1d(&[1.0, 2.0], &[spec1d]).is_err());
    }
}
