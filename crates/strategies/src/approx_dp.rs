//! `(ε, δ, G)`-Blowfish strategies (Appendix A).
//!
//! The paper notes that transformational equivalence "directly extends" to
//! the `(ε, δ)` relaxation: define `(ε, δ, G)`-Blowfish privacy by bounding
//! `Pr[M(D) ∈ S] ≤ e^ε·Pr[M(D′) ∈ S] + δ` over Blowfish neighbors, and
//! every theorem goes through with the mechanism's noise re-calibrated.
//! This module provides the Gaussian-noise counterpart of Algorithm 1: on
//! tree policies the transformed database moves by exactly one unit in one
//! coordinate per Blowfish neighbor (Claim 4.2), so its **L2** sensitivity
//! is 1 and the classic Gaussian mechanism applies directly.
//!
//! This is also the mechanism class the Corollary A.2 SVD lower bound
//! speaks about, which makes the bound empirically checkable — see the
//! tests.

use rand::Rng;

use blowfish_core::{DataVector, Delta, Epsilon, Incidence};
use blowfish_mechanisms::gaussian::{gaussian_histogram, gaussian_variance};

use crate::StrategyError;

/// The `(ε, δ, G¹_k)`-Blowfish histogram estimate via the Gaussian
/// mechanism on prefix sums (the Appendix-A analogue of Algorithm 1).
pub fn line_blowfish_histogram_gaussian<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    delta: Delta,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    let k = x.len();
    if k < 2 {
        return Err(StrategyError::BadQuery {
            what: "line policy needs at least 2 domain values",
        });
    }
    let n = x.total();
    let prefix = x.prefix_sums();
    // Claim 4.2: one Blowfish neighbor = one unit in one coordinate of
    // x_G, so Δ₂ = 1.
    let noisy = gaussian_histogram(&prefix[..k - 1], 1.0, eps, delta, rng)?;
    let mut out = Vec::with_capacity(k);
    out.push(noisy[0]);
    for i in 1..k - 1 {
        out.push(noisy[i] - noisy[i - 1]);
    }
    out.push(n - noisy[k - 2]);
    Ok(out)
}

/// The generic tree-policy `(ε, δ, G)` histogram via Gaussian noise on the
/// edge values.
pub fn tree_blowfish_histogram_gaussian<R: Rng + ?Sized>(
    inc: &Incidence,
    x: &DataVector,
    eps: Epsilon,
    delta: Delta,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    let reduced = inc.reduce_database(x)?;
    let x_g = inc.solve_tree(&reduced)?;
    let noisy = gaussian_histogram(&x_g, 1.0, eps, delta, rng)?;
    let est_reduced = inc.apply(&noisy)?;
    let totals = inc.component_totals(x)?;
    Ok(inc.reconstruct_database(&est_reduced, &totals)?)
}

/// Analytic per-range-query error of the Gaussian line strategy: two noisy
/// prefixes per range, `2·σ²(ε, δ)`.
pub fn line_range_error_gaussian(eps: Epsilon, delta: Delta) -> Result<f64, StrategyError> {
    Ok(2.0 * gaussian_variance(1.0, eps, delta)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::{mse_per_query, range_gram_1d, Domain, PolicyGraph, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ed() -> (Epsilon, Delta) {
        (Epsilon::new(0.5).unwrap(), Delta::new(1e-3).unwrap())
    }

    #[test]
    fn unbiased_and_total_preserving() {
        let (eps, delta) = ed();
        let x = DataVector::new(
            Domain::one_dim(8),
            vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 300;
        let mut mean = [0.0; 8];
        for _ in 0..trials {
            let est = line_blowfish_histogram_gaussian(&x, eps, delta, &mut rng).unwrap();
            assert!((est.iter().sum::<f64>() - x.total()).abs() < 1e-9);
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        for (i, m) in mean.iter().enumerate() {
            let avg = m / trials as f64;
            assert!((avg - x.get(i)).abs() < 2.5, "cell {i}: {avg}");
        }
    }

    #[test]
    fn range_error_matches_analytic() {
        let (eps, delta) = ed();
        let k = 256;
        let x = DataVector::new(Domain::one_dim(k), vec![1.0; k]).unwrap();
        let d = Domain::one_dim(k);
        let mut qrng = StdRng::seed_from_u64(2);
        let (_, specs) = Workload::random_ranges(&d, 200, &mut qrng).unwrap();
        let truth = crate::answering::true_ranges_1d(&x, &specs).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 150;
        let mut acc = 0.0;
        for _ in 0..trials {
            let est = line_blowfish_histogram_gaussian(&x, eps, delta, &mut rng).unwrap();
            let ans = crate::answering::answer_ranges_1d(&est, &specs).unwrap();
            acc += mse_per_query(&truth, &ans).unwrap();
        }
        let measured = acc / trials as f64;
        let expected = line_range_error_gaussian(eps, delta).unwrap();
        assert!(
            (measured - expected).abs() / expected < 0.25,
            "measured {measured} vs analytic {expected}"
        );
    }

    #[test]
    fn corollary_a2_bound_holds_for_its_mechanism_class() {
        // The SVD bound lower-bounds the TOTAL error of any (ε,δ)-Gaussian
        // matrix mechanism answering W. Our Gaussian line strategy is such
        // a mechanism (strategy = prefix identity in edge space); its
        // total error over all of R_k must exceed the bound.
        let (eps, delta) = ed();
        let k = 24;
        let gram = range_gram_1d(k);
        let g = PolicyGraph::line(k).unwrap();
        let bound = crate::lower_bounds::svd_lower_bound(&gram, &g, eps, delta).unwrap();
        // Analytic total error of the strategy: each of the k(k+1)/2
        // ranges touches ≤ 2 noisy prefixes → per-query ≤ 2σ², but ranges
        // ending at k−1 touch only 1 and the total (full-range) touches
        // 1… sum exactly:
        let sigma2 = gaussian_variance(1.0, eps, delta).unwrap();
        let mut total = 0.0;
        for l in 0..k {
            for r in l..k {
                let mut terms = 0.0;
                if l > 0 {
                    terms += 1.0;
                }
                if r < k - 1 {
                    terms += 1.0;
                }
                total += terms * sigma2;
            }
        }
        // The bound's class constant is P(ε,δ) = 2 ln(2/δ)/ε² while the
        // classic Gaussian calibration uses 2 ln(1.25/δ)/ε² — compare up
        // to that constant ratio (≈ 6% here).
        let constant_ratio = (1.25_f64 / delta.value()).ln() / (2.0_f64 / delta.value()).ln();
        assert!(
            total >= bound * constant_ratio * (1.0 - 1e-9),
            "strategy total {total} below the constant-adjusted bound {}",
            bound * constant_ratio
        );
        // And the bound is non-vacuous: within a polylog factor of the
        // strategy (both are Θ(k²·σ²) up to constants).
        assert!(
            total < bound * 50.0,
            "bound {bound} vacuously small next to {total}"
        );
    }

    #[test]
    fn tree_variant_matches_line_semantics() {
        let (eps, delta) = ed();
        let k = 10;
        let g = PolicyGraph::line(k).unwrap();
        let inc = Incidence::new(&g).unwrap();
        let x = DataVector::new(
            Domain::one_dim(k),
            vec![2.0, 0.0, 5.0, 1.0, 3.0, 3.0, 0.0, 4.0, 1.0, 2.0],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 200;
        let mut mean = vec![0.0; k];
        for _ in 0..trials {
            let est = tree_blowfish_histogram_gaussian(&inc, &x, eps, delta, &mut rng).unwrap();
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        for (i, m) in mean.iter().enumerate() {
            let avg = m / trials as f64;
            assert!((avg - x.get(i)).abs() < 3.0, "cell {i}: {avg}");
        }
    }

    #[test]
    fn rejects_tiny_domain() {
        let (eps, delta) = ed();
        let x = DataVector::new(Domain::one_dim(1), vec![1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(line_blowfish_histogram_gaussian(&x, eps, delta, &mut rng).is_err());
    }
}
