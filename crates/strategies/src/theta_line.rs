//! Strategies for the 1-D distance-threshold policy `G^θ_k`
//! (Section 5.3.1, Theorem 5.5).
//!
//! `G^θ_k` is not a tree, so the strong equivalence is unavailable.
//! Instead, the spanner `H^θ_k` (Figure 6) — a tree with certified stretch
//! ≤ 3 — stands in: by Corollary 4.6, an `(ε/ℓ)`-DP mechanism on the
//! `H^θ_k`-transformed instance is `(ε, G^θ_k)`-Blowfish private. The
//! transformed database consists of per-group subtree sums: groups of θ
//! edges hanging off each red vertex, estimated independently (parallel
//! composition across disjoint groups) by Privelet — giving
//! `O(log³θ/ε²)` per range query — or by Laplace / DAWA for the
//! data-dependent variants of Figure 8d.

use std::collections::HashMap;
use std::sync::Arc;

use rand::{Rng, RngCore};

use blowfish_core::spanner::{theta_line_spanner, ThetaLineSpanner};
use blowfish_core::{DataVector, Epsilon, Incidence};
use blowfish_mechanisms::{
    dawa_histogram, laplace_histogram, privelet_histogram_planned, DawaOptions, HaarPlan,
};

use crate::mechanism::{Estimate, Mechanism};
use crate::StrategyError;

/// Edge-space estimator for the θ-line strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThetaEstimator {
    /// Laplace per edge value (`Transformed + Laplace` of Figure 8d).
    Laplace,
    /// Per-group Privelet (the Theorem 5.5 strategy).
    GroupPrivelet,
    /// DAWA over the whole edge vector (`Trans + Dawa` of Figure 8d).
    Dawa,
}

impl ThetaEstimator {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            ThetaEstimator::Laplace => "Transformed + Laplace",
            ThetaEstimator::GroupPrivelet => "Transformed + GroupPrivelet",
            ThetaEstimator::Dawa => "Trans + Dawa",
        }
    }
}

/// A prepared `G^θ_k` strategy: the `H^θ_k` spanner, its incidence matrix,
/// and the certified stretch that scales the budget (Corollary 4.6).
#[derive(Clone, Debug)]
pub struct ThetaLineStrategy {
    spanner: ThetaLineSpanner,
    incidence: Incidence,
    /// Haar plans for the per-group Privelet estimator, keyed by group
    /// length — derived once at construction so fits never re-plan.
    group_plans: HashMap<usize, HaarPlan>,
}

impl ThetaLineStrategy {
    /// Builds the strategy for domain size `k` and threshold `θ`
    /// (`k > θ ≥ 1`). Certifies the spanner stretch and derives the
    /// per-group Haar plans as part of construction.
    pub fn new(k: usize, theta: usize) -> Result<Self, StrategyError> {
        let spanner = theta_line_spanner(k, theta)?;
        let incidence = Incidence::new(&spanner.graph)?;
        let mut group_plans = HashMap::new();
        for &(start, end) in &spanner.groups {
            let len = end - start;
            if let std::collections::hash_map::Entry::Vacant(e) = group_plans.entry(len) {
                e.insert(HaarPlan::new(&[len])?);
            }
        }
        Ok(ThetaLineStrategy {
            spanner,
            incidence,
            group_plans,
        })
    }

    /// The certified stretch ℓ (≤ 3 by Theorem 5.5).
    pub fn stretch(&self) -> usize {
        self.spanner.stretch
    }

    /// The spanner.
    pub fn spanner(&self) -> &ThetaLineSpanner {
        &self.spanner
    }

    /// Produces the `(ε, G^θ_k)`-Blowfish histogram estimate `x̂`:
    /// estimates the `H^θ_k` edge values at budget `ε/ℓ`, and maps back
    /// through `P_G` (Case II reconstruction from the public total).
    pub fn histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        eps: Epsilon,
        estimator: ThetaEstimator,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        let eps_eff = eps.for_stretch(self.spanner.stretch)?;
        let reduced = self.incidence.reduce_database(x)?;
        let x_g = self.incidence.solve_tree(&reduced)?;
        let x_tilde = match estimator {
            ThetaEstimator::Laplace => laplace_histogram(&x_g, 1.0, eps_eff, rng)?,
            ThetaEstimator::Dawa => dawa_histogram(&x_g, eps_eff, DawaOptions::default(), rng)?,
            ThetaEstimator::GroupPrivelet => {
                // Disjoint groups → parallel composition: each group gets
                // the full ε_eff.
                let mut out = vec![0.0; x_g.len()];
                for &(start, end) in &self.spanner.groups {
                    // The incidence preserves the spanner's edge order and
                    // count (grounding rewrites columns, never drops them),
                    // so group index ranges apply to x_G directly.
                    let plan =
                        self.group_plans
                            .get(&(end - start))
                            .ok_or(StrategyError::BadQuery {
                                what: "spanner group length missing from the prepared Haar plans",
                            })?;
                    let est = privelet_histogram_planned(plan, &x_g[start..end], eps_eff, rng)?;
                    out[start..end].copy_from_slice(&est);
                }
                out
            }
        };
        let est_reduced = self.incidence.apply(&x_tilde)?;
        let totals = self.incidence.component_totals(x)?;
        Ok(self.incidence.reconstruct_database(&est_reduced, &totals)?)
    }
}

/// The θ-line strategy as a [`Mechanism`]: a shared prepared
/// [`ThetaLineStrategy`] (spanner + incidence + Haar plans, built once by
/// the plan cache) with the budget and edge-space estimator bound in.
#[derive(Clone, Debug)]
pub struct ThetaLineMechanism {
    strategy: Arc<ThetaLineStrategy>,
    eps: Epsilon,
    estimator: ThetaEstimator,
}

impl ThetaLineMechanism {
    /// Binds a prepared strategy, budget, and estimator.
    pub fn new(strategy: Arc<ThetaLineStrategy>, eps: Epsilon, estimator: ThetaEstimator) -> Self {
        ThetaLineMechanism {
            strategy,
            eps,
            estimator,
        }
    }

    /// The shared prepared strategy.
    pub fn strategy(&self) -> &Arc<ThetaLineStrategy> {
        &self.strategy
    }

    /// Releases the histogram estimate (generic over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        self.strategy.histogram(x, self.eps, self.estimator, rng)
    }
}

impl Mechanism for ThetaLineMechanism {
    fn name(&self) -> &str {
        self.estimator.name()
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// Analytic per-query error order of the Theorem 5.5 strategy:
/// `O(log³θ / ε²)` (with the ε/3 stretch cost folded in by the caller).
pub fn theta_line_error_order(theta: usize, eps: Epsilon) -> f64 {
    let logt = ((theta.next_power_of_two().trailing_zeros() as f64) + 1.0).max(1.0);
    logt.powi(3) / (eps.value() * eps.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::{mse_per_query, Domain, RangeQuery, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db(counts: Vec<f64>) -> DataVector {
        let k = counts.len();
        DataVector::new(Domain::one_dim(k), counts).unwrap()
    }

    #[test]
    fn construction_and_stretch() {
        let s = ThetaLineStrategy::new(64, 4).unwrap();
        assert!(s.stretch() <= 3);
        assert!(ThetaLineStrategy::new(4, 4).is_err());
    }

    #[test]
    fn histogram_is_unbiased_for_all_estimators() {
        let x = db(vec![
            4.0, 1.0, 0.0, 7.0, 2.0, 5.0, 3.0, 8.0, 0.0, 6.0, 1.0, 2.0,
        ]);
        let strat = ThetaLineStrategy::new(12, 3).unwrap();
        let eps = Epsilon::new(2.0).unwrap();
        for (seed, est) in [
            (1u64, ThetaEstimator::Laplace),
            (2, ThetaEstimator::GroupPrivelet),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let trials = 300;
            let mut mean = [0.0; 12];
            for _ in 0..trials {
                let e = strat.histogram(&x, eps, est, &mut rng).unwrap();
                assert!((e.iter().sum::<f64>() - x.total()).abs() < 1e-6);
                for (m, v) in mean.iter_mut().zip(&e) {
                    *m += v;
                }
            }
            for (i, m) in mean.iter().enumerate() {
                let avg = m / trials as f64;
                assert!(
                    (avg - x.get(i)).abs() < 1.5,
                    "{est:?} cell {i}: {avg} vs {}",
                    x.get(i)
                );
            }
        }
    }

    #[test]
    fn error_flat_in_domain_size() {
        // Figure 8d's signature behaviour: the Blowfish θ-strategy error
        // does not grow with the domain size.
        let eps = Epsilon::new(0.5).unwrap();
        let mut errors = Vec::new();
        for k in [128usize, 1024] {
            let x = db(vec![1.0; k]);
            let strat = ThetaLineStrategy::new(k, 4).unwrap();
            let d = Domain::one_dim(k);
            let mut sp_rng = StdRng::seed_from_u64(42);
            let (_, specs) = Workload::random_ranges(&d, 100, &mut sp_rng).unwrap();
            let truth = crate::answering::true_ranges_1d(&x, &specs).unwrap();
            let mut rng = StdRng::seed_from_u64(9);
            let trials = 100;
            let mut acc = 0.0;
            for _ in 0..trials {
                let est = strat
                    .histogram(&x, eps, ThetaEstimator::Laplace, &mut rng)
                    .unwrap();
                let ans = crate::answering::answer_ranges_1d(&est, &specs).unwrap();
                acc += mse_per_query(&truth, &ans).unwrap();
            }
            errors.push(acc / trials as f64);
        }
        let ratio = errors[1] / errors[0];
        assert!(
            ratio < 2.0,
            "error grew with domain size: {errors:?} (ratio {ratio})"
        );
    }

    #[test]
    fn range_answers_match_boundary_structure() {
        // With (near-)zero noise the strategy must answer ranges exactly —
        // verifying the P_G reconstruction end to end.
        let x = db(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0]);
        let strat = ThetaLineStrategy::new(9, 3).unwrap();
        let eps = Epsilon::new(1e7).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let d = Domain::one_dim(9);
        let specs: Vec<RangeQuery> = vec![
            RangeQuery::one_dim(&d, 0, 8).unwrap(),
            RangeQuery::one_dim(&d, 2, 5).unwrap(),
            RangeQuery::one_dim(&d, 4, 4).unwrap(),
            RangeQuery::one_dim(&d, 7, 8).unwrap(),
        ];
        let truth = crate::answering::true_ranges_1d(&x, &specs).unwrap();
        for est_kind in [
            ThetaEstimator::Laplace,
            ThetaEstimator::GroupPrivelet,
            ThetaEstimator::Dawa,
        ] {
            let est = strat.histogram(&x, eps, est_kind, &mut rng).unwrap();
            let ans = crate::answering::answer_ranges_1d(&est, &specs).unwrap();
            for (a, t) in ans.iter().zip(&truth) {
                assert!((a - t).abs() < 0.1, "{est_kind:?}: answer {a} vs truth {t}");
            }
        }
    }

    #[test]
    fn group_privelet_beats_whole_domain_privelet_shape() {
        // Theorem 5.5: per-group Privelet error scales with log³θ, not
        // log³k, so at fixed θ the error stays bounded while plain
        // DP-Privelet error grows with k. Compare the strategy against the
        // ε/2-DP Privelet baseline on a large domain.
        let k = 2048;
        let theta = 4;
        let x = db(vec![2.0; k]);
        let eps = Epsilon::new(1.0).unwrap();
        let strat = ThetaLineStrategy::new(k, theta).unwrap();
        let d = Domain::one_dim(k);
        let mut sp_rng = StdRng::seed_from_u64(5);
        let (_, specs) = Workload::random_ranges(&d, 100, &mut sp_rng).unwrap();
        let truth = crate::answering::true_ranges_1d(&x, &specs).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 40;
        let mut blowfish = 0.0;
        let mut dp = 0.0;
        for _ in 0..trials {
            let b = strat
                .histogram(&x, eps, ThetaEstimator::GroupPrivelet, &mut rng)
                .unwrap();
            blowfish += mse_per_query(
                &truth,
                &crate::answering::answer_ranges_1d(&b, &specs).unwrap(),
            )
            .unwrap();
            let p = crate::baselines::dp_privelet_1d(&x, eps.half(), &mut rng).unwrap();
            dp += mse_per_query(
                &truth,
                &crate::answering::answer_ranges_1d(&p, &specs).unwrap(),
            )
            .unwrap();
        }
        assert!(
            blowfish < dp,
            "Blowfish θ-strategy {blowfish} vs ε/2-DP Privelet {dp}"
        );
    }

    #[test]
    fn error_order_helper() {
        let eps = Epsilon::new(1.0).unwrap();
        assert!(theta_line_error_order(16, eps) > theta_line_error_order(2, eps));
    }
}
