//! # blowfish-strategies
//!
//! The policy-aware mechanisms of Section 5 of *Haney, Machanavajjhala &
//! Ding, "Design of Policy-Aware Differentially Private Algorithms"
//! (VLDB 2015)*, built on the transformational-equivalence machinery of
//! `blowfish-core` and the DP substrates of `blowfish-mechanisms`:
//!
//! * [`line1d`] — Algorithm 1 for `R_k` under `G¹_k` (Θ(1/ε²) per query,
//!   Theorem 5.2) plus the Section 5.4 data-dependent variants
//!   (`Transformed + ConsistentEst`, `Trans + DAWA (+ Cons)`).
//! * [`theta_line`] — `R_k` under `G^θ_k` via the `H^θ_k` spanner
//!   (Theorem 5.5: `O(log³θ/ε²)`).
//! * [`grid`] — `R_{k²}` under `G¹_{k²}` via per-edge-row Privelet
//!   (Theorem 5.4; the paper's `Transformed + Privelet`).
//! * [`theta_grid`] — `R_{k²}` under `G^θ_{k²}` via the internal/external
//!   edge split of Figure 7 (Theorem 5.6).
//! * [`baselines`] — the ε/2-DP comparison algorithms of Section 6
//!   (Laplace, Privelet 1-D/2-D, DAWA 1-D/2-D).
//! * [`lower_bounds`] — the Appendix A / Corollary A.2 SVD lower bounds
//!   (Figure 10), with an O(k³) eigenvalue path valid for every policy.
//! * [`answering`] — O(1)-per-query bulk range answering from histogram
//!   estimates (prefix sums / summed-area tables).
//!
//! Every strategy returns a histogram estimate `x̂` over the original
//! domain; by the identity `Σ_{v∈box} (P_G·x̃_G)[v] = q_G·x̃_G` this is
//! exactly equivalent to answering transformed queries in edge space (see
//! DESIGN.md §6), while making 10,000-query workloads O(1) per query.

pub mod answering;
pub mod approx_dp;
pub mod baselines;
pub mod grid;
pub mod line1d;
pub mod lower_bounds;
pub mod mechanism;
pub mod theta_grid;
pub mod theta_line;

pub use answering::{answer_ranges_1d, answer_ranges_2d, true_ranges_1d, true_ranges_2d};
pub use approx_dp::{
    line_blowfish_histogram_gaussian, line_range_error_gaussian, tree_blowfish_histogram_gaussian,
};
pub use baselines::{
    dp_dawa_1d, dp_dawa_2d, dp_laplace, dp_privelet_1d, dp_privelet_nd, DawaBaseline1d,
    DawaBaseline2d, LaplaceBaseline, PriveletBaseline1d, PriveletBaselineNd,
};
pub use grid::{grid_blowfish_histogram, grid_error_order, GridMechanism, GridPlans};
pub use line1d::{
    line_blowfish_histogram, line_range_error, tree_blowfish_histogram, LineMechanism,
    TreeEstimator, TreeMechanism,
};
pub use lower_bounds::{p_eps_delta, svd_lower_bound, svd_lower_bound_unbounded_dp};
pub use mechanism::{Estimate, Mechanism};
pub use theta_grid::{theta_grid_error_order, ThetaGridMechanism, ThetaGridStrategy};
pub use theta_line::{
    theta_line_error_order, ThetaEstimator, ThetaLineMechanism, ThetaLineStrategy,
};

/// Errors reported by strategy construction or execution.
#[derive(Clone, Debug, PartialEq)]
pub enum StrategyError {
    /// A query/domain/parameter combination was invalid.
    BadQuery {
        /// What was wrong.
        what: &'static str,
    },
    /// An error from the core crate.
    Core(blowfish_core::CoreError),
    /// An error from a mechanism substrate.
    Mechanism(blowfish_mechanisms::MechanismError),
    /// An error from the linear-algebra substrate.
    Linalg(blowfish_linalg::LinalgError),
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::BadQuery { what } => write!(f, "bad query/parameters: {what}"),
            StrategyError::Core(e) => write!(f, "core error: {e}"),
            StrategyError::Mechanism(e) => write!(f, "mechanism error: {e}"),
            StrategyError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for StrategyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StrategyError::Core(e) => Some(e),
            StrategyError::Mechanism(e) => Some(e),
            StrategyError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<blowfish_core::CoreError> for StrategyError {
    fn from(e: blowfish_core::CoreError) -> Self {
        StrategyError::Core(e)
    }
}

impl From<blowfish_mechanisms::MechanismError> for StrategyError {
    fn from(e: blowfish_mechanisms::MechanismError) -> Self {
        StrategyError::Mechanism(e)
    }
}

impl From<blowfish_linalg::LinalgError> for StrategyError {
    fn from(e: blowfish_linalg::LinalgError) -> Self {
        StrategyError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources() {
        let e = StrategyError::BadQuery { what: "test" };
        assert!(e.to_string().contains("test"));
        let e: StrategyError = blowfish_core::CoreError::EmptyDomain.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: StrategyError =
            blowfish_mechanisms::MechanismError::StrategyDoesNotSupportWorkload.into();
        assert!(e.to_string().contains("mechanism"));
        let e: StrategyError = blowfish_linalg::LinalgError::RaggedRows.into();
        assert!(e.to_string().contains("linear algebra"));
    }
}
