//! The multi-dimensional grid strategy for `G¹_{k^d}` (Section 5.2.2,
//! Theorem 5.4), implemented concretely for `d = 2` — the paper's
//! `Transformed + Privelet` algorithm of Figure 8a.
//!
//! Under the grid policy the transformed domain is the set of grid edges.
//! A 2-D range query transforms into its *boundary edges* (Lemma 5.1 /
//! Figure 5a): four contiguous runs — two runs of vertical edges and two
//! of horizontal edges. The strategy answers all 1-D ranges along every
//! row of vertical edges and every column of horizontal edges with
//! Privelet; the rows/columns are disjoint edge sets, so by parallel
//! composition each enjoys the full budget, and any query costs just
//! 4 Privelet range answers: `O(d·log^{3(d−1)}k/ε²)` per query.
//!
//! Concretely we materialize the canonical edge solution (vertical edges
//! carry column prefix sums; bottom-row horizontal edges carry cumulative
//! column totals — `P_G x_G = x` is verified in the tests), estimate every
//! edge group with Privelet, and map back through `x̂ = P_G·x̃_G` with the
//! Case II corner reconstruction. Summing `x̂` over a box is then exactly
//! the paper's 4-boundary-run answer (interior noise telescopes away).

use std::sync::Arc;

use rand::{Rng, RngCore};

use blowfish_core::{DataVector, Epsilon};
use blowfish_mechanisms::{privelet_histogram_planned, HaarPlan};

use crate::mechanism::{Estimate, Mechanism};
use crate::StrategyError;

/// Prepared Haar plans for a `rows × cols` grid strategy: one per line
/// direction, reusable across fits and trials.
#[derive(Clone, Debug)]
pub struct GridPlans {
    rows: usize,
    cols: usize,
    /// Plan for the per-edge-row vertical estimates (lines of length `cols`).
    row: Arc<HaarPlan>,
    /// Plan for the per-edge-column horizontal estimates (lines of length `rows`).
    col: Arc<HaarPlan>,
}

impl GridPlans {
    /// Builds both direction plans for a `rows × cols` grid.
    pub fn new(rows: usize, cols: usize) -> Result<Self, StrategyError> {
        Ok(GridPlans {
            rows,
            cols,
            row: Arc::new(HaarPlan::new(&[cols])?),
            col: Arc::new(HaarPlan::new(&[rows])?),
        })
    }

    /// The grid shape these plans serve.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// The `(ε, G¹_{k²})`-Blowfish grid strategy (`Transformed + Privelet`,
/// Theorem 5.4) as a [`Mechanism`]. Works on any `rows × cols`
/// two-dimensional domain with both sides ≥ 2; optionally carries
/// precomputed [`GridPlans`] so repeated fits skip the per-call Haar
/// weight derivation.
#[derive(Clone, Debug)]
pub struct GridMechanism {
    eps: Epsilon,
    plans: Option<GridPlans>,
}

impl GridMechanism {
    /// Binds the budget; plans are derived per fit.
    pub fn new(eps: Epsilon) -> Self {
        GridMechanism { eps, plans: None }
    }

    /// Binds the budget with precomputed plans (plan-once/serve-many).
    pub fn with_plans(eps: Epsilon, plans: GridPlans) -> Self {
        GridMechanism {
            eps,
            plans: Some(plans),
        }
    }

    /// Releases the histogram estimate (generic over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        let domain = x.domain();
        if domain.num_dims() != 2 {
            return Err(StrategyError::BadQuery {
                what: "grid strategy requires a two-dimensional domain",
            });
        }
        let (rows, cols) = (domain.dim(0), domain.dim(1));
        if rows < 2 || cols < 2 {
            return Err(StrategyError::BadQuery {
                what: "grid strategy requires both dimensions ≥ 2",
            });
        }
        let local_plans;
        let plans = match &self.plans {
            Some(p) => {
                if p.shape() != (rows, cols) {
                    return Err(StrategyError::BadQuery {
                        what: "cached grid plans do not match the database shape",
                    });
                }
                p
            }
            None => {
                local_plans = GridPlans::new(rows, cols)?;
                &local_plans
            }
        };
        grid_histogram_impl(x, self.eps, plans, rng)
    }
}

impl Mechanism for GridMechanism {
    fn name(&self) -> &str {
        "Transformed + Privelet"
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// The `(ε, G¹_{k²})`-Blowfish histogram estimate — thin wrapper over
/// [`GridMechanism`].
pub fn grid_blowfish_histogram<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    GridMechanism::new(eps).fit_histogram(x, rng)
}

/// Shared strategy body against prepared plans.
fn grid_histogram_impl<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    plans: &GridPlans,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    let (rows, cols) = plans.shape();
    let n = x.total();
    let at = |r: usize, c: usize| x.get(r * cols + c);

    // True edge values of the canonical solution.
    // Vertical edge between rows (i, i+1) in column j carries the column
    // prefix V(i, j) = Σ_{r ≤ i} x[r, j]; estimated per edge-row i.
    let mut v_est: Vec<Vec<f64>> = Vec::with_capacity(rows - 1);
    let mut col_prefix = vec![0.0; cols];
    for i in 0..rows - 1 {
        for (j, cp) in col_prefix.iter_mut().enumerate() {
            *cp += at(i, j);
        }
        v_est.push(privelet_histogram_planned(
            &plans.row,
            &col_prefix,
            eps,
            rng,
        )?);
    }

    // Horizontal edge between columns (j, j+1) in row i carries 0 except
    // in the bottom row, where it carries the cumulative column total
    // H(j) = Σ_{c ≤ j} Σ_r x[r, c]; estimated per edge-column j.
    let mut h_est: Vec<Vec<f64>> = Vec::with_capacity(cols - 1);
    let mut cum_total = 0.0;
    for j in 0..cols - 1 {
        cum_total += (0..rows).map(|r| at(r, j)).sum::<f64>();
        let mut column = vec![0.0; rows];
        column[rows - 1] = cum_total;
        h_est.push(privelet_histogram_planned(&plans.col, &column, eps, rng)?);
    }

    // Map back: x̂(i, j) = Ṽ(i, j) − Ṽ(i−1, j) + H̃(i, j) − H̃(i, j−1)
    // (absent edges contribute zero); the corner is reconstructed from the
    // public total.
    let v_at = |i: isize, j: usize| -> f64 {
        if i < 0 || i as usize >= rows - 1 {
            0.0
        } else {
            v_est[i as usize][j]
        }
    };
    let h_at = |i: usize, j: isize| -> f64 {
        if j < 0 || j as usize >= cols - 1 {
            0.0
        } else {
            h_est[j as usize][i]
        }
    };
    let mut out = vec![0.0; rows * cols];
    let mut non_corner_sum = 0.0;
    for i in 0..rows {
        for j in 0..cols {
            if i == rows - 1 && j == cols - 1 {
                continue; // the ⊥-replaced corner
            }
            let est = v_at(i as isize, j) - v_at(i as isize - 1, j) + h_at(i, j as isize)
                - h_at(i, j as isize - 1);
            out[i * cols + j] = est;
            non_corner_sum += est;
        }
    }
    out[rows * cols - 1] = n - non_corner_sum;
    Ok(out)
}

/// Analytic per-query error order of the 2-D grid strategy
/// (Theorem 5.4, d = 2): `O(log³k/ε²)` — a log³k factor below DP-Privelet's
/// `O(log⁶k/ε²)` on 2-D ranges.
pub fn grid_error_order(k: usize, eps: Epsilon) -> f64 {
    let logk = (k.next_power_of_two().trailing_zeros() as f64 + 1.0).max(1.0);
    2.0 * logk.powi(3) / (eps.value() * eps.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::{mse_per_query, Domain, RangeQuery, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_db(k: usize, f: impl Fn(usize, usize) -> f64) -> DataVector {
        let counts = (0..k * k).map(|i| f(i / k, i % k)).collect::<Vec<f64>>();
        DataVector::new(Domain::square(k), counts).unwrap()
    }

    #[test]
    fn exact_at_negligible_noise() {
        // End-to-end reconstruction check: with ε huge the estimate must
        // equal the database exactly (verifies P_G x_G = x for the
        // canonical edge solution, including the corner).
        let x = grid_db(5, |r, c| (r * 5 + c) as f64);
        let eps = Epsilon::new(1e8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let est = grid_blowfish_histogram(&x, eps, &mut rng).unwrap();
        for (e, t) in est.iter().zip(x.counts()) {
            assert!((e - t).abs() < 1e-3, "{e} vs {t}");
        }
    }

    #[test]
    fn unbiased_and_total_preserving() {
        let x = grid_db(6, |r, c| ((r * 3 + c * 5) % 7) as f64);
        let eps = Epsilon::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 200;
        let mut mean = vec![0.0; 36];
        for _ in 0..trials {
            let est = grid_blowfish_histogram(&x, eps, &mut rng).unwrap();
            assert!((est.iter().sum::<f64>() - x.total()).abs() < 1e-6);
            for (m, e) in mean.iter_mut().zip(&est) {
                *m += e;
            }
        }
        for (i, m) in mean.iter().enumerate() {
            let avg = m / trials as f64;
            assert!(
                (avg - x.counts()[i]).abs() < 2.5,
                "cell {i}: {avg} vs {}",
                x.counts()[i]
            );
        }
    }

    #[test]
    fn beats_dp_privelet_on_2d_ranges() {
        // The Figure 8a headline: Transformed+Privelet (ε) beats DP
        // Privelet (ε/2) on 2-D range queries for non-tiny grids.
        let k = 32;
        let x = grid_db(k, |_, _| 1.0);
        let eps = Epsilon::new(1.0).unwrap();
        let d = Domain::square(k);
        let mut sp_rng = StdRng::seed_from_u64(3);
        let (_, specs) = Workload::random_ranges(&d, 150, &mut sp_rng).unwrap();
        let truth = crate::answering::true_ranges_2d(&x, &specs).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 40;
        let mut blowfish = 0.0;
        let mut dp = 0.0;
        for _ in 0..trials {
            let b = grid_blowfish_histogram(&x, eps, &mut rng).unwrap();
            blowfish += mse_per_query(
                &truth,
                &crate::answering::answer_ranges_2d(&b, k, k, &specs).unwrap(),
            )
            .unwrap();
            let p = crate::baselines::dp_privelet_nd(&x, eps.half(), &mut rng).unwrap();
            dp += mse_per_query(
                &truth,
                &crate::answering::answer_ranges_2d(&p, k, k, &specs).unwrap(),
            )
            .unwrap();
        }
        assert!(
            blowfish < dp,
            "grid strategy {blowfish} vs DP Privelet {dp}"
        );
    }

    #[test]
    fn rectangular_domains_supported() {
        let x = DataVector::new(
            Domain::product(&[3, 7]).unwrap(),
            (0..21).map(|v| v as f64).collect(),
        )
        .unwrap();
        let eps = Epsilon::new(1e8).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let est = grid_blowfish_histogram(&x, eps, &mut rng).unwrap();
        for (e, t) in est.iter().zip(x.counts()) {
            assert!((e - t).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_bad_domains() {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let x1 = DataVector::new(Domain::one_dim(9), vec![0.0; 9]).unwrap();
        assert!(grid_blowfish_histogram(&x1, eps, &mut rng).is_err());
        let thin = DataVector::new(Domain::product(&[1, 9]).unwrap(), vec![0.0; 9]).unwrap();
        assert!(grid_blowfish_histogram(&thin, eps, &mut rng).is_err());
    }

    #[test]
    fn boundary_noise_structure() {
        // A range in the interior only accumulates noise from its 4
        // boundary runs: its error must not grow with the range area.
        let k = 32;
        let x = grid_db(k, |_, _| 0.0);
        let eps = Epsilon::new(1.0).unwrap();
        let d = Domain::square(k);
        let small = RangeQuery::new(&d, vec![10, 10], vec![13, 13]).unwrap();
        let large = RangeQuery::new(&d, vec![2, 2], vec![29, 29]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 150;
        let mut err_small = 0.0;
        let mut err_large = 0.0;
        for _ in 0..trials {
            let est = grid_blowfish_histogram(&x, eps, &mut rng).unwrap();
            let ans =
                crate::answering::answer_ranges_2d(&est, k, k, &[small.clone(), large.clone()])
                    .unwrap();
            err_small += ans[0] * ans[0];
            err_large += ans[1] * ans[1];
        }
        // Area differs by ~49x; boundary-only noise keeps the ratio modest.
        assert!(
            err_large / err_small < 10.0,
            "large-range error {err_large} vs small {err_small}"
        );
    }

    #[test]
    fn error_order_helper() {
        let eps = Epsilon::new(1.0).unwrap();
        assert!(grid_error_order(100, eps) > grid_error_order(25, eps));
    }

    #[test]
    fn planned_mechanism_matches_free_function_bit_for_bit() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let x = grid_db(8, |r, c| ((r * 3 + c) % 5) as f64);
        let eps = Epsilon::new(0.5).unwrap();
        let planned = GridMechanism::with_plans(eps, GridPlans::new(8, 8).unwrap());
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let via_planned = planned.fit_histogram(&x, &mut a).unwrap();
        let via_free = grid_blowfish_histogram(&x, eps, &mut b).unwrap();
        assert_eq!(via_planned, via_free);
        // Mismatched cached plans are rejected rather than silently wrong.
        let wrong = GridMechanism::with_plans(eps, GridPlans::new(4, 4).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(wrong.fit_histogram(&x, &mut rng).is_err());
    }
}
