//! The ε/2-differentially-private baselines of Section 6.
//!
//! Every Section-6 figure compares `(ε, G)`-Blowfish strategies against
//! `ε/2`-DP algorithms for the same task (the factor 2 makes add/remove DP
//! comparable with the replace-style policies). The baselines are:
//!
//! * **Laplace** — the data-independent histogram baseline (Hist panels);
//! * **Privelet** — the data-independent range-query baseline, 1-D and 2-D;
//! * **DAWA** — the data-dependent baseline, 1-D natively and 2-D via
//!   row-major linearization (substitution documented in DESIGN.md §7).
//!
//! Each baseline returns a histogram estimate `x̂`; range answers come from
//! [`crate::answering`].

use rand::Rng;

use blowfish_core::{DataVector, Epsilon};
use blowfish_mechanisms::{
    dawa_histogram, laplace_histogram, privelet_histogram, privelet_histogram_1d, DawaOptions,
};

use crate::StrategyError;

/// ε-DP Laplace histogram baseline (sensitivity 1, unbounded DP).
pub fn dp_laplace<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    Ok(laplace_histogram(x.counts(), 1.0, eps, rng)?)
}

/// ε-DP Privelet baseline over a 1-D domain.
pub fn dp_privelet_1d<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    Ok(privelet_histogram_1d(x.counts(), eps, rng)?)
}

/// ε-DP Privelet baseline over a multi-dimensional domain.
pub fn dp_privelet_nd<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    Ok(privelet_histogram(x.counts(), x.domain().dims(), eps, rng)?)
}

/// ε-DP DAWA baseline over a 1-D domain.
pub fn dp_dawa_1d<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    Ok(dawa_histogram(
        x.counts(),
        eps,
        DawaOptions::default(),
        rng,
    )?)
}

/// ε-DP DAWA baseline over a 2-D domain via row-major linearization: the
/// 1-D partition still discovers the long zero-runs of sparse geo grids,
/// which is all the Figure 8a narrative requires.
pub fn dp_dawa_2d<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    if x.domain().num_dims() != 2 {
        return Err(StrategyError::BadQuery {
            what: "dp_dawa_2d requires a two-dimensional domain",
        });
    }
    Ok(dawa_histogram(
        x.counts(),
        eps,
        DawaOptions::default(),
        rng,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::Domain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db_1d(counts: Vec<f64>) -> DataVector {
        let k = counts.len();
        DataVector::new(Domain::one_dim(k), counts).unwrap()
    }

    #[test]
    fn baselines_return_right_shapes() {
        let x = db_1d(vec![1.0; 32]);
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(dp_laplace(&x, eps, &mut rng).unwrap().len(), 32);
        assert_eq!(dp_privelet_1d(&x, eps, &mut rng).unwrap().len(), 32);
        assert_eq!(dp_dawa_1d(&x, eps, &mut rng).unwrap().len(), 32);

        let x2 = DataVector::new(Domain::square(6), vec![1.0; 36]).unwrap();
        assert_eq!(dp_privelet_nd(&x2, eps, &mut rng).unwrap().len(), 36);
        assert_eq!(dp_dawa_2d(&x2, eps, &mut rng).unwrap().len(), 36);
    }

    #[test]
    fn dawa_2d_rejects_1d_domain() {
        let x = db_1d(vec![1.0; 8]);
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(dp_dawa_2d(&x, eps, &mut rng).is_err());
    }

    #[test]
    fn estimates_track_truth_at_high_epsilon() {
        let x = db_1d(vec![100.0; 16]);
        let eps = Epsilon::new(50.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for est in [
            dp_laplace(&x, eps, &mut rng).unwrap(),
            dp_privelet_1d(&x, eps, &mut rng).unwrap(),
            dp_dawa_1d(&x, eps, &mut rng).unwrap(),
        ] {
            for (e, t) in est.iter().zip(x.counts()) {
                assert!((e - t).abs() < 5.0, "estimate {e} vs truth {t}");
            }
        }
    }
}
