//! The ε/2-differentially-private baselines of Section 6.
//!
//! Every Section-6 figure compares `(ε, G)`-Blowfish strategies against
//! `ε/2`-DP algorithms for the same task (the factor 2 makes add/remove DP
//! comparable with the replace-style policies). The baselines are:
//!
//! * **Laplace** — the data-independent histogram baseline (Hist panels);
//! * **Privelet** — the data-independent range-query baseline, 1-D and 2-D;
//! * **DAWA** — the data-dependent baseline, 1-D natively and 2-D via
//!   row-major linearization (substitution documented in DESIGN.md §7).
//!
//! Each baseline is a [`Mechanism`] struct with its budget bound in; the
//! historical free functions (`dp_laplace`, …) remain as thin wrappers and
//! produce bit-identical output for a fixed seed. Range answers come from
//! the fitted [`Estimate`] or [`crate::answering`].

use rand::{Rng, RngCore};

use blowfish_core::{DataVector, Epsilon};
use blowfish_mechanisms::{
    dawa_histogram, laplace_histogram, privelet_histogram, privelet_histogram_1d, DawaOptions,
};

use crate::mechanism::{Estimate, Mechanism};
use crate::StrategyError;

/// The ε-DP Laplace histogram baseline (sensitivity 1, unbounded DP).
#[derive(Clone, Copy, Debug)]
pub struct LaplaceBaseline {
    eps: Epsilon,
}

impl LaplaceBaseline {
    /// Binds the budget.
    pub fn new(eps: Epsilon) -> Self {
        LaplaceBaseline { eps }
    }

    /// Releases the noisy histogram (generic over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        Ok(laplace_histogram(x.counts(), 1.0, self.eps, rng)?)
    }
}

impl Mechanism for LaplaceBaseline {
    fn name(&self) -> &str {
        "Laplace"
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// The ε-DP Privelet baseline over a 1-D domain.
#[derive(Clone, Copy, Debug)]
pub struct PriveletBaseline1d {
    eps: Epsilon,
}

impl PriveletBaseline1d {
    /// Binds the budget.
    pub fn new(eps: Epsilon) -> Self {
        PriveletBaseline1d { eps }
    }

    /// Releases the noisy histogram (generic over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        Ok(privelet_histogram_1d(x.counts(), self.eps, rng)?)
    }
}

impl Mechanism for PriveletBaseline1d {
    fn name(&self) -> &str {
        "Privelet"
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// The ε-DP Privelet baseline over a multi-dimensional domain.
#[derive(Clone, Copy, Debug)]
pub struct PriveletBaselineNd {
    eps: Epsilon,
}

impl PriveletBaselineNd {
    /// Binds the budget.
    pub fn new(eps: Epsilon) -> Self {
        PriveletBaselineNd { eps }
    }

    /// Releases the noisy histogram (generic over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        Ok(privelet_histogram(
            x.counts(),
            x.domain().dims(),
            self.eps,
            rng,
        )?)
    }
}

impl Mechanism for PriveletBaselineNd {
    fn name(&self) -> &str {
        "Privelet"
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// The ε-DP DAWA baseline over a 1-D domain.
#[derive(Clone, Copy, Debug)]
pub struct DawaBaseline1d {
    eps: Epsilon,
}

impl DawaBaseline1d {
    /// Binds the budget.
    pub fn new(eps: Epsilon) -> Self {
        DawaBaseline1d { eps }
    }

    /// Releases the noisy histogram (generic over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        Ok(dawa_histogram(
            x.counts(),
            self.eps,
            DawaOptions::default(),
            rng,
        )?)
    }
}

impl Mechanism for DawaBaseline1d {
    fn name(&self) -> &str {
        "Dawa"
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// The ε-DP DAWA baseline over a 2-D domain via row-major linearization:
/// the 1-D partition still discovers the long zero-runs of sparse geo
/// grids, which is all the Figure 8a narrative requires.
#[derive(Clone, Copy, Debug)]
pub struct DawaBaseline2d {
    eps: Epsilon,
}

impl DawaBaseline2d {
    /// Binds the budget.
    pub fn new(eps: Epsilon) -> Self {
        DawaBaseline2d { eps }
    }

    /// Releases the noisy histogram (generic over the RNG).
    pub fn fit_histogram<R: Rng + ?Sized>(
        &self,
        x: &DataVector,
        rng: &mut R,
    ) -> Result<Vec<f64>, StrategyError> {
        if x.domain().num_dims() != 2 {
            return Err(StrategyError::BadQuery {
                what: "dp_dawa_2d requires a two-dimensional domain",
            });
        }
        Ok(dawa_histogram(
            x.counts(),
            self.eps,
            DawaOptions::default(),
            rng,
        )?)
    }
}

impl Mechanism for DawaBaseline2d {
    fn name(&self) -> &str {
        "Dawa"
    }

    fn epsilon(&self) -> Epsilon {
        self.eps
    }

    fn fit(&self, x: &DataVector, rng: &mut dyn RngCore) -> Result<Estimate, StrategyError> {
        Estimate::new(x.domain(), self.fit_histogram(x, rng)?)
    }
}

/// ε-DP Laplace histogram baseline — thin wrapper over
/// [`LaplaceBaseline`].
pub fn dp_laplace<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    LaplaceBaseline::new(eps).fit_histogram(x, rng)
}

/// ε-DP Privelet baseline over a 1-D domain — thin wrapper over
/// [`PriveletBaseline1d`].
pub fn dp_privelet_1d<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    PriveletBaseline1d::new(eps).fit_histogram(x, rng)
}

/// ε-DP Privelet baseline over a multi-dimensional domain — thin wrapper
/// over [`PriveletBaselineNd`].
pub fn dp_privelet_nd<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    PriveletBaselineNd::new(eps).fit_histogram(x, rng)
}

/// ε-DP DAWA baseline over a 1-D domain — thin wrapper over
/// [`DawaBaseline1d`].
pub fn dp_dawa_1d<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    DawaBaseline1d::new(eps).fit_histogram(x, rng)
}

/// ε-DP DAWA baseline over a 2-D domain — thin wrapper over
/// [`DawaBaseline2d`].
pub fn dp_dawa_2d<R: Rng + ?Sized>(
    x: &DataVector,
    eps: Epsilon,
    rng: &mut R,
) -> Result<Vec<f64>, StrategyError> {
    DawaBaseline2d::new(eps).fit_histogram(x, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::Domain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db_1d(counts: Vec<f64>) -> DataVector {
        let k = counts.len();
        DataVector::new(Domain::one_dim(k), counts).unwrap()
    }

    #[test]
    fn baselines_return_right_shapes() {
        let x = db_1d(vec![1.0; 32]);
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(dp_laplace(&x, eps, &mut rng).unwrap().len(), 32);
        assert_eq!(dp_privelet_1d(&x, eps, &mut rng).unwrap().len(), 32);
        assert_eq!(dp_dawa_1d(&x, eps, &mut rng).unwrap().len(), 32);

        let x2 = DataVector::new(Domain::square(6), vec![1.0; 36]).unwrap();
        assert_eq!(dp_privelet_nd(&x2, eps, &mut rng).unwrap().len(), 36);
        assert_eq!(dp_dawa_2d(&x2, eps, &mut rng).unwrap().len(), 36);
    }

    #[test]
    fn dawa_2d_rejects_1d_domain() {
        let x = db_1d(vec![1.0; 8]);
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(dp_dawa_2d(&x, eps, &mut rng).is_err());
    }

    #[test]
    fn estimates_track_truth_at_high_epsilon() {
        let x = db_1d(vec![100.0; 16]);
        let eps = Epsilon::new(50.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for est in [
            dp_laplace(&x, eps, &mut rng).unwrap(),
            dp_privelet_1d(&x, eps, &mut rng).unwrap(),
            dp_dawa_1d(&x, eps, &mut rng).unwrap(),
        ] {
            for (e, t) in est.iter().zip(x.counts()) {
                assert!((e - t).abs() < 5.0, "estimate {e} vs truth {t}");
            }
        }
    }

    #[test]
    fn mechanisms_report_their_constructed_epsilon() {
        let eps = Epsilon::new(0.25).unwrap();
        let mechs: Vec<Box<dyn Mechanism>> = vec![
            Box::new(LaplaceBaseline::new(eps)),
            Box::new(PriveletBaseline1d::new(eps)),
            Box::new(PriveletBaselineNd::new(eps)),
            Box::new(DawaBaseline1d::new(eps)),
            Box::new(DawaBaseline2d::new(eps)),
        ];
        for m in &mechs {
            assert_eq!(m.epsilon(), eps, "{}", m.name());
        }
    }

    #[test]
    fn trait_fit_matches_free_function() {
        let x = db_1d(vec![5.0; 16]);
        let eps = Epsilon::new(0.5).unwrap();
        let mech: &dyn Mechanism = &LaplaceBaseline::new(eps);
        assert_eq!(mech.name(), "Laplace");
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let via_trait = mech.fit(&x, &mut a).unwrap().into_histogram();
        let via_free = dp_laplace(&x, eps, &mut b).unwrap();
        assert_eq!(via_trait, via_free);
    }
}
