//! Mechanism specifications: the registry's name layer.
//!
//! A [`MechanismSpec`] is pure data — which algorithm, with which
//! estimator/threshold — and is what experiment configs, serving requests,
//! and the planner trade in. [`crate::Session`] turns a spec into a live
//! [`blowfish_strategies::Mechanism`] against its plan cache.
//!
//! Every baseline and Blowfish strategy used by the Figure 8/9 panels is
//! enumerable here, by stable id ([`MechanismSpec::id`] /
//! [`MechanismSpec::parse`]) and by figure-legend label
//! ([`MechanismSpec::label`]).

use blowfish_strategies::{ThetaEstimator, TreeEstimator};

/// The query workload class a plan serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Task {
    /// The identity workload `I_k` (the Hist panels).
    Histogram,
    /// Random 1-D range queries `R_k`.
    Range1d,
    /// Random 2-D range queries `R_{k²}`.
    Range2d,
}

/// A named, parameterized mechanism: every baseline and Blowfish strategy
/// the experiment panels use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MechanismSpec {
    /// ε-DP Laplace histogram baseline.
    Laplace,
    /// ε-DP Privelet baseline over a 1-D domain.
    Privelet1d,
    /// ε-DP Privelet baseline over a multi-dimensional domain.
    PriveletNd,
    /// ε-DP DAWA baseline over a 1-D domain.
    Dawa1d,
    /// ε-DP DAWA baseline over a 2-D domain (row-major linearization).
    Dawa2d,
    /// The `G¹_k` line strategy (Algorithm 1 / Section 5.4 variants).
    Line(TreeEstimator),
    /// The generic tree-policy strategy through the cached incidence.
    Tree(TreeEstimator),
    /// The `G^θ_k` strategy through the cached `H^θ_k` spanner.
    ThetaLine {
        /// Policy threshold θ.
        theta: usize,
        /// Edge-space estimator.
        estimator: ThetaEstimator,
    },
    /// The `G¹_{k²}` grid strategy (`Transformed + Privelet`).
    Grid,
    /// The `G^θ_{k²}` strategy through the cached block spanner.
    ThetaGrid {
        /// Policy threshold θ.
        theta: usize,
    },
    /// The ε-DP matrix mechanism on the histogram workload `I_k` with a
    /// named strategy, routed dense or sparse by the plan cache's
    /// [`MatrixPathMode`](crate::plan::MatrixPathMode) — above the
    /// density/size threshold this is the CSR + CG path that serves
    /// k≈10⁵ domains.
    MatrixHist {
        /// Which strategy matrix answers the histogram.
        strategy: MatrixStrategyKind,
    },
    /// The ε-DP matrix mechanism serving a real W ≠ I workload: the
    /// dyadic 1-D range workload answered from the reconstructed domain
    /// estimate `x̂ = x + A⁺η`. Served exclusively through the sparse
    /// path (the dense mechanism stores only `W A⁺` and cannot
    /// reconstruct `x̂`), sharing the strategy's cached gram solver with
    /// [`MechanismSpec::MatrixHist`].
    MatrixRange {
        /// Which strategy matrix answers the ranges.
        strategy: MatrixStrategyKind,
    },
}

/// Strategy matrices the [`MechanismSpec::MatrixHist`] mechanism plans
/// with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatrixStrategyKind {
    /// `A = I_k` (the Laplace mechanism in matrix-mechanism clothing).
    Identity,
    /// The binary hierarchical strategy `H_k` (O(k log k) sparse).
    Hierarchical,
    /// The Haar wavelet strategy `Y_k` (O(k log k) sparse).
    Wavelet,
}

impl MatrixStrategyKind {
    /// The stable id fragment (`identity` / `hierarchical` / `wavelet`)
    /// used in registry ids and plan-cache keys.
    pub fn id(self) -> &'static str {
        match self {
            MatrixStrategyKind::Identity => "identity",
            MatrixStrategyKind::Hierarchical => "hierarchical",
            MatrixStrategyKind::Wavelet => "wavelet",
        }
    }

    fn parse(id: &str) -> Option<MatrixStrategyKind> {
        Some(match id {
            "identity" => MatrixStrategyKind::Identity,
            "hierarchical" => MatrixStrategyKind::Hierarchical,
            "wavelet" => MatrixStrategyKind::Wavelet,
            _ => return None,
        })
    }
}

impl MechanismSpec {
    /// The figure-legend label (matches the paper's series names; not
    /// unique across specs — e.g. 1-D and 2-D Privelet baselines share
    /// "Privelet").
    pub fn label(&self) -> &'static str {
        match self {
            MechanismSpec::Laplace => "Laplace",
            MechanismSpec::Privelet1d | MechanismSpec::PriveletNd => "Privelet",
            MechanismSpec::Dawa1d | MechanismSpec::Dawa2d => "Dawa",
            MechanismSpec::Line(e) | MechanismSpec::Tree(e) => e.name(),
            MechanismSpec::ThetaLine { estimator, .. } => estimator.name(),
            MechanismSpec::Grid | MechanismSpec::ThetaGrid { .. } => "Transformed + Privelet",
            MechanismSpec::MatrixHist { .. } | MechanismSpec::MatrixRange { .. } => {
                "Matrix Mechanism"
            }
        }
    }

    /// A stable, unique registry id, e.g. `line-dawa-consistent` or
    /// `theta-line-4-laplace`. Round-trips through [`MechanismSpec::parse`].
    pub fn id(&self) -> String {
        match self {
            MechanismSpec::Laplace => "dp-laplace".into(),
            MechanismSpec::Privelet1d => "dp-privelet-1d".into(),
            MechanismSpec::PriveletNd => "dp-privelet-nd".into(),
            MechanismSpec::Dawa1d => "dp-dawa-1d".into(),
            MechanismSpec::Dawa2d => "dp-dawa-2d".into(),
            MechanismSpec::Line(e) => format!("line-{}", tree_estimator_id(*e)),
            MechanismSpec::Tree(e) => format!("tree-{}", tree_estimator_id(*e)),
            MechanismSpec::ThetaLine { theta, estimator } => {
                format!("theta-line-{theta}-{}", theta_estimator_id(*estimator))
            }
            MechanismSpec::Grid => "grid".into(),
            MechanismSpec::ThetaGrid { theta } => format!("theta-grid-{theta}"),
            MechanismSpec::MatrixHist { strategy } => format!("mm-hist-{}", strategy.id()),
            MechanismSpec::MatrixRange { strategy } => format!("mm-range-{}", strategy.id()),
        }
    }

    /// Parses a registry id produced by [`MechanismSpec::id`].
    pub fn parse(id: &str) -> Option<MechanismSpec> {
        match id {
            "dp-laplace" => return Some(MechanismSpec::Laplace),
            "dp-privelet-1d" => return Some(MechanismSpec::Privelet1d),
            "dp-privelet-nd" => return Some(MechanismSpec::PriveletNd),
            "dp-dawa-1d" => return Some(MechanismSpec::Dawa1d),
            "dp-dawa-2d" => return Some(MechanismSpec::Dawa2d),
            "grid" => return Some(MechanismSpec::Grid),
            _ => {}
        }
        if let Some(rest) = id.strip_prefix("line-") {
            return parse_tree_estimator(rest).map(MechanismSpec::Line);
        }
        if let Some(rest) = id.strip_prefix("tree-") {
            return parse_tree_estimator(rest).map(MechanismSpec::Tree);
        }
        if let Some(rest) = id.strip_prefix("theta-line-") {
            let (theta, est) = rest.split_once('-')?;
            return Some(MechanismSpec::ThetaLine {
                theta: theta.parse().ok()?,
                estimator: parse_theta_estimator(est)?,
            });
        }
        if let Some(rest) = id.strip_prefix("theta-grid-") {
            return Some(MechanismSpec::ThetaGrid {
                theta: rest.parse().ok()?,
            });
        }
        if let Some(rest) = id.strip_prefix("mm-hist-") {
            return MatrixStrategyKind::parse(rest)
                .map(|strategy| MechanismSpec::MatrixHist { strategy });
        }
        if let Some(rest) = id.strip_prefix("mm-range-") {
            return MatrixStrategyKind::parse(rest)
                .map(|strategy| MechanismSpec::MatrixRange { strategy });
        }
        None
    }

    /// Whether this is an ε/2-DP comparison baseline (Section 6 runs
    /// baselines at half the Blowfish budget to make add/remove DP
    /// comparable with replace-style policies).
    pub fn is_baseline(&self) -> bool {
        matches!(
            self,
            MechanismSpec::Laplace
                | MechanismSpec::Privelet1d
                | MechanismSpec::PriveletNd
                | MechanismSpec::Dawa1d
                | MechanismSpec::Dawa2d
                | MechanismSpec::MatrixHist { .. }
                | MechanismSpec::MatrixRange { .. }
        )
    }

    /// Enumerates every known spec at a representative threshold —
    /// the registry's full catalogue, used by docs and tests.
    pub fn all(theta: usize) -> Vec<MechanismSpec> {
        let mut out = vec![
            MechanismSpec::Laplace,
            MechanismSpec::Privelet1d,
            MechanismSpec::PriveletNd,
            MechanismSpec::Dawa1d,
            MechanismSpec::Dawa2d,
            MechanismSpec::Grid,
            MechanismSpec::ThetaGrid { theta },
        ];
        for e in [
            TreeEstimator::Laplace,
            TreeEstimator::LaplaceConsistent,
            TreeEstimator::Dawa,
            TreeEstimator::DawaConsistent,
            TreeEstimator::Hierarchical,
            TreeEstimator::HierarchicalConsistent,
        ] {
            out.push(MechanismSpec::Line(e));
        }
        for e in [
            TreeEstimator::Laplace,
            TreeEstimator::Dawa,
            TreeEstimator::Hierarchical,
        ] {
            out.push(MechanismSpec::Tree(e));
        }
        for e in [
            ThetaEstimator::Laplace,
            ThetaEstimator::GroupPrivelet,
            ThetaEstimator::Dawa,
        ] {
            out.push(MechanismSpec::ThetaLine {
                theta,
                estimator: e,
            });
        }
        for s in [
            MatrixStrategyKind::Identity,
            MatrixStrategyKind::Hierarchical,
            MatrixStrategyKind::Wavelet,
        ] {
            out.push(MechanismSpec::MatrixHist { strategy: s });
            out.push(MechanismSpec::MatrixRange { strategy: s });
        }
        out
    }
}

fn tree_estimator_id(e: TreeEstimator) -> &'static str {
    match e {
        TreeEstimator::Laplace => "laplace",
        TreeEstimator::LaplaceConsistent => "laplace-consistent",
        TreeEstimator::Dawa => "dawa",
        TreeEstimator::DawaConsistent => "dawa-consistent",
        TreeEstimator::Hierarchical => "hierarchical",
        TreeEstimator::HierarchicalConsistent => "hierarchical-consistent",
    }
}

fn parse_tree_estimator(id: &str) -> Option<TreeEstimator> {
    Some(match id {
        "laplace" => TreeEstimator::Laplace,
        "laplace-consistent" => TreeEstimator::LaplaceConsistent,
        "dawa" => TreeEstimator::Dawa,
        "dawa-consistent" => TreeEstimator::DawaConsistent,
        "hierarchical" => TreeEstimator::Hierarchical,
        "hierarchical-consistent" => TreeEstimator::HierarchicalConsistent,
        _ => return None,
    })
}

fn theta_estimator_id(e: ThetaEstimator) -> &'static str {
    match e {
        ThetaEstimator::Laplace => "laplace",
        ThetaEstimator::GroupPrivelet => "group-privelet",
        ThetaEstimator::Dawa => "dawa",
    }
}

fn parse_theta_estimator(id: &str) -> Option<ThetaEstimator> {
    Some(match id {
        "laplace" => ThetaEstimator::Laplace,
        "group-privelet" => ThetaEstimator::GroupPrivelet,
        "dawa" => ThetaEstimator::Dawa,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_round_trip() {
        let all = MechanismSpec::all(4);
        let mut seen = std::collections::HashSet::new();
        for spec in &all {
            let id = spec.id();
            assert!(seen.insert(id.clone()), "duplicate id {id}");
            assert_eq!(MechanismSpec::parse(&id), Some(*spec), "round trip {id}");
            assert!(!spec.label().is_empty());
        }
        assert!(MechanismSpec::parse("no-such-mechanism").is_none());
        assert!(MechanismSpec::parse("theta-line-x-laplace").is_none());
        assert!(MechanismSpec::parse("theta-line-4-nope").is_none());
    }

    #[test]
    fn baseline_classification() {
        assert!(MechanismSpec::Laplace.is_baseline());
        assert!(MechanismSpec::Dawa2d.is_baseline());
        assert!(!MechanismSpec::Grid.is_baseline());
        assert!(!MechanismSpec::Line(TreeEstimator::Laplace).is_baseline());
        // The matrix mechanism is data-oblivious pure-ε DP: baseline.
        assert!(MechanismSpec::MatrixHist {
            strategy: MatrixStrategyKind::Hierarchical
        }
        .is_baseline());
    }

    #[test]
    fn matrix_hist_ids_round_trip() {
        for (kind, id) in [
            (MatrixStrategyKind::Identity, "mm-hist-identity"),
            (MatrixStrategyKind::Hierarchical, "mm-hist-hierarchical"),
            (MatrixStrategyKind::Wavelet, "mm-hist-wavelet"),
        ] {
            let spec = MechanismSpec::MatrixHist { strategy: kind };
            assert_eq!(spec.id(), id);
            assert_eq!(MechanismSpec::parse(id), Some(spec));
        }
        assert!(MechanismSpec::parse("mm-hist-nope").is_none());
    }

    #[test]
    fn matrix_range_ids_round_trip() {
        for (kind, id) in [
            (MatrixStrategyKind::Identity, "mm-range-identity"),
            (MatrixStrategyKind::Hierarchical, "mm-range-hierarchical"),
            (MatrixStrategyKind::Wavelet, "mm-range-wavelet"),
        ] {
            let spec = MechanismSpec::MatrixRange { strategy: kind };
            assert_eq!(spec.id(), id);
            assert_eq!(MechanismSpec::parse(id), Some(spec));
            assert!(spec.is_baseline());
        }
        assert!(MechanismSpec::parse("mm-range-nope").is_none());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(MechanismSpec::Laplace.label(), "Laplace");
        assert_eq!(MechanismSpec::Privelet1d.label(), "Privelet");
        assert_eq!(
            MechanismSpec::Line(TreeEstimator::DawaConsistent).label(),
            "Trans + Dawa + Cons"
        );
        assert_eq!(MechanismSpec::Grid.label(), "Transformed + Privelet");
        assert_eq!(
            MechanismSpec::ThetaLine {
                theta: 4,
                estimator: ThetaEstimator::Dawa
            }
            .label(),
            "Trans + Dawa"
        );
    }
}
