//! TCP serving for the [`wire`](crate::wire) protocol: a bounded
//! thread-per-connection socket server multiplexing many concurrent
//! clients into one shared [`Service`].
//!
//! [`TcpServer::bind`] takes an address plus a [`NetConfig`] and returns
//! a running server: an accept thread hands each connection to its own
//! worker thread (cheap for this protocol — connections are mostly
//! parked in blocking reads, and the engine's lock-striped plan cache
//! and per-tenant ledgers do the real sharing). Every connection gets
//! its own [`Codec`], so `use`-style default-tenant state is
//! connection-scoped, exactly like a stdin session.
//!
//! Overload and lifecycle behavior, all tested over loopback:
//!
//! * **Backpressure** — at most [`NetConfig::max_connections`] live
//!   connections; beyond that, new clients get one
//!   `err server-busy …` line and an immediate close (an explicit shed,
//!   counted in [`NetStats::shed`], rather than an unbounded queue).
//! * **Line cap** — a request line longer than [`MAX_LINE_BYTES`] gets
//!   `err line-too-long …` and a close: one client cannot grow an
//!   unbounded buffer server-side.
//! * **Idle timeout** — a connection silent for
//!   [`NetConfig::idle_timeout`] is closed so abandoned clients cannot
//!   pin worker slots forever.
//! * **Graceful shutdown** — [`TcpServer::shutdown`] stops accepting,
//!   then waits (bounded) for in-flight connections to drain; workers
//!   observe the flag at their next read-timeout tick.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::service::Service;
use crate::wire::{Codec, WireReply};

/// Hard cap on one request line. The longest legitimate lines are
/// `tenant … data=v,v,…` uploads (a 4096-cell domain at ~20 bytes per
/// value is ~80 KiB), so the cap is sized above that, not above typical
/// traffic.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

/// How often a parked connection wakes to check idle time and the
/// shutdown flag (the read timeout on every worker socket).
const TICK: Duration = Duration::from_millis(200);

/// Pacing of the accept loop when polling a nonblocking listener.
const ACCEPT_IDLE: Duration = Duration::from_millis(2);

/// Tuning for a [`TcpServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Live-connection cap; connection attempts beyond it are shed with
    /// `err server-busy`.
    pub max_connections: usize,
    /// Close a connection after this much silence.
    pub idle_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 1024,
            idle_timeout: Duration::from_secs(300),
        }
    }
}

/// Monotonic counters describing a server's lifetime traffic, shared
/// with every worker thread.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted into a worker (including ones since closed).
    pub accepted: AtomicU64,
    /// Connections shed with `err server-busy` at the cap.
    pub shed: AtomicU64,
    /// Connections closed for exceeding the idle timeout.
    pub idle_closed: AtomicU64,
    /// Request lines served (one reply written per count).
    pub requests: AtomicU64,
    /// Currently open connections.
    pub live: AtomicUsize,
}

/// A running TCP front end over a shared [`Service`]. Dropping the
/// handle shuts the server down.
pub struct TcpServer {
    addr: SocketAddr,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:7741`, or port `0` for an ephemeral
    /// port) and starts accepting. The returned handle reports the
    /// concrete [`local_addr`](TcpServer::local_addr) and serves until
    /// [`shutdown`](TcpServer::shutdown) or drop.
    pub fn bind(
        service: Arc<Service>,
        addr: &str,
        config: NetConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking accept + sleep lets the accept thread observe the
        // stop flag promptly without platform-specific wakeup plumbing.
        listener.set_nonblocking(true)?;
        let stats = Arc::new(NetStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let (service, stats, stop) = (service, Arc::clone(&stats), Arc::clone(&stop));
            std::thread::Builder::new()
                .name("blowfish-accept".to_string())
                .spawn(move || accept_loop(listener, service, config, stats, stop))?
        };
        Ok(TcpServer {
            addr,
            stats,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's shared traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Stops accepting and waits up to `drain` for live connections to
    /// finish; returns `true` if the server drained fully. Workers see
    /// the flag within one read-timeout tick.
    pub fn shutdown(&mut self, drain: Duration) -> bool {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let deadline = Instant::now() + drain;
        while self.stats.live.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(TICK / 4);
        }
        true
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(2));
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    config: NetConfig,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_IDLE);
                continue;
            }
            // Transient accept errors (per-connection resets, fd
            // pressure): back off briefly rather than killing serving.
            Err(_) => {
                std::thread::sleep(ACCEPT_IDLE * 10);
                continue;
            }
        };
        if stats.live.load(Ordering::SeqCst) >= config.max_connections {
            shed(stream, &stats);
            continue;
        }
        stats.live.fetch_add(1, Ordering::SeqCst);
        stats.accepted.fetch_add(1, Ordering::SeqCst);
        let (service, stats_w, stop_w) =
            (Arc::clone(&service), Arc::clone(&stats), Arc::clone(&stop));
        let idle_timeout = config.idle_timeout;
        let spawned = std::thread::Builder::new()
            .name("blowfish-conn".to_string())
            // Workers parse lines and call into the engine — no deep
            // recursion — so a small stack keeps 1000+ threads cheap.
            .stack_size(256 * 1024)
            .spawn(move || {
                let _ = serve_connection(stream, &service, idle_timeout, &stats_w, &stop_w);
                stats_w.live.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): undo the
            // accounting; the stream drops closed.
            stats.live.fetch_sub(1, Ordering::SeqCst);
            stats.accepted.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Over-cap connection: one explanatory line, then close.
fn shed(mut stream: TcpStream, stats: &NetStats) {
    stats.shed.fetch_add(1, Ordering::SeqCst);
    let _ = stream.write_all(b"err server-busy (connection limit reached, retry later)\n");
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Drives one connection: banner, then a decode→dispatch→encode loop
/// with manual line framing, until quit/EOF/idle-timeout/shutdown.
fn serve_connection(
    mut stream: TcpStream,
    service: &Service,
    idle_timeout: Duration,
    stats: &NetStats,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // One request line in, one reply line out: flushing per reply
    // matters more than batching, so disable Nagle.
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(TICK))?;
    stream.write_all(Codec::banner().as_bytes())?;
    stream.write_all(b"\n")?;

    let mut codec = Codec::new();
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    let mut idle = Duration::ZERO;
    loop {
        // Serve every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes[..pos]);
            match codec.serve(service, line.trim_end_matches('\r')) {
                WireReply::Reply(reply) => {
                    stats.requests.fetch_add(1, Ordering::SeqCst);
                    stream.write_all(reply.as_bytes())?;
                    stream.write_all(b"\n")?;
                }
                WireReply::Silent => {}
                WireReply::Quit => {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Ok(());
                }
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            let _ = stream.write_all(b"err line-too-long (request line limit exceeded)\n");
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Ok(());
        }
        if stop.load(Ordering::SeqCst) {
            let _ = stream.write_all(b"err server-shutdown (connection closing)\n");
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // EOF
            Ok(n) => {
                idle = Duration::ZERO;
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle += TICK;
                if idle >= idle_timeout {
                    stats.idle_closed.fetch_add(1, Ordering::SeqCst);
                    let _ = stream.write_all(b"err idle-timeout (connection closing)\n");
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn server(config: NetConfig) -> TcpServer {
        TcpServer::bind(Arc::new(Service::new()), "127.0.0.1:0", config).unwrap()
    }

    /// Connect and consume the banner.
    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut banner = String::new();
        reader.read_line(&mut banner).unwrap();
        assert!(banner.starts_with("ok blowfish/1 "), "{banner}");
        (reader, stream)
    }

    fn roundtrip(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream, line: &str) -> String {
        writeln!(stream, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    #[test]
    fn serves_a_full_session_over_tcp() {
        let mut server = server(NetConfig::default());
        let (mut reader, mut stream) = client(server.local_addr());
        assert_eq!(
            roundtrip(
                &mut reader,
                &mut stream,
                "tenant acme policy=line:16 eps=0.5 budget=1.0 data=uniform:3",
            ),
            "ok tenant acme policy=G^1_16 cells=16"
        );
        assert_eq!(
            roundtrip(&mut reader, &mut stream, "hello blowfish/1"),
            "ok hello blowfish/1"
        );
        // Connection-scoped default tenant works over the socket.
        assert_eq!(
            roundtrip(&mut reader, &mut stream, "use acme"),
            "ok use acme"
        );
        let fit = roundtrip(&mut reader, &mut stream, "fit as=r1 seed=7");
        assert_eq!(fit, "ok fit r1 charged=0.5 spent=0.5 remaining=0.5");
        let answer = roundtrip(&mut reader, &mut stream, "answer from=r1 0..15");
        assert!(answer.starts_with("ok answer 1 "), "{answer}");
        // quit closes the connection (EOF on the reader).
        writeln!(stream, "quit").unwrap();
        let mut rest = String::new();
        reader.read_line(&mut rest).unwrap();
        assert_eq!(rest, "");
        assert!(server.shutdown(Duration::from_secs(5)));
        assert_eq!(server.stats().requests.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn default_tenant_state_is_per_connection() {
        let mut server = server(NetConfig::default());
        let (mut r1, mut s1) = client(server.local_addr());
        let (mut r2, mut s2) = client(server.local_addr());
        roundtrip(
            &mut r1,
            &mut s1,
            "tenant acme policy=line:8 eps=0.5 budget=4 data=uniform:1",
        );
        assert_eq!(roundtrip(&mut r1, &mut s1, "use acme"), "ok use acme");
        let ok = roundtrip(&mut r1, &mut s1, "fit as=a seed=1");
        assert!(ok.starts_with("ok fit a "), "{ok}");
        // The second connection shares the service but not the default.
        let err = roundtrip(&mut r2, &mut s2, "fit as=b seed=2");
        assert!(err.starts_with("err bad request"), "{err}");
        let ok2 = roundtrip(&mut r2, &mut s2, "fit acme as=b seed=2");
        assert!(ok2.starts_with("ok fit b "), "{ok2}");
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn connections_beyond_the_cap_are_shed() {
        let mut server = server(NetConfig {
            max_connections: 2,
            ..NetConfig::default()
        });
        let keep1 = client(server.local_addr());
        let keep2 = client(server.local_addr());
        // The third connection gets the busy line, not a banner.
        let extra = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(extra);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("err server-busy"), "{line}");
        // …and then EOF.
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "");
        assert_eq!(server.stats().shed.load(Ordering::SeqCst), 1);
        // Freeing a slot re-opens admission.
        drop(keep1);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let again = TcpStream::connect(server.local_addr()).unwrap();
            let mut reader = BufReader::new(again);
            let mut banner = String::new();
            reader.read_line(&mut banner).unwrap();
            if banner.starts_with("ok blowfish/1") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "slot never freed; last reply {banner}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        drop(keep2);
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn oversized_lines_close_the_connection() {
        let mut server = server(NetConfig::default());
        let (mut reader, mut stream) = client(server.local_addr());
        let huge = vec![b'x'; MAX_LINE_BYTES + 4096];
        stream.write_all(&huge).unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("err line-too-long"), "{reply}");
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn idle_connections_time_out() {
        let mut server = server(NetConfig {
            idle_timeout: Duration::from_millis(300),
            ..NetConfig::default()
        });
        let (mut reader, _stream) = client(server.local_addr());
        let started = Instant::now();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("err idle-timeout"), "{line}");
        assert!(started.elapsed() >= Duration::from_millis(250));
        assert_eq!(server.stats().idle_closed.load(Ordering::SeqCst), 1);
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn shutdown_notifies_parked_connections() {
        let mut server = server(NetConfig::default());
        let (mut reader, _stream) = client(server.local_addr());
        assert!(server.shutdown(Duration::from_secs(5)));
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("err server-shutdown"), "{line}");
        // New connections are refused once the listener is gone.
        assert!(TcpStream::connect(server.local_addr()).is_err());
    }
}
