//! TCP serving for the [`wire`](crate::wire) protocol: one shared
//! [`Service`] behind a socket server with two serving models.
//!
//! [`TcpServer::bind`] takes an address plus a [`NetConfig`] and starts
//! serving under the configured [`NetModel`]:
//!
//! * **`Reactor`** (default on Linux) — an epoll readiness reactor.
//!   A small fixed pool of event-loop threads (one per core, capped)
//!   multiplexes every connection through nonblocking sockets and
//!   per-connection [`LineSession`] state machines; an idle connection
//!   costs a few hundred bytes of buffers and **no thread**, so the
//!   server scales to thousands of mostly-idle connections with an
//!   O(cores) thread count. Connections are pinned to a loop by fd
//!   hash; idle timeouts ride a lazy timer wheel
//!   (`reactor::TimerWheel`) revalidated against real activity, so the
//!   request hot path does no timer bookkeeping.
//! * **`Threads`** (portable fallback) — the original bounded
//!   thread-per-connection model: each accepted connection gets its own
//!   worker thread parked in blocking reads.
//!
//! Both models share the acceptor, the [`NetStats`] counters, and the
//! same `LineSession` framing (banner → incremental line framing →
//! [`Codec`] decode → [`Service`] dispatch → write buffer with
//! partial-write continuation), so their wire behaviour is
//! byte-identical. On Linux the acceptor blocks on epoll over the
//! listener fd plus a shutdown eventfd doorbell — an idle server does
//! zero accept-path wakeups in either model (no accept busy-poll).
//!
//! Overload and lifecycle behaviour, all tested over loopback:
//!
//! * **Backpressure** — at most [`NetConfig::max_connections`] live
//!   connections; beyond that, new clients get one
//!   `err server-busy …` line and an immediate close (an explicit shed,
//!   counted in [`NetStats::shed`], rather than an unbounded queue).
//! * **Listen backlog** — [`NetConfig::listen_backlog`] is passed to
//!   `listen(2)` (std's `TcpListener::bind` hardcodes 128), so a mass
//!   simultaneous connect burst can ride the kernel queue instead of
//!   tripping SYN-flood defenses.
//! * **Line cap** — a request line longer than [`MAX_LINE_BYTES`] gets
//!   `err line-too-long …` and a close, enforced mid-stream while the
//!   line is still arriving: one client cannot grow an unbounded buffer
//!   server-side.
//! * **Idle timeout** — a connection silent for
//!   [`NetConfig::idle_timeout`] is closed (reactor: a timer-wheel
//!   eviction; threads: a read-timeout tick) so abandoned clients
//!   cannot pin resources forever.
//! * **Graceful shutdown** — [`TcpServer::shutdown`] stops accepting,
//!   notifies every live connection with `err server-shutdown …`, and
//!   waits (bounded) for the connection count to drain.
//!
//! The reactor's internal counters (spurious wakeups, partial writes
//! resumed, timer-wheel evictions) are visible to clients through the
//! TCP-only `stats net` request, answered at the framing layer without
//! touching the engine — load tests use it to assert that idle
//! connections generate no events.

#[cfg(target_os = "linux")]
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
#[cfg(target_os = "linux")]
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
use crate::reactor::{
    listen_with_backlog, Epoll, EpollEvent, EventFd, TimerWheel, EPOLLERR, EPOLLHUP, EPOLLIN,
    EPOLLOUT, EPOLLRDHUP,
};
use crate::service::Service;
use crate::wire::{Codec, WireReply};

/// Hard cap on one request line. The longest legitimate lines are
/// `tenant … data=v,v,…` uploads (a 4096-cell domain at ~20 bytes per
/// value is ~80 KiB), so the cap is sized above that, not above typical
/// traffic.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

/// How often a parked `threads`-model worker wakes to check idle time
/// and the shutdown flag (the read timeout on every worker socket).
const TICK: Duration = Duration::from_millis(200);

/// Cap on reactor event-loop threads (the pool is
/// `min(available cores, this)`): past a handful of loops the protocol
/// is service-bound, not event-bound.
const MAX_EVENT_LOOPS: usize = 8;

/// Bytes read per `read(2)` in the reactor loops.
const READ_CHUNK: usize = 16 * 1024;

/// Max `read` calls served per readiness event before yielding back to
/// the loop (level-triggered epoll re-fires if more input is pending),
/// so one firehose connection cannot starve its loop-mates.
const READS_PER_EVENT: usize = 16;

/// The serving model a [`TcpServer`] multiplexes connections with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetModel {
    /// Bounded thread-per-connection workers (portable fallback).
    Threads,
    /// Epoll readiness reactor: O(cores) event-loop threads serving all
    /// connections (Linux; falls back to `Threads` elsewhere).
    Reactor,
}

impl NetModel {
    /// The platform default: `Reactor` on Linux, `Threads` elsewhere.
    pub fn platform_default() -> NetModel {
        if cfg!(target_os = "linux") {
            NetModel::Reactor
        } else {
            NetModel::Threads
        }
    }

    /// The model that will actually serve: `Reactor` degrades to
    /// `Threads` off Linux.
    pub fn effective(self) -> NetModel {
        if cfg!(target_os = "linux") {
            self
        } else {
            NetModel::Threads
        }
    }

    /// Parses the `--net-model` flag token.
    pub fn parse(token: &str) -> Option<NetModel> {
        match token {
            "threads" => Some(NetModel::Threads),
            "reactor" => Some(NetModel::Reactor),
            _ => None,
        }
    }

    /// The flag token / stats label for this model.
    pub fn label(self) -> &'static str {
        match self {
            NetModel::Threads => "threads",
            NetModel::Reactor => "reactor",
        }
    }
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::platform_default()
    }
}

/// Tuning for a [`TcpServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Live-connection cap; connection attempts beyond it are shed with
    /// `err server-busy`.
    pub max_connections: usize,
    /// Close a connection after this much silence.
    pub idle_timeout: Duration,
    /// `listen(2)` backlog: how many completed handshakes the kernel
    /// may queue before the acceptor picks them up. Size it at least to
    /// the largest simultaneous connect burst expected (the kernel
    /// clamps to `net.core.somaxconn`).
    pub listen_backlog: usize,
    /// The serving model (see [`NetModel`]).
    pub model: NetModel,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 1024,
            idle_timeout: Duration::from_secs(300),
            listen_backlog: 1024,
            model: NetModel::platform_default(),
        }
    }
}

/// Monotonic counters describing a server's lifetime traffic, shared
/// with every worker/event-loop thread and surfaced to clients through
/// the TCP-only `stats net` request.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted into the serving model (including ones
    /// since closed).
    pub accepted: AtomicU64,
    /// Connections shed with `err server-busy` at the cap.
    pub shed: AtomicU64,
    /// Connections closed for exceeding the idle timeout.
    pub idle_closed: AtomicU64,
    /// Request lines served (one reply written per count).
    pub requests: AtomicU64,
    /// Currently open connections.
    pub live: AtomicUsize,
    /// Reactor readiness events that produced no bytes in either
    /// direction — wakeups the server paid for nothing. Idle
    /// connections must keep this at zero.
    pub spurious_wakeups: AtomicU64,
    /// Writes that hit a full socket buffer and were completed later by
    /// an `EPOLLOUT` readiness event (partial-write continuations).
    pub partial_writes_resumed: AtomicU64,
    /// Connections evicted by the reactor's idle timer wheel (the
    /// reactor's contribution to [`idle_closed`](NetStats::idle_closed)).
    pub timer_evictions: AtomicU64,
    /// Event-loop threads serving connections (0 under the threads
    /// model — every connection has its own thread there).
    pub event_loops: AtomicUsize,
}

impl NetStats {
    /// The `ok stats net …` reply line: every counter, prefixed with
    /// the serving model, ordered stably for parsers.
    pub fn wire_line(&self, model: NetModel) -> String {
        format!(
            "ok stats net model={} accepted={} live={} requests={} shed={} idle_closed={} \
             spurious_wakeups={} partial_writes_resumed={} timer_evictions={} event_loops={}",
            model.label(),
            self.accepted.load(Ordering::SeqCst),
            self.live.load(Ordering::SeqCst),
            self.requests.load(Ordering::SeqCst),
            self.shed.load(Ordering::SeqCst),
            self.idle_closed.load(Ordering::SeqCst),
            self.spurious_wakeups.load(Ordering::SeqCst),
            self.partial_writes_resumed.load(Ordering::SeqCst),
            self.timer_evictions.load(Ordering::SeqCst),
            self.event_loops.load(Ordering::SeqCst),
        )
    }
}

/// The per-connection protocol state machine, shared verbatim by both
/// serving models (and driven with arbitrary chunkings by the framing
/// property tests): banner, incremental line framing with the
/// [`MAX_LINE_BYTES`] cap enforced mid-stream, [`Codec`] decode,
/// [`Service`] dispatch, and a pending-output buffer the caller drains
/// at whatever pace the socket allows.
///
/// Drivers feed raw received bytes to [`ingest`](LineSession::ingest)
/// and write out [`output`](LineSession::output), acknowledging with
/// [`consume`](LineSession::consume) (which may be partial — the
/// continuation state *is* the buffer). Lifecycle verdicts
/// ([`closing`](LineSession::closing)) are sticky: once the session
/// decides to close, further input is discarded and only the remaining
/// output needs flushing ([`finished`](LineSession::finished)).
#[derive(Debug)]
pub struct LineSession {
    codec: Codec,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    closing: bool,
}

impl Default for LineSession {
    fn default() -> Self {
        LineSession::new()
    }
}

impl LineSession {
    /// A fresh session with the protocol banner already queued as
    /// pending output.
    pub fn new() -> LineSession {
        let mut wbuf = Codec::banner().into_bytes();
        wbuf.push(b'\n');
        LineSession {
            codec: Codec::new(),
            rbuf: Vec::new(),
            wbuf,
            wpos: 0,
            closing: false,
        }
    }

    /// Feeds received bytes through framing and dispatch, queueing one
    /// reply line per complete request line. Counts served requests in
    /// `stats`; answers the TCP-only `stats net` introspection line
    /// locally. Input after a close decision is discarded.
    pub fn ingest(&mut self, bytes: &[u8], service: &Service, stats: &NetStats, model: NetModel) {
        if self.closing {
            return;
        }
        self.rbuf.extend_from_slice(bytes);
        while let Some(pos) = self.rbuf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = self.rbuf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes[..pos]);
            let line = line.trim_end_matches('\r');
            if line.trim() == "stats net" {
                stats.requests.fetch_add(1, Ordering::SeqCst);
                self.push_line(&stats.wire_line(model));
                continue;
            }
            match self.codec.serve(service, line) {
                WireReply::Reply(reply) => {
                    stats.requests.fetch_add(1, Ordering::SeqCst);
                    self.push_line(&reply);
                }
                WireReply::Silent => {}
                WireReply::Quit => {
                    self.closing = true;
                    self.rbuf.clear();
                    return;
                }
            }
        }
        if self.rbuf.len() > MAX_LINE_BYTES {
            self.push_line("err line-too-long (request line limit exceeded)");
            self.closing = true;
            self.rbuf.clear();
        }
    }

    /// The peer closed its write half (or the socket died): finish
    /// flushing whatever is pending, then close. Queues no reply.
    pub fn note_eof(&mut self) {
        self.closing = true;
    }

    /// The connection exceeded its idle timeout: queue the explanatory
    /// error and close (counted in [`NetStats::idle_closed`]).
    pub fn note_idle_timeout(&mut self, stats: &NetStats) {
        if !self.closing {
            stats.idle_closed.fetch_add(1, Ordering::SeqCst);
            self.push_line("err idle-timeout (connection closing)");
            self.closing = true;
        }
    }

    /// The server is shutting down: queue the explanatory error and
    /// close.
    pub fn note_shutdown(&mut self) {
        if !self.closing {
            self.push_line("err server-shutdown (connection closing)");
            self.closing = true;
        }
    }

    /// Bytes waiting to be written to the socket.
    pub fn output(&self) -> &[u8] {
        &self.wbuf[self.wpos..]
    }

    /// Acknowledges `n` bytes of [`output`](LineSession::output) as
    /// written (partial writes keep the rest pending).
    pub fn consume(&mut self, n: usize) {
        self.wpos = (self.wpos + n).min(self.wbuf.len());
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
    }

    /// Whether the session has decided to close (no further input will
    /// be served).
    pub fn closing(&self) -> bool {
        self.closing
    }

    /// Whether the session is closing *and* fully flushed — the driver
    /// may now drop the socket.
    pub fn finished(&self) -> bool {
        self.closing && self.output().is_empty()
    }

    fn push_line(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }
}

/// A running TCP front end over a shared [`Service`]. Dropping the
/// handle shuts the server down.
pub struct TcpServer {
    addr: SocketAddr,
    model: NetModel,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    accept_wake: Arc<Doorbell>,
    #[cfg(target_os = "linux")]
    loops: Vec<Arc<EventLoopHandle>>,
    loop_threads: Vec<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:7741`, or port `0` for an ephemeral
    /// port) with the configured listen backlog and starts serving under
    /// [`NetConfig::model`]. The returned handle reports the concrete
    /// [`local_addr`](TcpServer::local_addr) and serves until
    /// [`shutdown`](TcpServer::shutdown) or drop.
    pub fn bind(
        service: Arc<Service>,
        addr: &str,
        config: NetConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = bind_listener(addr, config.listen_backlog)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let model = config.model.effective();
        let stats = Arc::new(NetStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept_wake = Arc::new(Doorbell::new());

        // Event loops first (reactor model), so the acceptor has
        // somewhere to dispatch from its first connection on.
        #[cfg(target_os = "linux")]
        let mut loops: Vec<Arc<EventLoopHandle>> = Vec::new();
        let mut loop_threads = Vec::new();
        let dispatch: Dispatch = match model {
            NetModel::Threads => Dispatch::Threads {
                service: Arc::clone(&service),
                stop: Arc::clone(&stop),
            },
            NetModel::Reactor => {
                #[cfg(target_os = "linux")]
                {
                    let n = std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                        .min(MAX_EVENT_LOOPS);
                    stats.event_loops.store(n, Ordering::SeqCst);
                    for i in 0..n {
                        let handle = Arc::new(EventLoopHandle::new()?);
                        let (h, service, config, stats, stop) = (
                            Arc::clone(&handle),
                            Arc::clone(&service),
                            config.clone(),
                            Arc::clone(&stats),
                            Arc::clone(&stop),
                        );
                        loop_threads.push(
                            std::thread::Builder::new()
                                .name(format!("blowfish-loop-{i}"))
                                .spawn(move || event_loop(&h, &service, &config, &stats, &stop))?,
                        );
                        loops.push(handle);
                    }
                    Dispatch::Reactor {
                        loops: loops.clone(),
                    }
                }
                #[cfg(not(target_os = "linux"))]
                unreachable!("NetModel::effective() never yields Reactor off Linux")
            }
        };

        let accept_thread = {
            let (stats, stop, wake) = (
                Arc::clone(&stats),
                Arc::clone(&stop),
                Arc::clone(&accept_wake),
            );
            let config = config.clone();
            std::thread::Builder::new()
                .name("blowfish-accept".to_string())
                .spawn(move || accept_loop(listener, dispatch, config, stats, stop, wake))?
        };
        Ok(TcpServer {
            addr,
            model,
            stats,
            stop,
            accept_thread: Some(accept_thread),
            accept_wake,
            #[cfg(target_os = "linux")]
            loops,
            loop_threads,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving model actually in effect (a `Reactor` request
    /// degrades to `Threads` off Linux).
    pub fn model(&self) -> NetModel {
        self.model
    }

    /// The server's shared traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Stops accepting, notifies live connections, and waits up to
    /// `drain` for them to finish; returns `true` if the server drained
    /// fully. Reactor loops drain at their next wakeup (immediate —
    /// their doorbells are rung); threads-model workers see the flag
    /// within one read-timeout tick.
    pub fn shutdown(&mut self, drain: Duration) -> bool {
        self.stop.store(true, Ordering::SeqCst);
        self.accept_wake.ring();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        #[cfg(target_os = "linux")]
        for handle in &self.loops {
            handle.doorbell.notify();
        }
        for handle in self.loop_threads.drain(..) {
            let _ = handle.join();
        }
        let deadline = Instant::now() + drain;
        while self.stats.live.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(TICK / 4);
        }
        true
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(2));
    }
}

/// Binds the listener with an explicit backlog where the platform
/// supports it, falling back to std's 128-entry default otherwise.
fn bind_listener(addr: &str, backlog: usize) -> std::io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        use std::net::ToSocketAddrs;
        if let Some(sock_addr) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            if let Ok(listener) = listen_with_backlog(sock_addr, backlog) {
                return Ok(listener);
            }
        }
    }
    let _ = backlog;
    TcpListener::bind(addr)
}

/// The cross-thread wakeup for the acceptor: an eventfd doorbell on
/// Linux (the acceptor epoll-waits on it), a no-op elsewhere (the
/// acceptor polls at a short interval instead).
#[derive(Debug)]
struct Doorbell {
    #[cfg(target_os = "linux")]
    eventfd: Option<EventFd>,
}

impl Doorbell {
    fn new() -> Doorbell {
        Doorbell {
            #[cfg(target_os = "linux")]
            eventfd: EventFd::new().ok(),
        }
    }

    fn ring(&self) {
        #[cfg(target_os = "linux")]
        if let Some(eventfd) = &self.eventfd {
            eventfd.notify();
        }
    }
}

/// Where the acceptor sends an admitted connection.
enum Dispatch {
    /// Spawn a dedicated worker thread (threads model).
    Threads {
        service: Arc<Service>,
        stop: Arc<AtomicBool>,
    },
    /// Hand off to the event loop owning the connection's fd hash
    /// (reactor model).
    #[cfg(target_os = "linux")]
    Reactor { loops: Vec<Arc<EventLoopHandle>> },
}

/// The accept loop shared by both serving models: admit or shed each
/// connection, then dispatch. On Linux it blocks on epoll over the
/// listener plus the shutdown doorbell — zero wakeups while no client
/// connects; elsewhere (or if epoll setup fails) it degrades to a
/// short-interval nonblocking poll.
fn accept_loop(
    listener: TcpListener,
    mut dispatch: Dispatch,
    config: NetConfig,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    wake: Arc<Doorbell>,
) {
    let waiter = AcceptWaiter::new(&listener, &wake);
    while !stop.load(Ordering::SeqCst) {
        // Drain every queued handshake before parking again.
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // Transient accept errors (per-connection resets, fd
                // pressure): back off briefly rather than killing
                // serving.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(20));
                    break;
                }
            };
            if stats.live.load(Ordering::SeqCst) >= config.max_connections {
                shed(stream, &stats);
                continue;
            }
            stats.live.fetch_add(1, Ordering::SeqCst);
            stats.accepted.fetch_add(1, Ordering::SeqCst);
            if !dispatch.send(stream, &config, &stats) {
                stats.live.fetch_sub(1, Ordering::SeqCst);
                stats.accepted.fetch_sub(1, Ordering::SeqCst);
            }
        }
        waiter.wait();
    }
}

impl Dispatch {
    /// Routes one admitted connection into its serving model; `false`
    /// means dispatch failed and the caller must undo the admission
    /// accounting (the stream drops closed).
    fn send(&mut self, stream: TcpStream, config: &NetConfig, stats: &Arc<NetStats>) -> bool {
        match self {
            Dispatch::Threads { service, stop } => {
                let (service, stats_w, stop_w) =
                    (Arc::clone(service), Arc::clone(stats), Arc::clone(stop));
                let idle_timeout = config.idle_timeout;
                std::thread::Builder::new()
                    .name("blowfish-conn".to_string())
                    // Workers parse lines and call into the engine — no
                    // deep recursion — so a small stack keeps 1000+
                    // threads cheap.
                    .stack_size(256 * 1024)
                    .spawn(move || {
                        let _ = serve_connection(stream, &service, idle_timeout, &stats_w, &stop_w);
                        stats_w.live.fetch_sub(1, Ordering::SeqCst);
                    })
                    .is_ok()
            }
            #[cfg(target_os = "linux")]
            Dispatch::Reactor { loops } => {
                use std::os::unix::io::AsRawFd;
                let slot = (stream.as_raw_fd() as usize) % loops.len();
                loops[slot].inbox.lock().unwrap().push(stream);
                loops[slot].doorbell.notify();
                true
            }
        }
    }
}

/// How the acceptor parks between connection bursts.
enum AcceptWaiter {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    /// Fallback: nonblocking accept + short sleep (non-Linux, or epoll
    /// setup failure).
    Poll,
}

impl AcceptWaiter {
    #[allow(unused_variables)]
    fn new(listener: &TcpListener, wake: &Doorbell) -> AcceptWaiter {
        #[cfg(target_os = "linux")]
        {
            use std::os::unix::io::AsRawFd;
            if let Some(eventfd) = &wake.eventfd {
                if let Ok(epoll) = Epoll::new() {
                    if epoll.add(listener.as_raw_fd(), EPOLLIN, 0).is_ok()
                        && epoll.add(eventfd.raw_fd(), EPOLLIN, 1).is_ok()
                    {
                        return AcceptWaiter::Epoll(epoll);
                    }
                }
            }
        }
        AcceptWaiter::Poll
    }

    fn wait(&self) {
        match self {
            #[cfg(target_os = "linux")]
            AcceptWaiter::Epoll(epoll) => {
                let mut events = [EpollEvent::zeroed(); 4];
                // The doorbell is left un-drained on purpose: once rung
                // (shutdown), every subsequent wait returns immediately
                // and the loop re-checks the stop flag.
                let _ = epoll.wait(&mut events, None);
            }
            AcceptWaiter::Poll => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Over-cap connection: one explanatory line, then close.
fn shed(mut stream: TcpStream, stats: &NetStats) {
    stats.shed.fetch_add(1, Ordering::SeqCst);
    let _ = stream.write_all(b"err server-busy (connection limit reached, retry later)\n");
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Threads-model worker: drives one blocking connection through the
/// shared [`LineSession`] state machine until quit/EOF/idle-timeout/
/// shutdown.
fn serve_connection(
    mut stream: TcpStream,
    service: &Service,
    idle_timeout: Duration,
    stats: &NetStats,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // One request line in, one reply line out: flushing per reply
    // matters more than batching, so disable Nagle.
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(TICK))?;
    let mut session = LineSession::new();
    let mut chunk = [0u8; 4096];
    let mut idle = Duration::ZERO;
    loop {
        while !session.output().is_empty() {
            let n = stream.write(session.output())?;
            if n == 0 {
                return Err(std::io::Error::from(ErrorKind::WriteZero));
            }
            session.consume(n);
        }
        if session.finished() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Ok(());
        }
        if stop.load(Ordering::SeqCst) {
            session.note_shutdown();
            continue;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                session.note_eof();
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return Ok(());
            }
            Ok(n) => {
                idle = Duration::ZERO;
                session.ingest(&chunk[..n], service, stats, NetModel::Threads);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle += TICK;
                if idle >= idle_timeout {
                    session.note_idle_timeout(stats);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// What the acceptor shares with one reactor event loop.
#[cfg(target_os = "linux")]
struct EventLoopHandle {
    /// Rung by the acceptor (new connection in the inbox) and by
    /// shutdown.
    doorbell: EventFd,
    /// Freshly accepted connections awaiting adoption by the loop.
    inbox: Mutex<Vec<TcpStream>>,
}

#[cfg(target_os = "linux")]
impl EventLoopHandle {
    fn new() -> std::io::Result<EventLoopHandle> {
        Ok(EventLoopHandle {
            doorbell: EventFd::new()?,
            inbox: Mutex::new(Vec::new()),
        })
    }
}

/// One reactor-owned connection.
#[cfg(target_os = "linux")]
struct Conn {
    stream: TcpStream,
    session: LineSession,
    last_active: Instant,
    /// Whether `EPOLLOUT` is currently registered (pending output).
    interest_out: bool,
    /// Whether the last flush stopped on a full socket buffer (the next
    /// `EPOLLOUT` completion counts as a resumed partial write).
    partial_write: bool,
}

/// The doorbell's token in a loop's epoll set (fds are nonnegative, so
/// the max token can never collide).
#[cfg(target_os = "linux")]
const WAKE_TOKEN: u64 = u64::MAX;

/// One reactor event loop: adopts connections from its inbox, serves
/// readiness events through the [`LineSession`] state machine, and
/// evicts idlers via a lazy timer wheel.
#[cfg(target_os = "linux")]
fn event_loop(
    handle: &EventLoopHandle,
    service: &Service,
    config: &NetConfig,
    stats: &NetStats,
    stop: &AtomicBool,
) {
    use std::os::unix::io::AsRawFd;

    let epoll = match Epoll::new() {
        Ok(epoll) => epoll,
        // Cannot serve without a readiness set; connections dispatched
        // here will close. (Never observed in practice: bind() already
        // created epoll sets successfully.)
        Err(_) => return,
    };
    if epoll
        .add(handle.doorbell.raw_fd(), EPOLLIN, WAKE_TOKEN)
        .is_err()
    {
        return;
    }
    // Wheel granularity: coarse enough that thousands of idle
    // connections cost a handful of wakeups per minute, fine enough
    // that evictions land within ~25% of the configured timeout.
    let granularity =
        (config.idle_timeout / 4).clamp(Duration::from_millis(25), Duration::from_secs(10));
    let slots = (config.idle_timeout.as_nanos() / granularity.as_nanos()).max(1) as usize + 2;
    let mut wheel = TimerWheel::new(granularity, slots, Instant::now());
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events = vec![EpollEvent::zeroed(); 1024];
    let mut fired: Vec<u64> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];

    loop {
        let timeout = wheel.next_timeout(Instant::now());
        let n = epoll.wait(&mut events, timeout).unwrap_or_default();
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();
        for event in events.iter().take(n) {
            let (token, bits) = (event.token, event.events);
            if token == WAKE_TOKEN {
                handle.doorbell.drain();
                adopt_inbox(
                    handle, &epoll, &mut conns, &mut wheel, config, service, stats, now,
                );
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let close = serve_readiness(conn, bits, service, config, stats, &mut chunk, now);
            let fd = conn.stream.as_raw_fd();
            if close || conn.session.finished() {
                let _ = epoll.delete(fd);
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                conns.remove(&token);
                stats.live.fetch_sub(1, Ordering::SeqCst);
            } else {
                // Keep EPOLLOUT registered exactly while output is
                // pending (level-triggered: a standing EPOLLOUT on a
                // writable idle socket would busy-fire).
                let want_out = !conn.session.output().is_empty();
                if want_out != conn.interest_out {
                    let bits = EPOLLIN | if want_out { EPOLLOUT } else { 0 };
                    if epoll.modify(fd, bits, token).is_ok() {
                        conn.interest_out = want_out;
                    }
                }
            }
        }
        // Timer wheel: candidates only — revalidate against real
        // activity and either evict or reschedule for the remainder.
        wheel.poll(now, &mut fired);
        for token in fired.drain(..) {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let idle = now.saturating_duration_since(conn.last_active);
            if idle >= config.idle_timeout {
                stats.timer_evictions.fetch_add(1, Ordering::SeqCst);
                conn.session.note_idle_timeout(stats);
                let _ = flush_nonblocking(conn);
                let fd = conn.stream.as_raw_fd();
                let _ = epoll.delete(fd);
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                conns.remove(&token);
                stats.live.fetch_sub(1, Ordering::SeqCst);
            } else {
                wheel.schedule(token, config.idle_timeout - idle);
            }
        }
    }

    // Shutdown drain: notify and close every connection this loop owns,
    // plus any not-yet-adopted inbox strays (the acceptor has already
    // been joined, so the inbox cannot refill).
    for (_, mut conn) in conns.drain() {
        conn.session.note_shutdown();
        let _ = flush_nonblocking(&mut conn);
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        stats.live.fetch_sub(1, Ordering::SeqCst);
    }
    for stream in handle.inbox.lock().unwrap().drain(..) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        stats.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Moves freshly accepted connections from the inbox into the loop:
/// nonblocking mode, banner queued (and eagerly flushed), epoll
/// registration, idle-timer scheduling.
#[cfg(target_os = "linux")]
#[allow(clippy::too_many_arguments)]
fn adopt_inbox(
    handle: &EventLoopHandle,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    wheel: &mut TimerWheel,
    config: &NetConfig,
    service: &Service,
    stats: &NetStats,
    now: Instant,
) {
    use std::os::unix::io::AsRawFd;
    let fresh: Vec<TcpStream> = handle.inbox.lock().unwrap().drain(..).collect();
    for stream in fresh {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            stats.live.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let fd = stream.as_raw_fd();
        let token = fd as u64;
        let mut conn = Conn {
            stream,
            session: LineSession::new(),
            last_active: now,
            interest_out: false,
            partial_write: false,
        };
        // Eager banner write: almost always completes in one call.
        let _ = flush_nonblocking(&mut conn);
        if conn.session.finished() {
            stats.live.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let want_out = !conn.session.output().is_empty();
        let bits = EPOLLIN | if want_out { EPOLLOUT } else { 0 };
        if epoll.add(fd, bits, token).is_err() {
            stats.live.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        conn.interest_out = want_out;
        wheel.schedule(token, config.idle_timeout);
        let _ = service;
        conns.insert(token, conn);
    }
}

/// Serves one readiness event on one connection; returns `true` when
/// the connection must be closed (fatal I/O error — clean closes are
/// reported through `session.finished()`).
#[cfg(target_os = "linux")]
fn serve_readiness(
    conn: &mut Conn,
    bits: u32,
    service: &Service,
    config: &NetConfig,
    stats: &NetStats,
    chunk: &mut [u8],
    now: Instant,
) -> bool {
    let mut progressed = false;
    if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
        // Drain available input (bounded per event; level-triggered
        // epoll re-fires if more remains).
        for _ in 0..READS_PER_EVENT {
            match conn.stream.read(chunk) {
                Ok(0) => {
                    conn.session.note_eof();
                    progressed = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    conn.last_active = now;
                    conn.session
                        .ingest(&chunk[..n], service, stats, NetModel::Reactor);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // Connection reset or similar: nothing more to say
                    // to this peer.
                    return true;
                }
            }
        }
    }
    if bits & EPOLLOUT != 0 && conn.partial_write && !conn.session.output().is_empty() {
        stats.partial_writes_resumed.fetch_add(1, Ordering::SeqCst);
    }
    match flush_nonblocking(conn) {
        Ok(wrote) => progressed |= wrote,
        Err(_) => return true,
    }
    let _ = config;
    if !progressed {
        stats.spurious_wakeups.fetch_add(1, Ordering::SeqCst);
    }
    false
}

/// Writes as much pending output as the socket accepts right now;
/// `Ok(true)` if any bytes moved. A full socket buffer marks the
/// connection as mid-partial-write (completed later under `EPOLLOUT`).
#[cfg(target_os = "linux")]
fn flush_nonblocking(conn: &mut Conn) -> std::io::Result<bool> {
    let mut wrote = false;
    while !conn.session.output().is_empty() {
        match conn.stream.write(conn.session.output()) {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => {
                conn.session.consume(n);
                wrote = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                conn.partial_write = true;
                return Ok(wrote);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    conn.partial_write = false;
    Ok(wrote)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn server_with(model: NetModel, config: NetConfig) -> TcpServer {
        TcpServer::bind(
            Arc::new(Service::new()),
            "127.0.0.1:0",
            NetConfig { model, ..config },
        )
        .unwrap()
    }

    fn both_models() -> Vec<NetModel> {
        vec![NetModel::Threads, NetModel::Reactor]
    }

    /// Connect and consume the banner.
    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut banner = String::new();
        reader.read_line(&mut banner).unwrap();
        assert!(banner.starts_with("ok blowfish/1 "), "{banner}");
        (reader, stream)
    }

    fn roundtrip(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream, line: &str) -> String {
        writeln!(stream, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    #[test]
    fn serves_a_full_session_over_tcp_under_both_models() {
        for model in both_models() {
            let mut server = server_with(model, NetConfig::default());
            let (mut reader, mut stream) = client(server.local_addr());
            assert_eq!(
                roundtrip(
                    &mut reader,
                    &mut stream,
                    "tenant acme policy=line:16 eps=0.5 budget=1.0 data=uniform:3",
                ),
                "ok tenant acme policy=G^1_16 cells=16"
            );
            assert_eq!(
                roundtrip(&mut reader, &mut stream, "hello blowfish/1"),
                "ok hello blowfish/1"
            );
            // Connection-scoped default tenant works over the socket.
            assert_eq!(
                roundtrip(&mut reader, &mut stream, "use acme"),
                "ok use acme"
            );
            let fit = roundtrip(&mut reader, &mut stream, "fit as=r1 seed=7");
            assert_eq!(fit, "ok fit r1 charged=0.5 spent=0.5 remaining=0.5");
            let answer = roundtrip(&mut reader, &mut stream, "answer from=r1 0..15");
            assert!(answer.starts_with("ok answer 1 "), "{answer}");
            // quit closes the connection (EOF on the reader).
            writeln!(stream, "quit").unwrap();
            let mut rest = String::new();
            reader.read_line(&mut rest).unwrap();
            assert_eq!(rest, "");
            assert!(server.shutdown(Duration::from_secs(5)), "{model:?}");
            assert_eq!(
                server.stats().requests.load(Ordering::SeqCst),
                5,
                "{model:?}"
            );
        }
    }

    #[test]
    fn reactor_is_the_linux_default_and_reports_itself() {
        if !cfg!(target_os = "linux") {
            return;
        }
        assert_eq!(NetModel::platform_default(), NetModel::Reactor);
        let mut server = server_with(NetModel::Reactor, NetConfig::default());
        assert_eq!(server.model(), NetModel::Reactor);
        assert!(server.stats().event_loops.load(Ordering::SeqCst) >= 1);
        // The TCP-only `stats net` introspection line answers at the
        // framing layer with every counter.
        let (mut reader, mut stream) = client(server.local_addr());
        let reply = roundtrip(&mut reader, &mut stream, "stats net");
        assert!(reply.starts_with("ok stats net model=reactor "), "{reply}");
        for key in [
            "accepted=1",
            "live=1",
            "requests=1",
            "shed=0",
            "idle_closed=0",
            "spurious_wakeups=",
            "partial_writes_resumed=",
            "timer_evictions=0",
            "event_loops=",
        ] {
            assert!(reply.contains(key), "missing {key} in {reply}");
        }
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn net_model_flag_tokens_round_trip() {
        assert_eq!(NetModel::parse("reactor"), Some(NetModel::Reactor));
        assert_eq!(NetModel::parse("threads"), Some(NetModel::Threads));
        assert_eq!(NetModel::parse("green-threads"), None);
        for model in both_models() {
            assert_eq!(NetModel::parse(model.label()), Some(model));
        }
    }

    #[test]
    fn default_tenant_state_is_per_connection() {
        let mut server = server_with(NetModel::platform_default(), NetConfig::default());
        let (mut r1, mut s1) = client(server.local_addr());
        let (mut r2, mut s2) = client(server.local_addr());
        roundtrip(
            &mut r1,
            &mut s1,
            "tenant acme policy=line:8 eps=0.5 budget=4 data=uniform:1",
        );
        assert_eq!(roundtrip(&mut r1, &mut s1, "use acme"), "ok use acme");
        let ok = roundtrip(&mut r1, &mut s1, "fit as=a seed=1");
        assert!(ok.starts_with("ok fit a "), "{ok}");
        // The second connection shares the service but not the default.
        let err = roundtrip(&mut r2, &mut s2, "fit as=b seed=2");
        assert!(err.starts_with("err bad request"), "{err}");
        let ok2 = roundtrip(&mut r2, &mut s2, "fit acme as=b seed=2");
        assert!(ok2.starts_with("ok fit b "), "{ok2}");
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn connections_beyond_the_cap_are_shed_under_both_models() {
        for model in both_models() {
            let mut server = server_with(
                model,
                NetConfig {
                    max_connections: 2,
                    ..NetConfig::default()
                },
            );
            let keep1 = client(server.local_addr());
            let keep2 = client(server.local_addr());
            // The third connection gets the busy line, not a banner.
            let extra = TcpStream::connect(server.local_addr()).unwrap();
            let mut reader = BufReader::new(extra);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("err server-busy"), "{model:?}: {line}");
            // …and then EOF.
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, "");
            assert_eq!(server.stats().shed.load(Ordering::SeqCst), 1);
            // Freeing a slot re-opens admission.
            drop(keep1);
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                let again = TcpStream::connect(server.local_addr()).unwrap();
                let mut reader = BufReader::new(again);
                let mut banner = String::new();
                reader.read_line(&mut banner).unwrap();
                if banner.starts_with("ok blowfish/1") {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "slot never freed; last reply {banner}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
            drop(keep2);
            assert!(server.shutdown(Duration::from_secs(5)), "{model:?}");
        }
    }

    #[test]
    fn oversized_lines_close_the_connection_under_both_models() {
        for model in both_models() {
            let mut server = server_with(model, NetConfig::default());
            let (mut reader, mut stream) = client(server.local_addr());
            let huge = vec![b'x'; MAX_LINE_BYTES + 4096];
            stream.write_all(&huge).unwrap();
            stream.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            assert!(reply.starts_with("err line-too-long"), "{model:?}: {reply}");
            assert!(server.shutdown(Duration::from_secs(5)), "{model:?}");
        }
    }

    #[test]
    fn idle_connections_time_out_under_both_models() {
        for model in both_models() {
            let mut server = server_with(
                model,
                NetConfig {
                    idle_timeout: Duration::from_millis(300),
                    ..NetConfig::default()
                },
            );
            let (mut reader, _stream) = client(server.local_addr());
            let started = Instant::now();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("err idle-timeout"), "{model:?}: {line}");
            assert!(started.elapsed() >= Duration::from_millis(250), "{model:?}");
            assert_eq!(server.stats().idle_closed.load(Ordering::SeqCst), 1);
            if model == NetModel::Reactor {
                // The reactor's eviction rode the timer wheel.
                assert_eq!(server.stats().timer_evictions.load(Ordering::SeqCst), 1);
            }
            assert!(server.shutdown(Duration::from_secs(5)), "{model:?}");
        }
    }

    #[test]
    fn shutdown_notifies_parked_connections_under_both_models() {
        for model in both_models() {
            let mut server = server_with(model, NetConfig::default());
            let (mut reader, _stream) = client(server.local_addr());
            assert!(server.shutdown(Duration::from_secs(5)), "{model:?}");
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("err server-shutdown"), "{model:?}: {line}");
            // New connections are refused once the listener is gone.
            assert!(TcpStream::connect(server.local_addr()).is_err());
        }
    }

    #[test]
    fn pipelined_burst_is_served_in_order_without_loss() {
        // 2000 requests written before any reply is read: exercises
        // framing across partial reads and the reactor's write-buffer
        // continuation under socket backpressure.
        let mut server = server_with(NetModel::platform_default(), NetConfig::default());
        let (reader, mut stream) = client(server.local_addr());
        let total = 2000usize;
        let writer = std::thread::spawn(move || {
            let mut burst = String::new();
            for _ in 0..total {
                burst.push_str("help\n");
            }
            stream.write_all(burst.as_bytes()).unwrap();
            stream.flush().unwrap();
            stream
        });
        let mut reader = reader;
        let mut got = 0usize;
        let mut line = String::new();
        while got < total {
            line.clear();
            let n = reader.read_line(&mut line).unwrap();
            assert!(n > 0, "connection closed after {got} replies");
            assert!(line.starts_with("ok help blowfish/1 "), "{line}");
            got += 1;
        }
        let stream = writer.join().unwrap();
        drop(stream);
        assert_eq!(server.stats().requests.load(Ordering::SeqCst), total as u64);
        assert!(server.shutdown(Duration::from_secs(5)));
    }

    #[test]
    fn line_session_matches_the_direct_codec_path() {
        // The state machine's replies are byte-identical to serving the
        // same lines straight through a codec (the equivalence the
        // framing proptest pins down at scale).
        let service = Service::new();
        let stats = NetStats::default();
        let mut session = LineSession::new();
        let script = "tenant acme policy=line:8 eps=0.5 budget=2 data=uniform:1\n\
                      use acme\nfit as=h seed=3\nanswer from=h 0..7\nbogus\n";
        session.ingest(script.as_bytes(), &service, &stats, NetModel::Reactor);

        let twin = Service::new();
        let mut codec = Codec::new();
        let mut expected = Codec::banner();
        expected.push('\n');
        for line in script.lines() {
            if let WireReply::Reply(reply) = codec.serve(&twin, line) {
                expected.push_str(&reply);
                expected.push('\n');
            }
        }
        assert_eq!(String::from_utf8_lossy(session.output()), expected);
        assert!(!session.closing());
        // Partial consumption keeps the continuation intact.
        let full = session.output().to_vec();
        session.consume(3);
        assert_eq!(session.output(), &full[3..]);
        session.consume(full.len());
        assert!(session.output().is_empty());
        // quit discards any buffered input after it.
        session.ingest(
            b"quit\nfit as=never seed=1\n",
            &service,
            &stats,
            NetModel::Reactor,
        );
        assert!(session.finished());
    }
}
