//! The multi-tenant, budget-metered service layer.
//!
//! A [`Service`] is the long-running face of the engine: it owns one
//! shared [`PlanCache`] (every tenant's artifacts derive exactly once,
//! across tenants), one thread-safe [`Ledger`] (per-tenant cumulative ε
//! accounts under sequential composition), and a map of per-tenant
//! [`Session`]s with their registered private data. Clients speak the
//! typed [`Request`]/[`Response`] API:
//!
//! * [`Request::Plan`] — ask the planner for the paper-recommended
//!   strategy for a task under the tenant's policy;
//! * [`Request::Fit`] — release a fitted estimate from the tenant's data
//!   under a deterministic seed, drawing the mechanism's exact reported
//!   ε from the tenant's ledger account first (an exhausted account
//!   rejects the request with the typed `CoreError::BudgetExhausted`
//!   before any noise is drawn);
//! * [`Request::Answer`] — answer a batch of range queries against a
//!   stored estimate through the O(1)-per-query
//!   [`Estimate::answer_many`] path;
//! * [`Request::Stats`] — inspect budgets, stored estimates, and plan
//!   cache build counters.
//!
//! [`Service::handle`] serves one request from `&self`; the service is
//! `Sync`, so N client threads drive one `Arc<Service>` concurrently —
//! [`Service::handle_many`] fans a request batch across cores with
//! [`parallel_map`]. On the **warm path** (plans already cached) interior
//! locks are held only for O(1) map/account updates, never across
//! mechanism work, so fits for different tenants (and different specs of
//! one tenant) run fully in parallel while the ledger still guarantees
//! no account is ever jointly overdrawn. Cold plans are the exception by
//! design: the shared [`PlanCache`] builds an artifact *under its stripe
//! lock* to keep derivation exactly-once, so two cold keys that land on
//! the same stripe serialize their first build (warm lookups on other
//! stripes are unaffected).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use blowfish_core::{DataVector, DurabilityStats, Epsilon, Ledger, PolicyGraph, RangeQuery};
use blowfish_strategies::Estimate;

use crate::plan::PlanCache;
use crate::session::Session;
use crate::spec::{MechanismSpec, Task};
use crate::{parallel_map, EngineError};

/// Everything needed to onboard one tenant.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Unique tenant id (the ledger account key).
    pub id: String,
    /// The tenant's Blowfish policy graph.
    pub graph: PolicyGraph,
    /// Per-release grant: the ε each Blowfish fit is built at (baselines
    /// at ε/2, per the Section 6 comparison convention).
    pub eps: Epsilon,
    /// Total cumulative privacy budget across all of the tenant's
    /// releases (sequential composition).
    pub budget: Epsilon,
    /// The tenant's private histogram, registered once at onboarding.
    pub data: DataVector,
}

/// Per-tenant server state: the metered session plus stored releases.
struct Tenant {
    session: Session,
    data: DataVector,
    estimates: Mutex<HashMap<String, Arc<Estimate>>>,
}

/// A typed request against a [`Service`].
#[derive(Clone, Debug)]
pub enum Request {
    /// Ask the planner for the recommended strategy for `task`.
    Plan {
        /// Target tenant.
        tenant: String,
        /// The workload class to plan for.
        task: Task,
    },
    /// Fit a mechanism to the tenant's registered data and store the
    /// estimate under `handle` (replacing any previous estimate there).
    Fit {
        /// Target tenant.
        tenant: String,
        /// Explicit mechanism, or `None` to use the planner default for
        /// `task`.
        spec: Option<MechanismSpec>,
        /// Planner task used when `spec` is `None`.
        task: Task,
        /// Seed of the fit's private RNG — fits are deterministic per
        /// `(tenant, spec, seed)`, which is what the seeded equivalence
        /// tests pin against a standalone [`Session`].
        seed: u64,
        /// Name the stored estimate is answerable under.
        handle: String,
    },
    /// Answer a batch of range queries from a stored estimate.
    Answer {
        /// Target tenant.
        tenant: String,
        /// Handle of a previously fitted estimate.
        handle: String,
        /// The queries, answered in order.
        queries: Vec<RangeQuery>,
    },
    /// Budget/cache statistics for one tenant (or all tenants).
    Stats {
        /// Restrict to one tenant; `None` reports every tenant.
        tenant: Option<String>,
    },
}

/// One tenant's row in a [`Response::Stats`].
#[derive(Clone, Debug, PartialEq)]
pub struct TenantStats {
    /// Tenant id.
    pub id: String,
    /// Recognized policy family name.
    pub policy: String,
    /// Cumulative ε spent.
    pub spent: f64,
    /// Budget remaining (never negative).
    pub remaining: f64,
    /// Number of admitted releases (ledger charges).
    pub fits: usize,
    /// Number of stored (answerable) estimates.
    pub estimates: usize,
}

/// A typed response from a [`Service`].
#[derive(Clone, Debug)]
pub enum Response {
    /// The planner's chosen spec.
    Planned {
        /// The recommended mechanism.
        spec: MechanismSpec,
    },
    /// A fit was admitted, charged, and stored.
    Fitted {
        /// Handle the estimate is stored under.
        handle: String,
        /// The ε actually debited for this release.
        charged: f64,
        /// Tenant spend after the charge.
        spent: f64,
        /// Tenant budget remaining after the charge.
        remaining: f64,
    },
    /// Answers to a query batch, in request order.
    Answers {
        /// One value per query.
        values: Vec<f64>,
    },
    /// Budget and cache statistics.
    Stats {
        /// One row per reported tenant, sorted by id.
        tenants: Vec<TenantStats>,
        /// Total artifact derivations in the shared plan cache.
        artifact_builds: usize,
        /// Aggregated sparse-solver activity: which apply path releases
        /// are taking and what they cost.
        solver: crate::plan::SolverStats,
        /// Write-ahead-log health when the ledger is durable; `None`
        /// for a purely in-memory service.
        durability: Option<DurabilityStats>,
    },
}

/// One request's outcome from a trace replay ([`Service::replay`] /
/// [`Service::replay_parallel`]): the response plus the wall-clock
/// serving latency of just that request.
#[derive(Clone, Debug)]
pub struct Replayed {
    /// The request's outcome — requests succeed or fail independently.
    pub response: Result<Response, EngineError>,
    /// Wall-clock nanoseconds spent inside [`Service::handle`] for this
    /// request (measurement only — never part of deterministic scoring).
    pub latency_ns: u64,
}

impl Replayed {
    /// Whether the request was served successfully.
    pub fn is_ok(&self) -> bool {
        self.response.is_ok()
    }
}

/// A long-running, concurrent, budget-metered multi-tenant engine
/// service. See the [module docs](self) for the serving story.
#[derive(Default)]
pub struct Service {
    cache: Arc<PlanCache>,
    ledger: Arc<Ledger>,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
}

impl Service {
    /// An empty service with a fresh shared cache and ledger.
    pub fn new() -> Self {
        Service::default()
    }

    /// An empty service over a caller-provided ledger — the recovery
    /// entry point. Pass the ledger returned by [`Ledger::recover`] (or
    /// [`Ledger::durable`]) and re-onboard tenants with
    /// [`Service::add_tenant`]: accounts that survived the crash are
    /// *attached* (their durable spend is kept, bit for bit) instead of
    /// re-opened fresh, and already-charged releases can be restored
    /// without re-charging via [`Service::restore_estimate`].
    pub fn with_ledger(ledger: Arc<Ledger>) -> Self {
        Service {
            cache: Arc::new(PlanCache::default()),
            ledger,
            tenants: RwLock::new(HashMap::new()),
        }
    }

    /// The shared artifact cache (one per service, all tenants).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The shared privacy ledger (one account per tenant).
    pub fn ledger(&self) -> &Arc<Ledger> {
        &self.ledger
    }

    /// Onboards a tenant: classifies its policy, opens (or — after a
    /// recovery — re-attaches) its ledger account, and registers its
    /// data. Rejects a duplicate id (budgets are append-only), data
    /// whose domain does not match the policy graph, and unsupported
    /// policies. Re-attaching requires the bit-identical total budget
    /// the account was durably opened with; the recovered spend is kept
    /// as-is, so a tenant cannot shed charges by crashing the service.
    pub fn add_tenant(&self, config: TenantConfig) -> Result<(), EngineError> {
        if config.data.domain() != config.graph.domain() {
            return Err(EngineError::BadRequest {
                what: format!(
                    "tenant {}: data domain does not match the policy graph domain",
                    config.id
                ),
            });
        }
        // Build the session first so a rejected policy leaves no orphan
        // ledger account.
        let session = Session::with_cache(&config.graph, config.eps, Arc::clone(&self.cache))?
            .metered(Arc::clone(&self.ledger), config.id.clone());
        let tenant = Arc::new(Tenant {
            session,
            data: config.data,
            estimates: Mutex::new(HashMap::new()),
        });
        // Duplicate detection must consult the *service* map, not the
        // ledger: after `Ledger::recover` the account legitimately
        // pre-exists and is attached rather than re-opened.
        let mut tenants = self.tenants.write().expect("service tenants lock");
        if tenants.contains_key(&config.id) {
            return Err(EngineError::Core(
                blowfish_core::CoreError::DuplicateTenant { tenant: config.id },
            ));
        }
        self.ledger.open_or_attach(&config.id, config.budget)?;
        tenants.insert(config.id, tenant);
        Ok(())
    }

    /// Re-materializes an already-charged release after a crash,
    /// without touching the ledger. Fits are deterministic per
    /// `(tenant, spec, seed)`, so re-running the fit through the
    /// unmetered path reproduces the pre-crash estimate f64-exactly
    /// while the recovered account keeps exactly the spend the WAL
    /// durably acknowledged — charging again here would double-count a
    /// release the tenant already paid for. Only replay `(spec, seed,
    /// handle)` triples whose original fit was admitted (present in the
    /// recovered history); this method does not re-check the budget.
    pub fn restore_estimate(
        &self,
        tenant: &str,
        spec: Option<MechanismSpec>,
        task: Task,
        seed: u64,
        handle: &str,
    ) -> Result<(), EngineError> {
        let tenant = self.tenant(tenant)?;
        let spec = match spec {
            Some(spec) => spec,
            None => *tenant.session.plan(task)?.spec(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let estimate = tenant
            .session
            .fit_unmetered(&spec, &tenant.data, &mut rng)?;
        tenant
            .estimates
            .lock()
            .expect("tenant estimates lock")
            .insert(handle.to_string(), Arc::new(estimate));
        Ok(())
    }

    /// The domain a tenant's data and queries live over (needed by wire
    /// codecs to parse range queries against the right shape).
    pub fn tenant_domain(&self, id: &str) -> Result<blowfish_core::Domain, EngineError> {
        Ok(self.tenant(id)?.session.domain().clone())
    }

    /// Registered tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .tenants
            .read()
            .expect("service tenants lock")
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids
    }

    /// Serves one request. `&self` — the service is `Sync`, so any number
    /// of client threads may call this concurrently on one `Arc<Service>`.
    pub fn handle(&self, request: &Request) -> Result<Response, EngineError> {
        match request {
            Request::Plan { tenant, task } => {
                let tenant = self.tenant(tenant)?;
                let plan = tenant.session.plan(*task)?;
                Ok(Response::Planned { spec: *plan.spec() })
            }
            Request::Fit {
                tenant,
                spec,
                task,
                seed,
                handle,
            } => {
                let tenant = self.tenant(tenant)?;
                let spec = match spec {
                    Some(spec) => *spec,
                    None => *tenant.session.plan(*task)?.spec(),
                };
                let mut rng = StdRng::seed_from_u64(*seed);
                let fitted = tenant.session.fit(&spec, &tenant.data, &mut rng)?;
                let charge = fitted.charge.expect("service sessions are metered");
                tenant
                    .estimates
                    .lock()
                    .expect("tenant estimates lock")
                    .insert(handle.clone(), Arc::new(fitted.estimate));
                Ok(Response::Fitted {
                    handle: handle.clone(),
                    charged: charge.amount,
                    spent: charge.spent,
                    remaining: charge.remaining,
                })
            }
            Request::Answer {
                tenant,
                handle,
                queries,
            } => {
                let tenant = self.tenant(tenant)?;
                let estimate = tenant
                    .estimates
                    .lock()
                    .expect("tenant estimates lock")
                    .get(handle)
                    .cloned()
                    .ok_or_else(|| EngineError::UnknownEstimate {
                        handle: handle.clone(),
                    })?;
                Ok(Response::Answers {
                    values: estimate.answer_many(queries)?,
                })
            }
            Request::Stats { tenant } => self.stats(tenant.as_deref()),
        }
    }

    /// Serves a request batch across cores ([`parallel_map`]), preserving
    /// request order in the result vector. Each request succeeds or fails
    /// independently; the ledger's atomic check-and-charge keeps
    /// concurrent fits from jointly overdrawing any account.
    pub fn handle_many(&self, requests: &[Request]) -> Vec<Result<Response, EngineError>> {
        parallel_map(requests, |_, request| self.handle(request))
    }

    /// Replays a trace **in order on the calling thread**, capturing the
    /// per-request serving latency. Because requests are served strictly
    /// sequentially, everything order-dependent — which fits are admitted
    /// against a tightening budget, which handles exist when an answer
    /// arrives — is fully deterministic: replaying the same trace against
    /// a freshly built service always produces f64-identical responses
    /// (latencies, of course, vary). This is the trace simulator's scoring
    /// entry point.
    pub fn replay(&self, requests: &[Request]) -> Vec<Replayed> {
        requests.iter().map(|r| self.timed_handle(r)).collect()
    }

    /// Replays a trace fanned across cores ([`parallel_map`]), preserving
    /// request order in the result vector. Latencies are captured per
    /// request. Unlike [`Service::replay`], *admission order* under a
    /// near-exhausted budget is scheduling-dependent: the **count** of
    /// admitted fits per tenant stays deterministic when all of a
    /// tenant's fits request the same ε (the ledger admits exactly
    /// ⌊budget/ε⌋ of them in any interleaving), but *which* requests get
    /// the rejections may differ run to run. Use for throughput
    /// measurement; score utility from the serial replay.
    pub fn replay_parallel(&self, requests: &[Request]) -> Vec<Replayed> {
        parallel_map(requests, |_, request| self.timed_handle(request))
    }

    fn timed_handle(&self, request: &Request) -> Replayed {
        let start = Instant::now();
        let response = self.handle(request);
        Replayed {
            response,
            latency_ns: start.elapsed().as_nanos() as u64,
        }
    }

    fn tenant(&self, id: &str) -> Result<Arc<Tenant>, EngineError> {
        self.tenants
            .read()
            .expect("service tenants lock")
            .get(id)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTenant {
                tenant: id.to_string(),
            })
    }

    fn stats(&self, only: Option<&str>) -> Result<Response, EngineError> {
        let ids = match only {
            Some(id) => vec![id.to_string()],
            None => self.tenants(),
        };
        let mut rows = Vec::with_capacity(ids.len());
        for id in ids {
            let tenant = self.tenant(&id)?;
            // One atomic ledger snapshot per row: reading spent/remaining/
            // count through separate calls could interleave with a
            // concurrent charge and emit a self-inconsistent row.
            let account = self.ledger.snapshot(&id)?;
            rows.push(TenantStats {
                policy: tenant.session.policy().name(),
                spent: account.spent,
                remaining: account.remaining,
                fits: account.charges,
                estimates: tenant
                    .estimates
                    .lock()
                    .expect("tenant estimates lock")
                    .len(),
                id,
            });
        }
        Ok(Response::Stats {
            tenants: rows,
            artifact_builds: self.cache.stats().total_builds(),
            solver: self.cache.solver_stats(),
            durability: self.ledger.durability_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_core::Domain;

    fn service_with_tenant(id: &str, budget: f64) -> Service {
        let service = Service::new();
        service
            .add_tenant(TenantConfig {
                id: id.to_string(),
                graph: PolicyGraph::line(16).unwrap(),
                eps: Epsilon::new(0.5).unwrap(),
                budget: Epsilon::new(budget).unwrap(),
                data: DataVector::new(Domain::one_dim(16), vec![3.0; 16]).unwrap(),
            })
            .unwrap();
        service
    }

    #[test]
    fn plan_fit_answer_round_trip() {
        let service = service_with_tenant("acme", 2.0);
        let planned = service
            .handle(&Request::Plan {
                tenant: "acme".into(),
                task: Task::Range1d,
            })
            .unwrap();
        let spec = match planned {
            Response::Planned { spec } => spec,
            other => panic!("expected Planned, got {other:?}"),
        };
        let fitted = service
            .handle(&Request::Fit {
                tenant: "acme".into(),
                spec: Some(spec),
                task: Task::Range1d,
                seed: 7,
                handle: "release-1".into(),
            })
            .unwrap();
        match fitted {
            Response::Fitted {
                charged,
                spent,
                remaining,
                ..
            } => {
                assert!((charged - 0.5).abs() < 1e-12);
                assert!((spent - 0.5).abs() < 1e-12);
                assert!((remaining - 1.5).abs() < 1e-12);
            }
            other => panic!("expected Fitted, got {other:?}"),
        }
        let d = Domain::one_dim(16);
        let answers = service
            .handle(&Request::Answer {
                tenant: "acme".into(),
                handle: "release-1".into(),
                queries: vec![
                    RangeQuery::one_dim(&d, 0, 15).unwrap(),
                    RangeQuery::one_dim(&d, 3, 9).unwrap(),
                ],
            })
            .unwrap();
        match answers {
            Response::Answers { values } => {
                assert_eq!(values.len(), 2);
                assert!(values.iter().all(|v| v.is_finite()));
            }
            other => panic!("expected Answers, got {other:?}"),
        }
        match service.handle(&Request::Stats { tenant: None }).unwrap() {
            Response::Stats {
                tenants,
                artifact_builds,
                solver,
                durability,
            } => {
                assert_eq!(tenants.len(), 1);
                assert_eq!(tenants[0].fits, 1);
                assert_eq!(tenants[0].estimates, 1);
                // The line-policy Laplace-consistent fit needs no cached
                // artifact class, so builds may legitimately be zero —
                // just assert the counter is readable.
                let _ = artifact_builds;
                // No matrix mechanism ran: the solver aggregate is zero.
                assert_eq!(solver, crate::plan::SolverStats::default());
                // An in-memory service reports no durability stats.
                assert!(durability.is_none());
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tenants_and_estimates_are_typed_errors() {
        let service = service_with_tenant("acme", 1.0);
        assert!(matches!(
            service.handle(&Request::Plan {
                tenant: "ghost".into(),
                task: Task::Histogram,
            }),
            Err(EngineError::UnknownTenant { .. })
        ));
        assert!(matches!(
            service.handle(&Request::Answer {
                tenant: "acme".into(),
                handle: "never-fitted".into(),
                queries: vec![],
            }),
            Err(EngineError::UnknownEstimate { .. })
        ));
    }

    #[test]
    fn duplicate_and_mismatched_tenants_are_rejected() {
        let service = service_with_tenant("acme", 1.0);
        let dup = service.add_tenant(TenantConfig {
            id: "acme".into(),
            graph: PolicyGraph::line(16).unwrap(),
            eps: Epsilon::new(0.5).unwrap(),
            budget: Epsilon::new(1.0).unwrap(),
            data: DataVector::new(Domain::one_dim(16), vec![1.0; 16]).unwrap(),
        });
        assert!(matches!(
            dup,
            Err(EngineError::Core(
                blowfish_core::CoreError::DuplicateTenant { .. }
            ))
        ));
        let mismatch = service.add_tenant(TenantConfig {
            id: "other".into(),
            graph: PolicyGraph::line(16).unwrap(),
            eps: Epsilon::new(0.5).unwrap(),
            budget: Epsilon::new(1.0).unwrap(),
            data: DataVector::new(Domain::one_dim(8), vec![1.0; 8]).unwrap(),
        });
        assert!(matches!(mismatch, Err(EngineError::BadRequest { .. })));
        // The failed onboardings left no tenant behind.
        assert_eq!(service.tenants(), vec!["acme"]);
    }

    #[test]
    fn budget_exhaustion_is_typed_and_final() {
        let service = service_with_tenant("acme", 1.0);
        let fit = |seed: u64, handle: &str| {
            service.handle(&Request::Fit {
                tenant: "acme".into(),
                spec: None,
                task: Task::Histogram,
                seed,
                handle: handle.into(),
            })
        };
        assert!(fit(1, "a").is_ok());
        assert!(fit(2, "b").is_ok());
        let err = fit(3, "c").unwrap_err();
        assert!(err.is_budget_exhausted(), "got {err:?}");
        // The rejected fit stored nothing and spent nothing further.
        assert!(matches!(
            service.handle(&Request::Answer {
                tenant: "acme".into(),
                handle: "c".into(),
                queries: vec![],
            }),
            Err(EngineError::UnknownEstimate { .. })
        ));
        assert!((service.ledger().spent("acme").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replay_is_deterministic_and_order_faithful() {
        let trace: Vec<Request> = (0..8)
            .map(|i| {
                if i % 3 == 2 {
                    Request::Answer {
                        tenant: "acme".into(),
                        handle: "h".into(),
                        queries: vec![RangeQuery::one_dim(&Domain::one_dim(16), 2, 11).unwrap()],
                    }
                } else {
                    Request::Fit {
                        tenant: "acme".into(),
                        spec: None,
                        task: Task::Histogram,
                        seed: i,
                        handle: "h".into(),
                    }
                }
            })
            .collect();
        // Budget admits exactly 3 of the 6 fits (⌊1.5/0.5⌋ = 3).
        let run = |budget: f64| -> Vec<String> {
            let service = service_with_tenant("acme", budget);
            service
                .replay(&trace)
                .into_iter()
                .map(|r| format!("{:?}", r.response))
                .collect()
        };
        let a = run(1.5);
        let b = run(1.5);
        assert_eq!(a, b, "serial replay must be deterministic");
        let admitted = a.iter().filter(|s| s.contains("Fitted")).count();
        assert_eq!(admitted, 3, "ledger admits exactly ⌊budget/ε⌋ fits");
        // Latencies are captured for every request.
        let service = service_with_tenant("acme", 1.5);
        let replayed = service.replay(&trace);
        assert_eq!(replayed.len(), trace.len());
        // The parallel variant preserves order and the admitted count.
        let service = service_with_tenant("acme", 1.5);
        let par = service.replay_parallel(&trace);
        assert_eq!(par.len(), trace.len());
        let par_admitted = par
            .iter()
            .filter(|r| matches!(r.response, Ok(Response::Fitted { .. })))
            .count();
        assert_eq!(par_admitted, 3);
    }

    #[test]
    fn recovered_service_attaches_accounts_and_restores_estimates() {
        let dir = std::env::temp_dir().join(format!("blowfish-svc-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || TenantConfig {
            id: "acme".to_string(),
            graph: PolicyGraph::line(16).unwrap(),
            eps: Epsilon::new(0.5).unwrap(),
            budget: Epsilon::new(2.0).unwrap(),
            data: DataVector::new(Domain::one_dim(16), vec![3.0; 16]).unwrap(),
        };
        let d = Domain::one_dim(16);
        let queries = vec![
            RangeQuery::one_dim(&d, 0, 15).unwrap(),
            RangeQuery::one_dim(&d, 3, 9).unwrap(),
        ];
        // First life: durable service, one charged fit, then "crash"
        // (drop without any graceful shutdown).
        let (before, spent_before) = {
            let (ledger, report) =
                Ledger::durable(&dir, blowfish_core::LedgerDurability::default()).unwrap();
            assert!(report.is_clean());
            let service = Service::with_ledger(Arc::new(ledger));
            service.add_tenant(config()).unwrap();
            service
                .handle(&Request::Fit {
                    tenant: "acme".into(),
                    spec: None,
                    task: Task::Range1d,
                    seed: 41,
                    handle: "h".into(),
                })
                .unwrap();
            let answers = match service
                .handle(&Request::Answer {
                    tenant: "acme".into(),
                    handle: "h".into(),
                    queries: queries.clone(),
                })
                .unwrap()
            {
                Response::Answers { values } => values,
                other => panic!("expected Answers, got {other:?}"),
            };
            (answers, service.ledger().spent("acme").unwrap())
        };
        // Second life: recover, re-onboard (attach), restore the release.
        let (ledger, report) = Ledger::recover(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        let service = Service::with_ledger(Arc::new(ledger));
        service.add_tenant(config()).unwrap();
        assert_eq!(
            service.ledger().spent("acme").unwrap().to_bits(),
            spent_before.to_bits(),
            "recovered spend must be bit-identical"
        );
        service
            .restore_estimate("acme", None, Task::Range1d, 41, "h")
            .unwrap();
        // Restoring charged nothing further...
        assert_eq!(
            service.ledger().spent("acme").unwrap().to_bits(),
            spent_before.to_bits()
        );
        // ...and the estimate answers f64-identically to the first life.
        let after = match service
            .handle(&Request::Answer {
                tenant: "acme".into(),
                handle: "h".into(),
                queries,
            })
            .unwrap()
        {
            Response::Answers { values } => values,
            other => panic!("expected Answers, got {other:?}"),
        };
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&after), bits(&before));
        // Stats now reports the durable ledger's WAL health.
        match service.handle(&Request::Stats { tenant: None }).unwrap() {
            Response::Stats { durability, .. } => {
                let stats = durability.expect("durable service reports stats");
                assert!(stats.wal_bytes > 0);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn handle_many_preserves_order_and_isolates_failures() {
        let service = service_with_tenant("acme", 10.0);
        let requests: Vec<Request> = (0..6)
            .map(|i| {
                if i == 3 {
                    Request::Plan {
                        tenant: "ghost".into(),
                        task: Task::Histogram,
                    }
                } else {
                    Request::Fit {
                        tenant: "acme".into(),
                        spec: None,
                        task: Task::Histogram,
                        seed: i,
                        handle: format!("h{i}"),
                    }
                }
            })
            .collect();
        let results = service.handle_many(&requests);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                assert!(matches!(r, Err(EngineError::UnknownTenant { .. })));
            } else {
                assert!(r.is_ok(), "request {i}: {r:?}");
            }
        }
    }
}
