//! The versioned, connection-oriented wire API for the [`Service`]
//! request protocol — what `blowfish-serve` speaks over stdin/stdout and
//! (through [`crate::net`]) over TCP.
//!
//! The protocol is newline-delimited text, version `blowfish/1`
//! ([`PROTOCOL_VERSION`]): one request per line, one response line per
//! request (`ok …` or `err …`); blank lines and `#` comments are
//! ignored. A server greets every connection with the [`Codec::banner`]
//! line, and a client may (but need not) negotiate explicitly with
//! `hello blowfish/1`. Commands:
//!
//! ```text
//! hello [blowfish/1]
//! tenant <id> policy=<p> eps=<ε> budget=<ε> data=<v,v,…|uniform:<v>>
//! use <id>
//! plan <id> task=<hist|range1d|range2d>
//! fit <id> as=<handle> seed=<n> [mech=<registry-id>] [task=<t>]
//! answer <id> from=<handle> <lo>..<hi> [<lo>..<hi>x<lo>..<hi> …]
//! stats [<id>]
//! help
//! quit
//! ```
//!
//! `use <id>` sets the connection's **default tenant** — connection-scoped
//! state held by the [`Codec`] — after which `plan`/`fit`/`answer` may
//! omit the leading tenant id. Unknown commands are rejected with a
//! structured `err unknown-command <verb> (accepted: …)` reply listing
//! the accepted verbs; an unsupported `hello` version gets
//! `err unsupported-version …`.
//!
//! Policies: `line:<k>`, `theta-line:<k>:<θ>`, `grid:<k>` (k×k, θ=1),
//! `theta-grid:<k>:<θ>`, `star:<k>`, `complete:<k>`. Mechanism ids are
//! the [`MechanismSpec::id`] registry ids (e.g. `dp-laplace`,
//! `theta-line-4-laplace`). Range queries give inclusive per-dimension
//! bounds `lo..hi`, dimensions joined with `x` (`2..9` is 1-D,
//! `0..3x1..4` is 2-D).
//!
//! ## The typed codec
//!
//! [`Codec`] is the typed face of the protocol: [`Codec::decode`] parses
//! one line into a [`Request`] (never panicking — every malformed input
//! is a typed [`WireError`]), [`serve_request`] dispatches a typed
//! request against a [`Service`], and [`Codec::encode`] /
//! [`Codec::encode_request`] render responses and requests back to
//! protocol lines (so the same codec drives both servers and clients;
//! `decode(encode_request(r))` round-trips). [`Codec::serve`] composes
//! the three for one input line, and the legacy [`handle_line`] is a
//! thin wrapper over a fresh stateless codec.

use blowfish_core::{DataVector, Domain, Epsilon, PolicyGraph, RangeQuery};

use crate::service::{self, Service, TenantConfig};
use crate::spec::{MechanismSpec, Task};
use crate::EngineError;

/// The protocol version this codec speaks, as greeted in the banner and
/// negotiated by `hello`.
pub const PROTOCOL_VERSION: &str = "blowfish/1";

/// Every verb the protocol accepts, as reported by `err unknown-command`
/// and `help`.
pub const VERBS: &[&str] = &[
    "hello", "tenant", "use", "plan", "fit", "answer", "stats", "help", "quit",
];

/// A typed, decoded protocol request — what [`Codec::decode`] produces
/// and [`serve_request`] consumes.
#[derive(Clone, Debug)]
pub enum Request {
    /// `hello [version]` — explicit protocol negotiation.
    Hello {
        /// The version the client asked for; `None` accepts the
        /// server's.
        version: Option<String>,
    },
    /// `help`.
    Help,
    /// `quit` — close the connection.
    Quit,
    /// `use <id>` — set the connection's default tenant.
    Use {
        /// Tenant subsequent commands may omit.
        tenant: String,
    },
    /// `tenant <id> …` — onboard a tenant.
    Tenant {
        /// The parsed onboarding config (boxed: a config carries a whole
        /// policy graph + data vector, far larger than any other
        /// variant).
        config: Box<TenantConfig>,
        /// The policy spec token as written on the wire (kept so
        /// [`Codec::encode_request`] can render the request back).
        policy_token: String,
    },
    /// `plan <id> task=<t>`.
    Plan {
        /// Target tenant.
        tenant: String,
        /// Workload class to plan for.
        task: Task,
    },
    /// `fit <id> as=<handle> seed=<n> …`.
    Fit {
        /// Target tenant.
        tenant: String,
        /// Explicit mechanism (`mech=`), or `None` for the planner
        /// default.
        spec: Option<MechanismSpec>,
        /// Planner task used when `spec` is `None`.
        task: Task,
        /// Seed of the fit's private RNG (mandatory on the wire).
        seed: u64,
        /// Handle the estimate is stored under.
        handle: String,
    },
    /// `answer <id> from=<handle> <ranges…>`. Ranges are *raw* — bounds
    /// are validated against the tenant's domain at serve time, so
    /// decoding stays a pure function of the line.
    Answer {
        /// Target tenant.
        tenant: String,
        /// Handle of a previously fitted estimate.
        handle: String,
        /// The unvalidated per-dimension bounds, in request order.
        ranges: Vec<RawRange>,
    },
    /// `stats [<id>]`.
    Stats {
        /// Restrict to one tenant; `None` reports every tenant.
        tenant: Option<String>,
    },
}

/// One unvalidated range query as written on the wire: inclusive
/// per-dimension bounds, not yet checked against any domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawRange {
    /// Lower bound per dimension.
    pub lo: Vec<usize>,
    /// Upper bound per dimension (inclusive).
    pub hi: Vec<usize>,
}

impl RawRange {
    /// Validates the raw bounds against a concrete domain.
    pub fn into_query(self, domain: &Domain) -> Result<RangeQuery, EngineError> {
        Ok(RangeQuery::new(domain, self.lo, self.hi)?)
    }
}

/// A typed protocol response — what [`serve_request`] produces and
/// [`Codec::encode`] renders to one `ok …` line.
#[derive(Clone, Debug)]
pub enum Response {
    /// Negotiation accepted (`ok hello blowfish/1`).
    Hello,
    /// The help line, including the protocol version.
    Help,
    /// `quit` acknowledged (connection drivers close instead of
    /// replying; see [`WireReply::Quit`]).
    Goodbye,
    /// The connection's default tenant was set.
    Using {
        /// The tenant now implied by id-less commands.
        tenant: String,
    },
    /// A tenant was onboarded.
    TenantAdded {
        /// Tenant id.
        id: String,
        /// Recognized policy family name.
        policy: String,
        /// Domain size of the tenant's data.
        cells: usize,
    },
    /// Any engine-level response (plan/fit/answer/stats).
    Engine(service::Response),
}

/// Typed failure of decoding or serving one protocol line. Rendered to
/// an `err …` reply by [`Codec::encode_error`]; never a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The verb is not part of the protocol.
    UnknownCommand {
        /// The rejected verb.
        command: String,
    },
    /// `hello` asked for a version this server does not speak.
    UnsupportedVersion {
        /// The version the client requested.
        requested: String,
    },
    /// A syntactically malformed request line.
    BadRequest {
        /// What was malformed.
        what: String,
    },
    /// The request decoded but the engine rejected it.
    Engine(EngineError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownCommand { command } => {
                write!(
                    f,
                    "unknown-command {command} (accepted: {})",
                    VERBS.join("|")
                )
            }
            WireError::UnsupportedVersion { requested } => {
                write!(
                    f,
                    "unsupported-version {requested} (this server speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::BadRequest { what } => write!(f, "bad request: {what}"),
            WireError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for WireError {
    fn from(e: EngineError) -> Self {
        WireError::Engine(e)
    }
}

impl From<blowfish_core::CoreError> for WireError {
    fn from(e: blowfish_core::CoreError) -> Self {
        WireError::Engine(EngineError::Core(e))
    }
}

impl WireError {
    /// Whether this is the typed budget-exhaustion rejection.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, WireError::Engine(e) if e.is_budget_exhausted())
    }
}

/// Outcome of feeding one input line to [`Codec::serve`] /
/// [`handle_line`].
#[derive(Clone, Debug, PartialEq)]
pub enum WireReply {
    /// A response line to write back (`ok …` or `err …`).
    Reply(String),
    /// The line was blank or a comment; write nothing.
    Silent,
    /// The client asked to close the connection (`quit`).
    Quit,
}

/// The protocol codec plus one connection's protocol state (currently
/// the `use` default tenant). Servers hold one codec per connection;
/// clients use the stateless [`Codec::encode_request`] /
/// [`Codec::decode`] halves directly.
#[derive(Clone, Debug, Default)]
pub struct Codec {
    default_tenant: Option<String>,
}

impl Codec {
    /// A fresh codec with no connection state.
    pub fn new() -> Codec {
        Codec::default()
    }

    /// The greeting line a server writes as the first line of every
    /// connection, leading with the protocol version.
    pub fn banner() -> String {
        format!("ok {PROTOCOL_VERSION} ready (newline-delimited requests; `help` lists commands)")
    }

    /// The connection's current default tenant (set by `use`).
    pub fn default_tenant(&self) -> Option<&str> {
        self.default_tenant.as_deref()
    }

    /// Parses one protocol line into a typed [`Request`]. `Ok(None)`
    /// means the line was blank or a comment (write nothing). Never
    /// panics — every malformed input is a typed [`WireError`].
    pub fn decode(&self, line: &str) -> Result<Option<Request>, WireError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut tokens = line.split_whitespace();
        let command = tokens.next().expect("non-empty line");
        let rest: Vec<&str> = tokens.collect();
        let request = match command {
            "hello" => Request::Hello {
                version: rest.first().map(|v| v.to_string()),
            },
            "help" => Request::Help,
            "quit" => Request::Quit,
            "use" => match rest.as_slice() {
                [tenant] if !tenant.contains('=') => Request::Use {
                    tenant: tenant.to_string(),
                },
                _ => return Err(bad("use needs exactly one tenant id")),
            },
            "tenant" => self.decode_tenant(&rest)?,
            "plan" => {
                let (tenant, args) = self.tenant_and_args(&rest, "plan")?;
                Request::Plan {
                    tenant,
                    task: parse_task(arg(&args, "task").unwrap_or("hist"))?,
                }
            }
            "fit" => {
                let (tenant, args) = self.tenant_and_args(&rest, "fit")?;
                let handle = arg(&args, "as")
                    .ok_or_else(|| bad_err("fit needs as=<handle>"))?
                    .to_string();
                let spec = match arg(&args, "mech") {
                    Some(mech) => Some(
                        MechanismSpec::parse(mech)
                            .ok_or_else(|| bad_err(&format!("unknown mechanism id {mech}")))?,
                    ),
                    None => None,
                };
                let task = parse_task(arg(&args, "task").unwrap_or("hist"))?;
                // Seeds are mandatory, never defaulted: a fixed implicit
                // seed would make every unseeded release reuse one noise
                // stream — duplicate releases that still burn budget, and
                // fully predictable noise. The caller owns seed policy
                // (fresh entropy in production, fixed seeds for
                // reproducibility).
                let seed_token = arg(&args, "seed").ok_or_else(|| bad_err("fit needs seed=<n>"))?;
                let seed = seed_token
                    .parse()
                    .map_err(|_| bad_err(&format!("bad seed {seed_token}")))?;
                Request::Fit {
                    tenant,
                    spec,
                    task,
                    seed,
                    handle,
                }
            }
            "answer" => {
                let (tenant, args) = self.tenant_and_args(&rest, "answer")?;
                let handle = arg(&args, "from")
                    .ok_or_else(|| bad_err("answer needs from=<handle>"))?
                    .to_string();
                let ranges = args
                    .iter()
                    .filter(|t| !t.contains('='))
                    .map(|t| parse_raw_range(t))
                    .collect::<Result<Vec<RawRange>, WireError>>()?;
                if ranges.is_empty() {
                    return Err(bad("answer needs at least one <lo>..<hi> range"));
                }
                Request::Answer {
                    tenant,
                    handle,
                    ranges,
                }
            }
            "stats" => Request::Stats {
                tenant: rest.first().map(|s| s.to_string()),
            },
            other => {
                return Err(WireError::UnknownCommand {
                    command: other.to_string(),
                })
            }
        };
        Ok(Some(request))
    }

    /// Renders a typed response as one `ok …` protocol line.
    pub fn encode(response: &Response) -> String {
        match response {
            Response::Hello => format!("ok hello {PROTOCOL_VERSION}"),
            Response::Help => format!(
                "ok help {PROTOCOL_VERSION} commands: {} \
                 (see the blowfish-engine wire module docs for syntax)",
                VERBS.join("|")
            ),
            Response::Goodbye => "ok bye".to_string(),
            Response::Using { tenant } => format!("ok use {tenant}"),
            Response::TenantAdded { id, policy, cells } => {
                format!("ok tenant {id} policy={policy} cells={cells}")
            }
            Response::Engine(response) => match response {
                service::Response::Planned { spec } => format!("ok plan {}", spec.id()),
                service::Response::Fitted {
                    handle,
                    charged,
                    spent,
                    remaining,
                } => {
                    format!("ok fit {handle} charged={charged} spent={spent} remaining={remaining}")
                }
                service::Response::Answers { values } => {
                    let mut out = format!("ok answer {}", values.len());
                    for v in values {
                        out.push(' ');
                        out.push_str(&format!("{v}"));
                    }
                    out
                }
                service::Response::Stats {
                    tenants,
                    artifact_builds,
                    solver,
                    durability,
                } => {
                    // Durability health is always reported so clients can
                    // key off the fields unconditionally: an in-memory
                    // service answers `durable=no wal_bytes=0
                    // last_snapshot=0`, a durable one names its fsync
                    // policy and current WAL/snapshot position.
                    let (durable, wal_bytes, last_snapshot) = match durability {
                        Some(d) => (d.policy.to_string(), d.wal_bytes, d.snapshot_generation),
                        None => ("no".to_string(), 0, 0),
                    };
                    let mut out = format!(
                        "ok stats builds={artifact_builds} solves={} cg_iters={} \
                         factored={} cg_fallback={} durable={durable} \
                         wal_bytes={wal_bytes} last_snapshot={last_snapshot} tenants={}",
                        solver.solves,
                        solver.cg_iterations,
                        solver.sparse_factorizations,
                        solver.cg_fallbacks,
                        tenants.len()
                    );
                    for t in tenants {
                        out.push_str(&format!(
                            " | {} spent={} remaining={} fits={} estimates={}",
                            t.id, t.spent, t.remaining, t.fits, t.estimates
                        ));
                    }
                    out
                }
            },
        }
    }

    /// Renders a typed error as one `err …` protocol line.
    pub fn encode_error(error: &WireError) -> String {
        format!("err {error}")
    }

    /// Renders a typed request back to its canonical protocol line (the
    /// client half of the codec; `decode` round-trips it).
    pub fn encode_request(request: &Request) -> String {
        match request {
            Request::Hello { version } => match version {
                Some(v) => format!("hello {v}"),
                None => "hello".to_string(),
            },
            Request::Help => "help".to_string(),
            Request::Quit => "quit".to_string(),
            Request::Use { tenant } => format!("use {tenant}"),
            Request::Tenant {
                config,
                policy_token,
            } => {
                let data = config
                    .data
                    .counts()
                    .iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<String>>()
                    .join(",");
                format!(
                    "tenant {} policy={policy_token} eps={} budget={} data={data}",
                    config.id,
                    config.eps.value(),
                    config.budget.value()
                )
            }
            Request::Plan { tenant, task } => {
                format!("plan {tenant} task={}", task_token(*task))
            }
            Request::Fit {
                tenant,
                spec,
                task,
                seed,
                handle,
            } => {
                let mut out = format!(
                    "fit {tenant} as={handle} seed={seed} task={}",
                    task_token(*task)
                );
                if let Some(spec) = spec {
                    out.push_str(&format!(" mech={}", spec.id()));
                }
                out
            }
            Request::Answer {
                tenant,
                handle,
                ranges,
            } => {
                let mut out = format!("answer {tenant} from={handle}");
                for r in ranges {
                    out.push(' ');
                    let dims: Vec<String> =
                        r.lo.iter()
                            .zip(&r.hi)
                            .map(|(lo, hi)| format!("{lo}..{hi}"))
                            .collect();
                    out.push_str(&dims.join("x"));
                }
                out
            }
            Request::Stats { tenant } => match tenant {
                Some(t) => format!("stats {t}"),
                None => "stats".to_string(),
            },
        }
    }

    /// Decodes, dispatches, and encodes one input line against a
    /// service: the full per-line pipeline a connection driver runs.
    /// Updates the connection's default tenant on a successful `use`.
    ///
    /// One line never reaches this method over TCP: `stats net` is
    /// answered at the framing layer ([`net::LineSession`](crate::net))
    /// with per-server socket counters the codec cannot see. On stdio
    /// the same line falls through to the ordinary per-tenant `stats`
    /// path (and answers `err unknown tenant net`) — the single
    /// intentional stdio/TCP divergence.
    pub fn serve(&mut self, service: &Service, line: &str) -> WireReply {
        match self.decode(line) {
            Ok(None) => WireReply::Silent,
            Ok(Some(Request::Quit)) => WireReply::Quit,
            Ok(Some(request)) => match serve_request(service, &request) {
                Ok(response) => {
                    if let Request::Use { tenant } = &request {
                        self.default_tenant = Some(tenant.clone());
                    }
                    WireReply::Reply(Codec::encode(&response))
                }
                Err(e) => WireReply::Reply(Codec::encode_error(&e)),
            },
            Err(e) => WireReply::Reply(Codec::encode_error(&e)),
        }
    }

    /// First positional token is the tenant id; with none (or only
    /// `key=value` arguments), the connection's `use` default applies.
    fn tenant_and_args<'a>(
        &self,
        rest: &[&'a str],
        command: &str,
    ) -> Result<(String, Vec<&'a str>), WireError> {
        match rest.split_first() {
            Some((id, args)) if !id.contains('=') => Ok((id.to_string(), args.to_vec())),
            _ => match &self.default_tenant {
                Some(tenant) => Ok((tenant.clone(), rest.to_vec())),
                None => Err(bad(&format!(
                    "{command} needs a tenant id (or `use <tenant>` first)"
                ))),
            },
        }
    }

    fn decode_tenant(&self, rest: &[&str]) -> Result<Request, WireError> {
        let (id, args) = self.tenant_and_args(rest, "tenant")?;
        let policy_token = arg(&args, "policy")
            .ok_or_else(|| bad_err("tenant needs policy=<spec>"))?
            .to_string();
        let graph = parse_policy(&policy_token)?;
        let eps = parse_epsilon(arg(&args, "eps").ok_or_else(|| bad_err("tenant needs eps=<ε>"))?)?;
        let budget =
            parse_epsilon(arg(&args, "budget").ok_or_else(|| bad_err("tenant needs budget=<ε>"))?)?;
        let data = parse_data(
            graph.domain(),
            arg(&args, "data").ok_or_else(|| bad_err("tenant needs data=<v,v,…|uniform:<v>>"))?,
        )?;
        Ok(Request::Tenant {
            config: Box::new(TenantConfig {
                id,
                graph,
                eps,
                budget,
                data,
            }),
            policy_token,
        })
    }
}

/// Dispatches one typed request against a service, producing the typed
/// response. Engine-level rejections (unknown tenant, exhausted budget,
/// bad ranges) come back as [`WireError::Engine`].
pub fn serve_request(service: &Service, request: &Request) -> Result<Response, WireError> {
    match request {
        Request::Hello { version } => match version {
            Some(v) if v != PROTOCOL_VERSION => Err(WireError::UnsupportedVersion {
                requested: v.clone(),
            }),
            _ => Ok(Response::Hello),
        },
        Request::Help => Ok(Response::Help),
        Request::Quit => Ok(Response::Goodbye),
        Request::Use { tenant } => {
            // Validate before the codec records the default: `use ghost`
            // must not silently aim subsequent commands at a tenant that
            // can never serve them.
            service.tenant_domain(tenant)?;
            Ok(Response::Using {
                tenant: tenant.clone(),
            })
        }
        Request::Tenant { config, .. } => {
            let id = config.id.clone();
            let policy = config.graph.name().to_string();
            let cells = config.data.domain().size();
            service.add_tenant(config.as_ref().clone())?;
            Ok(Response::TenantAdded { id, policy, cells })
        }
        Request::Plan { tenant, task } => Ok(Response::Engine(service.handle(
            &service::Request::Plan {
                tenant: tenant.clone(),
                task: *task,
            },
        )?)),
        Request::Fit {
            tenant,
            spec,
            task,
            seed,
            handle,
        } => Ok(Response::Engine(service.handle(
            &service::Request::Fit {
                tenant: tenant.clone(),
                spec: *spec,
                task: *task,
                seed: *seed,
                handle: handle.clone(),
            },
        )?)),
        Request::Answer {
            tenant,
            handle,
            ranges,
        } => {
            let domain = service.tenant_domain(tenant)?;
            let queries = ranges
                .iter()
                .map(|r| r.clone().into_query(&domain))
                .collect::<Result<Vec<RangeQuery>, EngineError>>()?;
            Ok(Response::Engine(service.handle(
                &service::Request::Answer {
                    tenant: tenant.clone(),
                    handle: handle.clone(),
                    queries,
                },
            )?))
        }
        Request::Stats { tenant } => Ok(Response::Engine(service.handle(
            &service::Request::Stats {
                tenant: tenant.clone(),
            },
        )?)),
    }
}

/// Parses and serves one protocol line against a service with no
/// connection state — the legacy entry point, now a thin compat wrapper
/// over a fresh [`Codec`]. Never panics on malformed input.
pub fn handle_line(service: &Service, line: &str) -> WireReply {
    Codec::new().serve(service, line)
}

impl From<&service::Request> for Request {
    /// The wire form of an engine request (used by load generators to
    /// render typed traces onto a socket).
    fn from(request: &service::Request) -> Request {
        match request {
            service::Request::Plan { tenant, task } => Request::Plan {
                tenant: tenant.clone(),
                task: *task,
            },
            service::Request::Fit {
                tenant,
                spec,
                task,
                seed,
                handle,
            } => Request::Fit {
                tenant: tenant.clone(),
                spec: *spec,
                task: *task,
                seed: *seed,
                handle: handle.clone(),
            },
            service::Request::Answer {
                tenant,
                handle,
                queries,
            } => Request::Answer {
                tenant: tenant.clone(),
                handle: handle.clone(),
                ranges: queries
                    .iter()
                    .map(|q| RawRange {
                        lo: q.lo.clone(),
                        hi: q.hi.clone(),
                    })
                    .collect(),
            },
            service::Request::Stats { tenant } => Request::Stats {
                tenant: tenant.clone(),
            },
        }
    }
}

fn bad(what: &str) -> WireError {
    WireError::BadRequest {
        what: what.to_string(),
    }
}

// Closure-friendly alias (`ok_or_else` wants a zero-arg constructor).
fn bad_err(what: &str) -> WireError {
    bad(what)
}

/// Looks up `key=` in the argument tokens.
fn arg<'a>(args: &[&'a str], key: &str) -> Option<&'a str> {
    args.iter()
        .find_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

fn parse_task(token: &str) -> Result<Task, WireError> {
    match token {
        "hist" | "histogram" => Ok(Task::Histogram),
        "range1d" => Ok(Task::Range1d),
        "range2d" => Ok(Task::Range2d),
        other => Err(bad(&format!("unknown task {other}"))),
    }
}

/// The canonical wire token for a task (inverse of the parser).
pub fn task_token(task: Task) -> &'static str {
    match task {
        Task::Histogram => "hist",
        Task::Range1d => "range1d",
        Task::Range2d => "range2d",
    }
}

fn parse_epsilon(token: &str) -> Result<Epsilon, WireError> {
    let value: f64 = token
        .parse()
        .map_err(|_| bad(&format!("bad ε value {token}")))?;
    Ok(Epsilon::new(value)?)
}

/// Untrusted-input caps for wire-constructed policies: one request line
/// must not be able to allocate an unbounded graph and take the server
/// down (`complete:<k>` alone is k(k−1)/2 edges; a θ-grid enumerates
/// O(k²θ²) edge candidates). `MAX_WIRE_K`/`MAX_WIRE_THETA` bound the raw
/// parameters; `MAX_WIRE_EDGES` bounds a cheap per-family upper estimate
/// of the edge count before anything is built. Generous for every
/// workload in the paper, far below allocation-failure territory.
const MAX_WIRE_K: usize = 4096;
const MAX_WIRE_THETA: usize = 64;
const MAX_WIRE_EDGES: usize = 1 << 22;

fn parse_policy(token: &str) -> Result<PolicyGraph, WireError> {
    let parts: Vec<&str> = token.split(':').collect();
    let num = |s: &str, cap: usize, what: &str| -> Result<usize, WireError> {
        let n: usize = s
            .parse()
            .map_err(|_| bad(&format!("bad number {s} in policy {token}")))?;
        if n > cap {
            return Err(bad(&format!(
                "{what} {n} exceeds the wire limit {cap} in policy {token}"
            )));
        }
        Ok(n)
    };
    let k = |s| num(s, MAX_WIRE_K, "domain size");
    let theta = |s| num(s, MAX_WIRE_THETA, "θ");
    // Upper estimate of |E| for a family, saturating; rejected before any
    // graph memory is allocated.
    let fits = |edges: usize| -> Result<(), WireError> {
        if edges > MAX_WIRE_EDGES {
            return Err(bad(&format!(
                "policy {token} would build ~{edges} edges (wire limit {MAX_WIRE_EDGES})"
            )));
        }
        Ok(())
    };
    let graph = match parts.as_slice() {
        ["line", n] => PolicyGraph::line(k(n)?),
        ["theta-line", n, t] => {
            let (k, t) = (k(n)?, theta(t)?);
            fits(k.saturating_mul(t))?;
            PolicyGraph::theta_line(k, t)
        }
        ["grid", n] => {
            let k = k(n)?;
            fits(k.saturating_mul(k).saturating_mul(2))?;
            PolicyGraph::distance_threshold(Domain::square(k), 1)
        }
        ["theta-grid", n, t] => {
            let (k, t) = (k(n)?, theta(t)?);
            // Per cell, canonical offsets with |δ|₁ ≤ θ number ≤ 2θ(θ+1).
            fits(k.saturating_mul(k).saturating_mul(2 * t * (t + 1)))?;
            PolicyGraph::distance_threshold(Domain::square(k), t)
        }
        ["star", n] => PolicyGraph::star(k(n)?),
        ["complete", n] => {
            let k = k(n)?;
            fits(k.saturating_mul(k.saturating_sub(1)) / 2)?;
            PolicyGraph::complete(k)
        }
        _ => return Err(bad(&format!("unknown policy spec {token}"))),
    };
    Ok(graph?)
}

fn parse_data(domain: &Domain, token: &str) -> Result<DataVector, WireError> {
    let counts: Vec<f64> = if let Some(v) = token.strip_prefix("uniform:") {
        let fill: f64 = v
            .parse()
            .map_err(|_| bad(&format!("bad uniform fill {v}")))?;
        vec![fill; domain.size()]
    } else {
        token
            .split(',')
            .map(|s| s.parse().map_err(|_| bad(&format!("bad data value {s}"))))
            .collect::<Result<Vec<f64>, WireError>>()?
    };
    Ok(DataVector::new(domain.clone(), counts)?)
}

/// Parses `lo..hi` (1-D) or dims joined with `x` into raw bounds (domain
/// validation happens at serve time).
fn parse_raw_range(token: &str) -> Result<RawRange, WireError> {
    let mut lo = Vec::new();
    let mut hi = Vec::new();
    for dim in token.split('x') {
        let (a, b) = dim
            .split_once("..")
            .ok_or_else(|| bad_err(&format!("bad range {token} (want lo..hi)")))?;
        lo.push(
            a.parse()
                .map_err(|_| bad(&format!("bad range bound {a}")))?,
        );
        hi.push(
            b.parse()
                .map_err(|_| bad(&format!("bad range bound {b}")))?,
        );
    }
    Ok(RawRange { lo, hi })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(service: &Service, line: &str) -> String {
        match handle_line(service, line) {
            WireReply::Reply(r) => {
                assert!(r.starts_with("ok "), "expected ok for {line:?}, got {r}");
                r
            }
            other => panic!("expected reply for {line:?}, got {other:?}"),
        }
    }

    fn err(service: &Service, line: &str) -> String {
        match handle_line(service, line) {
            WireReply::Reply(r) => {
                assert!(r.starts_with("err "), "expected err for {line:?}, got {r}");
                r
            }
            other => panic!("expected reply for {line:?}, got {other:?}"),
        }
    }

    #[test]
    fn full_session_over_the_wire() {
        let service = Service::new();
        ok(
            &service,
            "tenant acme policy=line:16 eps=0.5 budget=2.0 data=uniform:3",
        );
        let plan = ok(&service, "plan acme task=range1d");
        assert_eq!(plan, "ok plan line-laplace-consistent");
        let fit = ok(&service, "fit acme as=r1 seed=7 task=range1d");
        assert!(fit.starts_with("ok fit r1 charged=0.5"), "{fit}");
        let answer = ok(&service, "answer acme from=r1 0..15 3..9");
        assert!(answer.starts_with("ok answer 2 "), "{answer}");
        let stats = ok(&service, "stats acme");
        assert!(stats.contains("acme spent=0.5"), "{stats}");
        // Solver observability flows through the stats verb.
        assert!(stats.contains("solves="), "{stats}");
        assert!(stats.contains("factored="), "{stats}");
        assert!(stats.contains("cg_fallback="), "{stats}");
        // Durability fields are always present; in-memory answers no/0/0.
        assert!(stats.contains("durable=no"), "{stats}");
        assert!(stats.contains("wal_bytes=0"), "{stats}");
        assert!(stats.contains("last_snapshot=0"), "{stats}");
        // Explicit mechanism id path (a baseline charges ε/2).
        let fit2 = ok(&service, "fit acme as=r2 mech=dp-laplace seed=1");
        assert!(fit2.contains("charged=0.25"), "{fit2}");
    }

    #[test]
    fn durable_service_reports_wal_health_over_the_wire() {
        let dir =
            std::env::temp_dir().join(format!("blowfish-wire-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (ledger, _) =
            blowfish_core::Ledger::durable(&dir, blowfish_core::LedgerDurability::default())
                .unwrap();
        let service = Service::with_ledger(std::sync::Arc::new(ledger));
        ok(
            &service,
            "tenant acme policy=line:8 eps=0.5 budget=2.0 data=uniform:1",
        );
        ok(&service, "fit acme as=r1 seed=5");
        let stats = ok(&service, "stats");
        assert!(stats.contains("durable=per-charge"), "{stats}");
        assert!(!stats.contains("wal_bytes=0 "), "{stats}");
        assert!(stats.contains("last_snapshot=0"), "{stats}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn two_dimensional_ranges_parse() {
        let service = Service::new();
        ok(
            &service,
            "tenant geo policy=grid:8 eps=0.5 budget=4.0 data=uniform:1",
        );
        ok(&service, "fit geo as=g1 seed=3 task=range2d");
        let answer = ok(&service, "answer geo from=g1 0..7x0..7 1..3x2..5");
        assert!(answer.starts_with("ok answer 2 "), "{answer}");
    }

    #[test]
    fn malformed_lines_become_err_replies() {
        let service = Service::new();
        err(&service, "frobnicate");
        err(&service, "tenant");
        err(
            &service,
            "tenant acme policy=klein-bottle:4 eps=1 budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant acme policy=line:4 eps=zero budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant acme policy=line:4 eps=0.5 budget=1 data=1,2,3",
        );
        ok(
            &service,
            "tenant acme policy=line:4 eps=0.5 budget=1 data=1,2,3,4",
        );
        err(&service, "plan ghost");
        err(&service, "fit acme seed=1");
        // An unseeded fit is rejected — seed 0 must never be implied.
        err(&service, "fit acme as=h");
        err(&service, "answer acme from=nope 0..3");
        ok(&service, "fit acme as=h seed=1");
        err(&service, "answer acme from=h");
        err(&service, "answer acme from=h 3..1");
        err(&service, "answer acme from=h 0..99");
        // Budget exhaustion surfaces the typed core error's message.
        ok(&service, "fit acme as=h2 seed=2");
        let e = err(&service, "fit acme as=h3 seed=3");
        assert!(e.contains("budget exhausted"), "{e}");
    }

    #[test]
    fn unknown_commands_are_structured_with_the_verb_list() {
        let service = Service::new();
        let e = err(&service, "frobnicate all the things");
        assert!(e.starts_with("err unknown-command frobnicate"), "{e}");
        for verb in VERBS {
            assert!(e.contains(verb), "verb list missing {verb}: {e}");
        }
        // The typed decode error matches the rendered reply.
        let decoded = Codec::new().decode("frobnicate").unwrap_err();
        assert_eq!(
            decoded,
            WireError::UnknownCommand {
                command: "frobnicate".to_string()
            }
        );
    }

    #[test]
    fn version_negotiation_and_banner() {
        let service = Service::new();
        assert!(Codec::banner().starts_with("ok blowfish/1 "));
        assert_eq!(ok(&service, "hello"), "ok hello blowfish/1");
        assert_eq!(ok(&service, "hello blowfish/1"), "ok hello blowfish/1");
        let e = err(&service, "hello blowfish/2");
        assert!(e.starts_with("err unsupported-version blowfish/2"), "{e}");
        // `help` reports the protocol version.
        let h = ok(&service, "help");
        assert!(h.starts_with("ok help blowfish/1 "), "{h}");
        assert!(h.contains("tenant|use|plan"), "{h}");
    }

    #[test]
    fn use_sets_the_connection_default_tenant() {
        let service = Service::new();
        let mut codec = Codec::new();
        let onboard = codec.serve(
            &service,
            "tenant acme policy=line:8 eps=0.5 budget=4.0 data=uniform:2",
        );
        assert!(matches!(onboard, WireReply::Reply(r) if r.starts_with("ok tenant acme")));
        // Without a default, id-less commands are rejected with a hint.
        let bare = codec.serve(&service, "fit as=r1 seed=1");
        assert!(
            matches!(&bare, WireReply::Reply(r) if r.contains("use <tenant>")),
            "{bare:?}"
        );
        // `use ghost` is rejected and leaves no default behind.
        let ghost = codec.serve(&service, "use ghost");
        assert!(matches!(&ghost, WireReply::Reply(r) if r.starts_with("err unknown tenant")));
        assert_eq!(codec.default_tenant(), None);
        // After `use acme`, the tenant id is implied.
        assert_eq!(
            codec.serve(&service, "use acme"),
            WireReply::Reply("ok use acme".to_string())
        );
        assert_eq!(codec.default_tenant(), Some("acme"));
        let fit = codec.serve(&service, "fit as=r1 seed=1");
        assert!(
            matches!(&fit, WireReply::Reply(r) if r.starts_with("ok fit r1 ")),
            "{fit:?}"
        );
        let answer = codec.serve(&service, "answer from=r1 0..7");
        assert!(
            matches!(&answer, WireReply::Reply(r) if r.starts_with("ok answer 1 ")),
            "{answer:?}"
        );
        // Explicit ids still win over the default.
        let ghost_fit = codec.serve(&service, "fit ghost as=r2 seed=2");
        assert!(matches!(&ghost_fit, WireReply::Reply(r) if r.starts_with("err unknown tenant")));
        // The legacy stateless wrapper never carries a default across
        // calls.
        let stateless = handle_line(&service, "fit as=r9 seed=9");
        assert!(matches!(&stateless, WireReply::Reply(r) if r.starts_with("err ")));
    }

    #[test]
    fn encode_request_decode_round_trips() {
        let codec = Codec::new();
        let lines = [
            "hello blowfish/1",
            "help",
            "quit",
            "use acme",
            "tenant acme policy=line:4 eps=0.5 budget=2 data=1,2,3,4",
            "plan acme task=range1d",
            "fit acme as=r1 seed=7 task=range2d mech=dp-laplace",
            "answer acme from=r1 0..3 1..2x0..1",
            "stats",
            "stats acme",
        ];
        for line in lines {
            let request = codec
                .decode(line)
                .unwrap_or_else(|e| panic!("{line}: {e}"))
                .unwrap_or_else(|| panic!("{line}: silent"));
            let rendered = Codec::encode_request(&request);
            // Canonical lines render back byte-identically…
            assert_eq!(rendered, line, "round trip for {line}");
            // …and re-decode to a request that renders the same again.
            let again = codec.decode(&rendered).unwrap().unwrap();
            assert_eq!(Codec::encode_request(&again), rendered);
        }
        // Engine requests convert into wire requests that serve
        // identically.
        let service = Service::new();
        ok(
            &service,
            "tenant acme policy=line:4 eps=0.5 budget=2 data=1,2,3,4",
        );
        let engine_request = service::Request::Fit {
            tenant: "acme".into(),
            spec: None,
            task: Task::Range1d,
            seed: 3,
            handle: "w".into(),
        };
        let wire_request = Request::from(&engine_request);
        let reply = ok(&service, &Codec::encode_request(&wire_request));
        assert!(reply.starts_with("ok fit w charged=0.5"), "{reply}");
    }

    #[test]
    fn oversized_policies_are_rejected_before_allocation() {
        // One request line must not be able to OOM the server.
        let service = Service::new();
        err(
            &service,
            "tenant a policy=complete:200000 eps=1 budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant a policy=line:999999999 eps=1 budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant a policy=theta-grid:4096:64 eps=1 budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant a policy=theta-line:4096:9999 eps=1 budget=1 data=uniform:0",
        );
        // In-cap requests still work.
        ok(
            &service,
            "tenant a policy=complete:64 eps=1 budget=1 data=uniform:0",
        );
    }

    #[test]
    fn blank_comment_and_quit_lines() {
        let service = Service::new();
        assert_eq!(handle_line(&service, ""), WireReply::Silent);
        assert_eq!(handle_line(&service, "  # a comment"), WireReply::Silent);
        assert_eq!(handle_line(&service, "quit"), WireReply::Quit);
        assert!(matches!(
            handle_line(&service, "help"),
            WireReply::Reply(r) if r.starts_with("ok help")
        ));
        // The typed pipeline agrees: quit decodes, and even dispatching
        // it directly is well-defined.
        let request = Codec::new().decode("quit").unwrap().unwrap();
        assert!(matches!(request, Request::Quit));
        let response = serve_request(&service, &request).unwrap();
        assert_eq!(Codec::encode(&response), "ok bye");
    }
}
