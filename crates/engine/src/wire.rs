//! Newline-delimited text codec for the [`Service`] request protocol —
//! what the `blowfish-serve` bin speaks over stdin/stdout.
//!
//! One request per line, one response line per request (`ok …` or
//! `err …`); blank lines and `#` comments are ignored. Commands:
//!
//! ```text
//! tenant <id> policy=<p> eps=<ε> budget=<ε> data=<v,v,…|uniform:<v>>
//! plan <id> task=<hist|range1d|range2d>
//! fit <id> as=<handle> seed=<n> [mech=<registry-id>] [task=<t>]
//! answer <id> from=<handle> <lo>..<hi> [<lo>..<hi>x<lo>..<hi> …]
//! stats [<id>]
//! help
//! quit
//! ```
//!
//! Policies: `line:<k>`, `theta-line:<k>:<θ>`, `grid:<k>` (k×k, θ=1),
//! `theta-grid:<k>:<θ>`, `star:<k>`, `complete:<k>`. Mechanism ids are
//! the [`MechanismSpec::id`] registry ids (e.g. `dp-laplace`,
//! `theta-line-4-laplace`). Range queries give inclusive per-dimension
//! bounds `lo..hi`, dimensions joined with `x` (`2..9` is 1-D,
//! `0..3x1..4` is 2-D).

use blowfish_core::{DataVector, Domain, Epsilon, PolicyGraph, RangeQuery};

use crate::service::{Request, Response, Service, TenantConfig};
use crate::spec::{MechanismSpec, Task};
use crate::EngineError;

/// Outcome of feeding one input line to [`handle_line`].
#[derive(Clone, Debug, PartialEq)]
pub enum WireReply {
    /// A response line to write back (`ok …` or `err …`).
    Reply(String),
    /// The line was blank or a comment; write nothing.
    Silent,
    /// The client asked to close the connection (`quit`).
    Quit,
}

/// Parses and serves one protocol line against a service, formatting the
/// outcome as a response line. Never panics on malformed input — every
/// parse failure becomes an `err …` reply.
pub fn handle_line(service: &Service, line: &str) -> WireReply {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return WireReply::Silent;
    }
    if line == "quit" {
        return WireReply::Quit;
    }
    match serve_line(service, line) {
        Ok(reply) => WireReply::Reply(reply),
        Err(e) => WireReply::Reply(format!("err {e}")),
    }
}

fn serve_line(service: &Service, line: &str) -> Result<String, EngineError> {
    let mut tokens = line.split_whitespace();
    let command = tokens.next().expect("non-empty line");
    let rest: Vec<&str> = tokens.collect();
    match command {
        "help" => Ok(format!("ok help {}", HELP)),
        "tenant" => {
            let config = parse_tenant(&rest)?;
            let id = config.id.clone();
            let policy = config.graph.name().to_string();
            let cells = config.data.domain().size();
            service.add_tenant(config)?;
            Ok(format!("ok tenant {id} policy={policy} cells={cells}"))
        }
        "plan" => {
            let (id, args) = split_id(&rest, "plan")?;
            let task = parse_task(arg(&args, "task").unwrap_or("hist"))?;
            let response = service.handle(&Request::Plan {
                tenant: id.to_string(),
                task,
            })?;
            format_response(&response)
        }
        "fit" => {
            let (id, args) = split_id(&rest, "fit")?;
            let handle = arg(&args, "as")
                .ok_or_else(|| bad("fit needs as=<handle>"))?
                .to_string();
            let spec = match arg(&args, "mech") {
                Some(mech) => Some(
                    MechanismSpec::parse(mech)
                        .ok_or_else(|| bad(&format!("unknown mechanism id {mech}")))?,
                ),
                None => None,
            };
            let task = parse_task(arg(&args, "task").unwrap_or("hist"))?;
            // Seeds are mandatory, never defaulted: a fixed implicit seed
            // would make every unseeded release reuse one noise stream —
            // duplicate releases that still burn budget, and fully
            // predictable noise. The caller owns seed policy (fresh
            // entropy in production, fixed seeds for reproducibility).
            let seed_token = arg(&args, "seed").ok_or_else(|| bad("fit needs seed=<n>"))?;
            let seed = seed_token
                .parse()
                .map_err(|_| bad(&format!("bad seed {seed_token}")))?;
            let response = service.handle(&Request::Fit {
                tenant: id.to_string(),
                spec,
                task,
                seed,
                handle,
            })?;
            format_response(&response)
        }
        "answer" => {
            let (id, args) = split_id(&rest, "answer")?;
            let handle = arg(&args, "from")
                .ok_or_else(|| bad("answer needs from=<handle>"))?
                .to_string();
            let domain = service.tenant_domain(id)?;
            let queries = args
                .iter()
                .filter(|t| !t.contains('='))
                .map(|t| parse_range(&domain, t))
                .collect::<Result<Vec<RangeQuery>, EngineError>>()?;
            if queries.is_empty() {
                return Err(bad("answer needs at least one <lo>..<hi> range"));
            }
            let response = service.handle(&Request::Answer {
                tenant: id.to_string(),
                handle,
                queries,
            })?;
            format_response(&response)
        }
        "stats" => {
            let response = service.handle(&Request::Stats {
                tenant: rest.first().map(|s| s.to_string()),
            })?;
            format_response(&response)
        }
        other => Err(bad(&format!("unknown command {other}"))),
    }
}

const HELP: &str = "commands: tenant|plan|fit|answer|stats|help|quit \
(see the blowfish-engine wire module docs for syntax)";

/// Formats a typed [`Response`] as one protocol line.
pub fn format_response(response: &Response) -> Result<String, EngineError> {
    Ok(match response {
        Response::Planned { spec } => format!("ok plan {}", spec.id()),
        Response::Fitted {
            handle,
            charged,
            spent,
            remaining,
        } => format!("ok fit {handle} charged={charged} spent={spent} remaining={remaining}"),
        Response::Answers { values } => {
            let mut out = format!("ok answer {}", values.len());
            for v in values {
                out.push(' ');
                out.push_str(&format!("{v}"));
            }
            out
        }
        Response::Stats {
            tenants,
            artifact_builds,
        } => {
            let mut out = format!(
                "ok stats builds={artifact_builds} tenants={}",
                tenants.len()
            );
            for t in tenants {
                out.push_str(&format!(
                    " | {} spent={} remaining={} fits={} estimates={}",
                    t.id, t.spent, t.remaining, t.fits, t.estimates
                ));
            }
            out
        }
    })
}

fn bad(what: &str) -> EngineError {
    EngineError::BadRequest {
        what: what.to_string(),
    }
}

/// First positional token is the tenant id; the rest are arguments.
fn split_id<'a>(rest: &[&'a str], command: &str) -> Result<(&'a str, Vec<&'a str>), EngineError> {
    match rest.split_first() {
        Some((id, args)) if !id.contains('=') => Ok((id, args.to_vec())),
        _ => Err(bad(&format!("{command} needs a tenant id"))),
    }
}

/// Looks up `key=` in the argument tokens.
fn arg<'a>(args: &[&'a str], key: &str) -> Option<&'a str> {
    args.iter()
        .find_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

fn parse_task(token: &str) -> Result<Task, EngineError> {
    match token {
        "hist" | "histogram" => Ok(Task::Histogram),
        "range1d" => Ok(Task::Range1d),
        "range2d" => Ok(Task::Range2d),
        other => Err(bad(&format!("unknown task {other}"))),
    }
}

fn parse_tenant(rest: &[&str]) -> Result<TenantConfig, EngineError> {
    let (id, args) = split_id(rest, "tenant")?;
    let policy = arg(&args, "policy").ok_or_else(|| bad("tenant needs policy=<spec>"))?;
    let graph = parse_policy(policy)?;
    let eps = parse_epsilon(arg(&args, "eps").ok_or_else(|| bad("tenant needs eps=<ε>"))?)?;
    let budget =
        parse_epsilon(arg(&args, "budget").ok_or_else(|| bad("tenant needs budget=<ε>"))?)?;
    let data = parse_data(
        graph.domain(),
        arg(&args, "data").ok_or_else(|| bad("tenant needs data=<v,v,…|uniform:<v>>"))?,
    )?;
    Ok(TenantConfig {
        id: id.to_string(),
        graph,
        eps,
        budget,
        data,
    })
}

fn parse_epsilon(token: &str) -> Result<Epsilon, EngineError> {
    let value: f64 = token
        .parse()
        .map_err(|_| bad(&format!("bad ε value {token}")))?;
    Ok(Epsilon::new(value)?)
}

/// Untrusted-input caps for wire-constructed policies: one request line
/// must not be able to allocate an unbounded graph and take the server
/// down (`complete:<k>` alone is k(k−1)/2 edges; a θ-grid enumerates
/// O(k²θ²) edge candidates). `MAX_WIRE_K`/`MAX_WIRE_THETA` bound the raw
/// parameters; `MAX_WIRE_EDGES` bounds a cheap per-family upper estimate
/// of the edge count before anything is built. Generous for every
/// workload in the paper, far below allocation-failure territory.
const MAX_WIRE_K: usize = 4096;
const MAX_WIRE_THETA: usize = 64;
const MAX_WIRE_EDGES: usize = 1 << 22;

fn parse_policy(token: &str) -> Result<PolicyGraph, EngineError> {
    let parts: Vec<&str> = token.split(':').collect();
    let num = |s: &str, cap: usize, what: &str| -> Result<usize, EngineError> {
        let n: usize = s
            .parse()
            .map_err(|_| bad(&format!("bad number {s} in policy {token}")))?;
        if n > cap {
            return Err(bad(&format!(
                "{what} {n} exceeds the wire limit {cap} in policy {token}"
            )));
        }
        Ok(n)
    };
    let k = |s| num(s, MAX_WIRE_K, "domain size");
    let theta = |s| num(s, MAX_WIRE_THETA, "θ");
    // Upper estimate of |E| for a family, saturating; rejected before any
    // graph memory is allocated.
    let fits = |edges: usize| -> Result<(), EngineError> {
        if edges > MAX_WIRE_EDGES {
            return Err(bad(&format!(
                "policy {token} would build ~{edges} edges (wire limit {MAX_WIRE_EDGES})"
            )));
        }
        Ok(())
    };
    let graph = match parts.as_slice() {
        ["line", n] => PolicyGraph::line(k(n)?),
        ["theta-line", n, t] => {
            let (k, t) = (k(n)?, theta(t)?);
            fits(k.saturating_mul(t))?;
            PolicyGraph::theta_line(k, t)
        }
        ["grid", n] => {
            let k = k(n)?;
            fits(k.saturating_mul(k).saturating_mul(2))?;
            PolicyGraph::distance_threshold(Domain::square(k), 1)
        }
        ["theta-grid", n, t] => {
            let (k, t) = (k(n)?, theta(t)?);
            // Per cell, canonical offsets with |δ|₁ ≤ θ number ≤ 2θ(θ+1).
            fits(k.saturating_mul(k).saturating_mul(2 * t * (t + 1)))?;
            PolicyGraph::distance_threshold(Domain::square(k), t)
        }
        ["star", n] => PolicyGraph::star(k(n)?),
        ["complete", n] => {
            let k = k(n)?;
            fits(k.saturating_mul(k.saturating_sub(1)) / 2)?;
            PolicyGraph::complete(k)
        }
        _ => return Err(bad(&format!("unknown policy spec {token}"))),
    };
    Ok(graph?)
}

fn parse_data(domain: &Domain, token: &str) -> Result<DataVector, EngineError> {
    let counts: Vec<f64> = if let Some(v) = token.strip_prefix("uniform:") {
        let fill: f64 = v
            .parse()
            .map_err(|_| bad(&format!("bad uniform fill {v}")))?;
        vec![fill; domain.size()]
    } else {
        token
            .split(',')
            .map(|s| s.parse().map_err(|_| bad(&format!("bad data value {s}"))))
            .collect::<Result<Vec<f64>, EngineError>>()?
    };
    Ok(DataVector::new(domain.clone(), counts)?)
}

/// Parses `lo..hi` (1-D) or `lo..hix lo..hi` dims joined with `x` into a
/// validated range query over `domain`.
fn parse_range(domain: &Domain, token: &str) -> Result<RangeQuery, EngineError> {
    let mut lo = Vec::new();
    let mut hi = Vec::new();
    for dim in token.split('x') {
        let (a, b) = dim
            .split_once("..")
            .ok_or_else(|| bad(&format!("bad range {token} (want lo..hi)")))?;
        lo.push(
            a.parse()
                .map_err(|_| bad(&format!("bad range bound {a}")))?,
        );
        hi.push(
            b.parse()
                .map_err(|_| bad(&format!("bad range bound {b}")))?,
        );
    }
    Ok(RangeQuery::new(domain, lo, hi)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(service: &Service, line: &str) -> String {
        match handle_line(service, line) {
            WireReply::Reply(r) => {
                assert!(r.starts_with("ok "), "expected ok for {line:?}, got {r}");
                r
            }
            other => panic!("expected reply for {line:?}, got {other:?}"),
        }
    }

    fn err(service: &Service, line: &str) -> String {
        match handle_line(service, line) {
            WireReply::Reply(r) => {
                assert!(r.starts_with("err "), "expected err for {line:?}, got {r}");
                r
            }
            other => panic!("expected reply for {line:?}, got {other:?}"),
        }
    }

    #[test]
    fn full_session_over_the_wire() {
        let service = Service::new();
        ok(
            &service,
            "tenant acme policy=line:16 eps=0.5 budget=2.0 data=uniform:3",
        );
        let plan = ok(&service, "plan acme task=range1d");
        assert_eq!(plan, "ok plan line-laplace-consistent");
        let fit = ok(&service, "fit acme as=r1 seed=7 task=range1d");
        assert!(fit.starts_with("ok fit r1 charged=0.5"), "{fit}");
        let answer = ok(&service, "answer acme from=r1 0..15 3..9");
        assert!(answer.starts_with("ok answer 2 "), "{answer}");
        let stats = ok(&service, "stats acme");
        assert!(stats.contains("acme spent=0.5"), "{stats}");
        // Explicit mechanism id path (a baseline charges ε/2).
        let fit2 = ok(&service, "fit acme as=r2 mech=dp-laplace seed=1");
        assert!(fit2.contains("charged=0.25"), "{fit2}");
    }

    #[test]
    fn two_dimensional_ranges_parse() {
        let service = Service::new();
        ok(
            &service,
            "tenant geo policy=grid:8 eps=0.5 budget=4.0 data=uniform:1",
        );
        ok(&service, "fit geo as=g1 seed=3 task=range2d");
        let answer = ok(&service, "answer geo from=g1 0..7x0..7 1..3x2..5");
        assert!(answer.starts_with("ok answer 2 "), "{answer}");
    }

    #[test]
    fn malformed_lines_become_err_replies() {
        let service = Service::new();
        err(&service, "frobnicate");
        err(&service, "tenant");
        err(
            &service,
            "tenant acme policy=klein-bottle:4 eps=1 budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant acme policy=line:4 eps=zero budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant acme policy=line:4 eps=0.5 budget=1 data=1,2,3",
        );
        ok(
            &service,
            "tenant acme policy=line:4 eps=0.5 budget=1 data=1,2,3,4",
        );
        err(&service, "plan ghost");
        err(&service, "fit acme seed=1");
        // An unseeded fit is rejected — seed 0 must never be implied.
        err(&service, "fit acme as=h");
        err(&service, "answer acme from=nope 0..3");
        ok(&service, "fit acme as=h seed=1");
        err(&service, "answer acme from=h");
        err(&service, "answer acme from=h 3..1");
        err(&service, "answer acme from=h 0..99");
        // Budget exhaustion surfaces the typed core error's message.
        ok(&service, "fit acme as=h2 seed=2");
        let e = err(&service, "fit acme as=h3 seed=3");
        assert!(e.contains("budget exhausted"), "{e}");
    }

    #[test]
    fn oversized_policies_are_rejected_before_allocation() {
        // One request line must not be able to OOM the server.
        let service = Service::new();
        err(
            &service,
            "tenant a policy=complete:200000 eps=1 budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant a policy=line:999999999 eps=1 budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant a policy=theta-grid:4096:64 eps=1 budget=1 data=uniform:0",
        );
        err(
            &service,
            "tenant a policy=theta-line:4096:9999 eps=1 budget=1 data=uniform:0",
        );
        // In-cap requests still work.
        ok(
            &service,
            "tenant a policy=complete:64 eps=1 budget=1 data=uniform:0",
        );
    }

    #[test]
    fn blank_comment_and_quit_lines() {
        let service = Service::new();
        assert_eq!(handle_line(&service, ""), WireReply::Silent);
        assert_eq!(handle_line(&service, "  # a comment"), WireReply::Silent);
        assert_eq!(handle_line(&service, "quit"), WireReply::Quit);
        assert!(matches!(
            handle_line(&service, "help"),
            WireReply::Reply(r) if r.starts_with("ok help")
        ));
    }
}
