//! The plan cache: per-policy artifacts derived once, served many times.
//!
//! Every policy-aware strategy leans on artifacts that are pure functions
//! of `(domain, policy)` — the incidence matrix `P_G`, the `H^θ` spanners
//! with their certified stretch, Haar wavelet plans, matrix-mechanism
//! pseudoinverses `A⁺`. Before the engine existed each invocation
//! re-derived them; a [`PlanCache`] materializes each artifact exactly
//! once and hands out `Arc` clones across fits, trials, and mechanisms.
//!
//! Build counts are tracked in [`PlanStats`] so callers (tests, the
//! `engine` criterion bench) can *prove* the cache is not silently
//! re-deriving artifacts on the hot path.
//!
//! ## Concurrency
//!
//! The cache is **lock-striped**: every artifact class is a set of
//! independent mutex-guarded shards, and a key hashes to exactly one
//! shard. Concurrent planners working on *different* artifacts proceed in
//! parallel (they almost always land on different stripes), while racing
//! requests for the *same* key serialize on one stripe and still derive
//! the artifact exactly once — the build runs under the stripe lock, so
//! [`PlanStats`] counters are exact even under contention. Incidence
//! matrices are keyed by [`PolicyGraph::structural_hash`] with a
//! collision-checked structural-equality fallback (the old
//! implementation linearly scanned a single `Mutex<Vec>`, serializing
//! every planner through one lock and one O(n) walk).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use blowfish_core::{Epsilon, Incidence, PolicyGraph};
use blowfish_mechanisms::{
    GramSolver, MatrixMechanism, MechanismError, PinvApply, SparseMatrixMechanism,
};
use blowfish_strategies::{GridPlans, ThetaGridStrategy, ThetaLineStrategy};
use rand::Rng;

use crate::EngineError;

/// Monotone counters of how many times each artifact class was actually
/// derived (not served from cache).
#[derive(Debug, Default)]
pub struct PlanStats {
    incidence: AtomicUsize,
    theta_line: AtomicUsize,
    theta_grid: AtomicUsize,
    haar: AtomicUsize,
    pseudoinverse: AtomicUsize,
    sparse_solver: AtomicUsize,
    sparse_factorization: AtomicUsize,
    cg_fallback: AtomicUsize,
}

impl PlanStats {
    /// Incidence matrices (`P_G`) built.
    pub fn incidence_builds(&self) -> usize {
        self.incidence.load(Ordering::Relaxed)
    }

    /// θ-line strategies (spanner + incidence + group Haar plans) built.
    pub fn theta_line_builds(&self) -> usize {
        self.theta_line.load(Ordering::Relaxed)
    }

    /// θ-grid strategies (block geometry + certified stretch) built.
    pub fn theta_grid_builds(&self) -> usize {
        self.theta_grid.load(Ordering::Relaxed)
    }

    /// Grid Haar plan pairs built.
    pub fn haar_plan_builds(&self) -> usize {
        self.haar.load(Ordering::Relaxed)
    }

    /// Matrix-mechanism pseudoinverses (`A⁺`) materialized dense.
    pub fn pseudoinverse_builds(&self) -> usize {
        self.pseudoinverse.load(Ordering::Relaxed)
    }

    /// CSR matrix mechanisms (CG-applied `A⁺`) built — the large-k path.
    /// Together with [`PlanStats::pseudoinverse_builds`] this exposes the
    /// sparse-vs-dense planning split.
    pub fn sparse_matrix_builds(&self) -> usize {
        self.sparse_solver.load(Ordering::Relaxed)
    }

    /// Shared gram solvers that planned a cached sparse Cholesky factor
    /// — the factor-once events. Each one turns every subsequent release
    /// over that strategy into two O(nnz(L)) triangular solves.
    pub fn sparse_factorizations(&self) -> usize {
        self.sparse_factorization.load(Ordering::Relaxed)
    }

    /// Shared gram solvers whose budget cascade declined to factor and
    /// fell back to (IC(0)- or Jacobi-preconditioned) CG. A nonzero
    /// count is not an error — it is the typed no-regression path.
    pub fn cg_fallbacks(&self) -> usize {
        self.cg_fallback.load(Ordering::Relaxed)
    }

    /// Total artifact derivations across all classes. Gram-solver plans
    /// are not added separately: each is part of exactly one sparse
    /// mechanism build (or shared by several).
    pub fn total_builds(&self) -> usize {
        self.incidence_builds()
            + self.theta_line_builds()
            + self.theta_grid_builds()
            + self.haar_plan_builds()
            + self.pseudoinverse_builds()
            + self.sparse_matrix_builds()
    }
}

/// A point-in-time aggregate of runtime solver activity across every
/// planned sparse mechanism in a cache, plus the plan-time factorization
/// split — what the `stats` wire verb reports so a live server shows
/// which apply path releases are taking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Normal-equation solves served (releases + error reports).
    pub solves: usize,
    /// Total CG iterations across those solves (0 on factored paths).
    pub cg_iterations: usize,
    /// Cached sparse Cholesky factorizations planned.
    pub sparse_factorizations: usize,
    /// Gram solvers that fell back to preconditioned CG.
    pub cg_fallbacks: usize,
}

/// Domain size above which [`MatrixPathMode::Auto`] routes matrix
/// mechanisms through the CSR + CG path. Below it the dense path's
/// precomputed `W A⁺` wins (O(q·p) per release, no per-release solve);
/// above it the dense k×k objects dominate build time and memory while
/// the sparse strategies stay O(k log k) — k=512 is where PR 3's bench
/// trajectory shows dense planning costs turning superlinear.
pub const SPARSE_DOMAIN_THRESHOLD: usize = 512;

/// Which matrix-mechanism implementation the plan cache hands out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatrixPathMode {
    /// Pick by domain size: sparse above [`SPARSE_DOMAIN_THRESHOLD`].
    #[default]
    Auto,
    /// Always materialize the dense pseudoinverse (the proptest-pinned
    /// reference path).
    ForceDense,
    /// Always use CSR strategies with CG-applied `A⁺` (what the
    /// large-domain simulator scenario exercises at every k).
    ForceSparse,
}

impl MatrixPathMode {
    /// Whether a mechanism over `k` domain cells takes the sparse path.
    pub fn picks_sparse(self, k: usize) -> bool {
        match self {
            MatrixPathMode::Auto => k > SPARSE_DOMAIN_THRESHOLD,
            MatrixPathMode::ForceDense => false,
            MatrixPathMode::ForceSparse => true,
        }
    }
}

/// A planned matrix mechanism from either path, presenting the uniform
/// surface `Session` serves releases through.
#[derive(Clone, Debug)]
pub enum PlannedMatrix {
    /// Dense workload/strategy with a materialized `W A⁺`.
    Dense(Arc<MatrixMechanism>),
    /// CSR workload/strategy; `A⁺` applied per release by CG.
    Sparse(Arc<SparseMatrixMechanism>),
}

impl PlannedMatrix {
    /// How this plan applies `A⁺` (the `PinvMethod`-style report).
    pub fn apply_method(&self) -> PinvApply {
        match self {
            PlannedMatrix::Dense(m) => m.apply_method(),
            PlannedMatrix::Sparse(m) => m.apply_method(),
        }
    }

    /// Whether the sparse path was chosen.
    pub fn is_sparse(&self) -> bool {
        matches!(self, PlannedMatrix::Sparse(_))
    }

    /// The strategy sensitivity `Δ_A`.
    pub fn delta_a(&self) -> f64 {
        match self {
            PlannedMatrix::Dense(m) => m.delta_a(),
            PlannedMatrix::Sparse(m) => m.delta_a(),
        }
    }

    /// Runs the mechanism: `Wx + W A⁺ Lap(Δ_A/ε)^p`. Both paths draw the
    /// same number of Laplace samples in the same order, so equal seeds
    /// give releases equal to solver tolerance.
    pub fn run<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, MechanismError> {
        match self {
            PlannedMatrix::Dense(m) => m.run(x, eps, rng),
            PlannedMatrix::Sparse(m) => m.run(x, eps, rng),
        }
    }

    /// Draws only the reconstructed noise vector.
    pub fn noise_only<R: Rng + ?Sized>(
        &self,
        eps: Epsilon,
        rng: &mut R,
    ) -> Result<Vec<f64>, MechanismError> {
        match self {
            PlannedMatrix::Dense(m) => m.noise_only(eps, rng),
            PlannedMatrix::Sparse(m) => m.noise_only(eps, rng),
        }
    }
}

/// Number of independent mutex shards per artifact class. Small powers of
/// two beyond the bench container's core count buy nothing; 16 keeps the
/// struct compact while making same-stripe collisions between *distinct*
/// hot keys rare.
const STRIPES: usize = 16;

/// A lock-striped hash map: a key hashes to one of [`STRIPES`] independent
/// `Mutex<HashMap>` shards. Builds run **under the stripe lock**, so a
/// cold key is derived exactly once no matter how many threads race it,
/// while keys on different stripes build fully in parallel.
#[derive(Debug)]
struct Striped<K, V> {
    stripes: Vec<Mutex<HashMap<K, V>>>,
}

impl<K, V> Default for Striped<K, V> {
    fn default() -> Self {
        Striped {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }
}

impl<K: Eq + Hash, V: Clone> Striped<K, V> {
    fn stripe(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.stripes[(h.finish() as usize) % STRIPES]
    }

    /// Returns the cached value for `key`, or builds, counts, and caches
    /// it. The build runs under the stripe lock (exactly-once semantics);
    /// `counter` is bumped only on an actual derivation.
    fn get_or_build<E>(
        &self,
        key: K,
        counter: &AtomicUsize,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        let mut map = self.stripe(&key).lock().expect("plan cache stripe lock");
        if let Some(v) = map.get(&key) {
            return Ok(v.clone());
        }
        let v = build()?;
        counter.fetch_add(1, Ordering::Relaxed);
        map.insert(key, v.clone());
        Ok(v)
    }
}

/// Whether two policy graphs are structurally identical — same domain
/// shape and same canonical edge list. The display name is deliberately
/// ignored: `Incidence` is a pure function of `(domain, edges)`, so
/// structurally equal graphs may soundly share one `P_G`.
fn structurally_equal(a: &PolicyGraph, b: &PolicyGraph) -> bool {
    a.domain() == b.domain() && a.edges() == b.edges()
}

/// Shared, thread-safe store of precomputed strategy artifacts. One cache
/// may serve many sessions (the `Service` layer hands every tenant the
/// same `Arc<PlanCache>`): keys are policy-parameterized, so tenants with
/// the same `(domain, policy)` share artifacts and tenants with different
/// policies never collide.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// Incidences keyed by [`PolicyGraph::structural_hash`]; each bucket
    /// holds the graphs that hashed there, compared structurally
    /// (collision-checked equality fallback).
    incidence: Striped<u64, Vec<(PolicyGraph, Arc<Incidence>)>>,
    theta_line: Striped<(usize, usize), Arc<ThetaLineStrategy>>,
    theta_grid: Striped<(usize, usize), Arc<ThetaGridStrategy>>,
    grid_plans: Striped<(usize, usize), GridPlans>,
    matrix: Striped<String, Arc<MatrixMechanism>>,
    sparse_matrix: Striped<String, Arc<SparseMatrixMechanism>>,
    /// Shared normal-equation solvers keyed per strategy (not per
    /// workload), so every workload over one strategy — the W = I
    /// histogram and the W ≠ I range mechanism alike — pays for at most
    /// one factorization.
    gram_solvers: Striped<String, Arc<GramSolver>>,
    /// Encoded [`MatrixPathMode`] (0 = Auto, 1 = ForceDense,
    /// 2 = ForceSparse); atomic so services can flip it at runtime.
    matrix_mode: AtomicU8,
    stats: PlanStats,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The artifact build counters.
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// The incidence matrix `P_G` of `graph`, derived at most once per
    /// structurally distinct graph: lookup is by canonical structural
    /// hash, with an equality walk over the (almost always singleton)
    /// collision bucket.
    pub fn incidence(&self, graph: &PolicyGraph) -> Result<Arc<Incidence>, EngineError> {
        let key = graph.structural_hash();
        let mut map = self
            .incidence
            .stripe(&key)
            .lock()
            .expect("plan cache stripe lock");
        let bucket = map.entry(key).or_default();
        if let Some((_, inc)) = bucket.iter().find(|(g, _)| structurally_equal(g, graph)) {
            return Ok(Arc::clone(inc));
        }
        let inc = Arc::new(Incidence::new(graph)?);
        self.stats.incidence.fetch_add(1, Ordering::Relaxed);
        bucket.push((graph.clone(), Arc::clone(&inc)));
        Ok(inc)
    }

    /// Stores an incidence that was already derived elsewhere (e.g. while
    /// classifying the policy graph), counting the derivation, so the
    /// first mechanism build does not repeat it.
    pub(crate) fn seed_incidence(&self, graph: &PolicyGraph, inc: Arc<Incidence>) {
        let key = graph.structural_hash();
        let mut map = self
            .incidence
            .stripe(&key)
            .lock()
            .expect("plan cache stripe lock");
        let bucket = map.entry(key).or_default();
        if bucket.iter().any(|(g, _)| structurally_equal(g, graph)) {
            return;
        }
        self.stats.incidence.fetch_add(1, Ordering::Relaxed);
        bucket.push((graph.clone(), inc));
    }

    /// The prepared `G^θ_k` strategy (spanner, incidence, group Haar
    /// plans), derived at most once per `(k, θ)`.
    pub fn theta_line_strategy(
        &self,
        k: usize,
        theta: usize,
    ) -> Result<Arc<ThetaLineStrategy>, EngineError> {
        self.theta_line
            .get_or_build((k, theta), &self.stats.theta_line, || {
                Ok(Arc::new(ThetaLineStrategy::new(k, theta)?))
            })
    }

    /// The prepared `G^θ_{k²}` strategy, derived at most once per
    /// `(k, θ)`.
    pub fn theta_grid_strategy(
        &self,
        k: usize,
        theta: usize,
    ) -> Result<Arc<ThetaGridStrategy>, EngineError> {
        self.theta_grid
            .get_or_build((k, theta), &self.stats.theta_grid, || {
                Ok(Arc::new(ThetaGridStrategy::new(k, theta)?))
            })
    }

    /// The Haar plan pair for a `rows × cols` grid strategy, derived at
    /// most once per shape.
    pub fn grid_plans(&self, rows: usize, cols: usize) -> Result<GridPlans, EngineError> {
        self.grid_plans
            .get_or_build((rows, cols), &self.stats.haar, || {
                Ok(GridPlans::new(rows, cols)?)
            })
    }

    /// A prepared matrix mechanism (workload, strategy, pseudoinverse
    /// `A⁺`) under a caller-chosen key, derived at most once per key.
    pub fn matrix_mechanism<F>(
        &self,
        key: &str,
        build: F,
    ) -> Result<Arc<MatrixMechanism>, EngineError>
    where
        F: FnOnce() -> Result<MatrixMechanism, MechanismError>,
    {
        self.matrix
            .get_or_build(key.to_string(), &self.stats.pseudoinverse, || {
                Ok(Arc::new(build()?))
            })
    }

    /// A prepared CSR matrix mechanism (CG-applied `A⁺`) under a
    /// caller-chosen key, derived at most once per key.
    pub fn sparse_matrix_mechanism<F>(
        &self,
        key: &str,
        build: F,
    ) -> Result<Arc<SparseMatrixMechanism>, EngineError>
    where
        F: FnOnce() -> Result<SparseMatrixMechanism, MechanismError>,
    {
        self.sparse_matrix
            .get_or_build(key.to_string(), &self.stats.sparse_solver, || {
                Ok(Arc::new(build()?))
            })
    }

    /// The shared gram solver for one strategy, planned at most once per
    /// key. The build is counted under
    /// [`PlanStats::sparse_factorizations`] when the budget cascade kept
    /// a Cholesky factor and under [`PlanStats::cg_fallbacks`] when it
    /// downgraded to preconditioned CG.
    pub fn gram_solver<F>(&self, key: &str, build: F) -> Arc<GramSolver>
    where
        F: FnOnce() -> GramSolver,
    {
        let key = key.to_string();
        let mut map = self
            .gram_solvers
            .stripe(&key)
            .lock()
            .expect("plan cache stripe lock");
        if let Some(v) = map.get(&key) {
            return Arc::clone(v);
        }
        let solver = Arc::new(build());
        if solver.is_factored() {
            self.stats
                .sparse_factorization
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.cg_fallback.fetch_add(1, Ordering::Relaxed);
        }
        map.insert(key, Arc::clone(&solver));
        solver
    }

    /// Aggregates runtime solver counters across every planned sparse
    /// mechanism (walking all stripes) together with the plan-time
    /// factorization split.
    pub fn solver_stats(&self) -> SolverStats {
        let mut agg = SolverStats {
            sparse_factorizations: self.stats.sparse_factorizations(),
            cg_fallbacks: self.stats.cg_fallbacks(),
            ..SolverStats::default()
        };
        for stripe in &self.sparse_matrix.stripes {
            for m in stripe.lock().expect("plan cache stripe lock").values() {
                agg.solves += m.solve_count();
                agg.cg_iterations += m.cg_iterations();
            }
        }
        agg
    }

    /// The current matrix-mechanism path policy.
    pub fn matrix_mode(&self) -> MatrixPathMode {
        match self.matrix_mode.load(Ordering::Relaxed) {
            1 => MatrixPathMode::ForceDense,
            2 => MatrixPathMode::ForceSparse,
            _ => MatrixPathMode::Auto,
        }
    }

    /// Sets the matrix-mechanism path policy. Affects only *future* cold
    /// builds; already-cached plans keep serving (the two paths cache
    /// under separate stripes, so flipping the mode never aliases them).
    pub fn set_matrix_mode(&self, mode: MatrixPathMode) {
        let code = match mode {
            MatrixPathMode::Auto => 0,
            MatrixPathMode::ForceDense => 1,
            MatrixPathMode::ForceSparse => 2,
        };
        self.matrix_mode.store(code, Ordering::Relaxed);
    }

    /// A planned matrix mechanism over `domain_size` cells, routed dense
    /// or sparse by the cache's [`MatrixPathMode`] and derived at most
    /// once per `(path, key)`. `PlanStats` counts the build under
    /// `pseudoinverse_builds` (dense) or `sparse_matrix_builds` (sparse),
    /// so tests and benches can prove which path planned.
    pub fn planned_matrix<FD, FS>(
        &self,
        key: &str,
        domain_size: usize,
        build_dense: FD,
        build_sparse: FS,
    ) -> Result<PlannedMatrix, EngineError>
    where
        FD: FnOnce() -> Result<MatrixMechanism, MechanismError>,
        FS: FnOnce() -> Result<SparseMatrixMechanism, MechanismError>,
    {
        if self.matrix_mode().picks_sparse(domain_size) {
            Ok(PlannedMatrix::Sparse(
                self.sparse_matrix_mechanism(key, build_sparse)?,
            ))
        } else {
            Ok(PlannedMatrix::Dense(
                self.matrix_mechanism(key, build_dense)?,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_linalg::Matrix;
    use blowfish_mechanisms::identity_strategy;

    #[test]
    fn artifacts_are_derived_once() {
        let cache = PlanCache::new();
        let g = PolicyGraph::line(16).unwrap();
        for _ in 0..5 {
            cache.incidence(&g).unwrap();
            cache.theta_line_strategy(64, 4).unwrap();
            cache.theta_grid_strategy(8, 4).unwrap();
            cache.grid_plans(8, 8).unwrap();
        }
        assert_eq!(cache.stats().incidence_builds(), 1);
        assert_eq!(cache.stats().theta_line_builds(), 1);
        assert_eq!(cache.stats().theta_grid_builds(), 1);
        assert_eq!(cache.stats().haar_plan_builds(), 1);
        // A different (k, θ) is a distinct artifact.
        cache.theta_line_strategy(64, 8).unwrap();
        assert_eq!(cache.stats().theta_line_builds(), 2);
        assert_eq!(cache.stats().total_builds(), 5);
    }

    #[test]
    fn incidence_is_keyed_by_graph() {
        // Asking for a different policy graph must not serve the first
        // graph's incidence (that would be privacy-unsound).
        let cache = PlanCache::new();
        let line = PolicyGraph::line(8).unwrap();
        let star = PolicyGraph::star(8).unwrap();
        let a = cache.incidence(&line).unwrap();
        let b = cache.incidence(&star).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.num_edges(), 7);
        assert_eq!(b.num_edges(), 8);
        assert_eq!(cache.stats().incidence_builds(), 2);
        // Seeding an already-derived incidence is idempotent per graph.
        cache.seed_incidence(&line, Arc::clone(&a));
        assert_eq!(cache.stats().incidence_builds(), 2);
    }

    #[test]
    fn pseudoinverse_cached_by_key() {
        let cache = PlanCache::new();
        let build = || MatrixMechanism::new(Matrix::identity(4), identity_strategy(4));
        let a = cache.matrix_mechanism("identity/4", build).unwrap();
        let b = cache.matrix_mechanism("identity/4", build).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().pseudoinverse_builds(), 1);
    }

    #[test]
    fn matrix_mode_picks_path_by_threshold() {
        assert!(!MatrixPathMode::Auto.picks_sparse(SPARSE_DOMAIN_THRESHOLD));
        assert!(MatrixPathMode::Auto.picks_sparse(SPARSE_DOMAIN_THRESHOLD + 1));
        assert!(!MatrixPathMode::ForceDense.picks_sparse(1 << 20));
        assert!(MatrixPathMode::ForceSparse.picks_sparse(2));
    }

    #[test]
    fn planned_matrix_routes_and_counts_by_mode() {
        use blowfish_linalg::SparseMatrix;
        use blowfish_mechanisms::{identity_strategy_sparse, SparseMatrixMechanism};
        let cache = PlanCache::new();
        assert_eq!(cache.matrix_mode(), MatrixPathMode::Auto);
        let dense_build = || MatrixMechanism::new(Matrix::identity(8), identity_strategy(8));
        let sparse_build =
            || SparseMatrixMechanism::new(SparseMatrix::identity(8), identity_strategy_sparse(8));
        // k=8 under Auto: dense.
        let p = cache
            .planned_matrix("identity/8", 8, dense_build, sparse_build)
            .unwrap();
        assert!(!p.is_sparse());
        assert!(matches!(p.apply_method(), PinvApply::Materialized(_)));
        assert_eq!(cache.stats().pseudoinverse_builds(), 1);
        assert_eq!(cache.stats().sparse_matrix_builds(), 0);
        // Forced sparse: same key lands in the sparse stripe, counted there.
        cache.set_matrix_mode(MatrixPathMode::ForceSparse);
        let p = cache
            .planned_matrix("identity/8", 8, dense_build, sparse_build)
            .unwrap();
        assert!(p.is_sparse());
        // The identity Gram is trivially within the factor budgets.
        assert_eq!(p.apply_method(), PinvApply::Factored);
        assert_eq!(p.delta_a(), 1.0);
        assert_eq!(cache.stats().pseudoinverse_builds(), 1);
        assert_eq!(cache.stats().sparse_matrix_builds(), 1);
        // Cached: a repeat build does not re-derive.
        cache
            .planned_matrix("identity/8", 8, dense_build, sparse_build)
            .unwrap();
        assert_eq!(cache.stats().sparse_matrix_builds(), 1);
        // Both paths noise identically from equal seeds (identity W/A:
        // the solve is exact).
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let eps = Epsilon::new(1.0).unwrap();
        cache.set_matrix_mode(MatrixPathMode::ForceDense);
        let d = cache
            .planned_matrix("identity/8", 8, dense_build, sparse_build)
            .unwrap();
        let nd = d.noise_only(eps, &mut StdRng::seed_from_u64(3)).unwrap();
        let ns = p.noise_only(eps, &mut StdRng::seed_from_u64(3)).unwrap();
        for (a, b) in nd.iter().zip(&ns) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn gram_solvers_are_shared_and_counted_by_outcome() {
        use blowfish_linalg::CgOptions;
        use blowfish_mechanisms::{hierarchical_strategy_sparse, GramSolver};
        let cache = PlanCache::new();
        let opts = CgOptions {
            tol: 1e-12,
            max_iter: 0,
        };
        let strategy = hierarchical_strategy_sparse(64);
        let a = cache.gram_solver("gram/hierarchical/64", || GramSolver::plan(&strategy, opts));
        let b = cache.gram_solver("gram/hierarchical/64", || GramSolver::plan(&strategy, opts));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.is_factored());
        assert_eq!(cache.stats().sparse_factorizations(), 1);
        assert_eq!(cache.stats().cg_fallbacks(), 0);
        // A solver that declines to factor is counted as a CG fallback.
        let c = cache.gram_solver("gram/forced-cg/64", || GramSolver::plan_cg(&strategy, opts));
        assert!(!c.is_factored());
        assert_eq!(cache.stats().cg_fallbacks(), 1);
        // Runtime aggregation sees the factorization split.
        let stats = cache.solver_stats();
        assert_eq!(stats.sparse_factorizations, 1);
        assert_eq!(stats.cg_fallbacks, 1);
        assert_eq!(stats.solves, 0);
    }

    #[test]
    fn shared_strategy_instances() {
        let cache = PlanCache::new();
        let a = cache.theta_line_strategy(32, 4).unwrap();
        let b = cache.theta_line_strategy(32, 4).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn incidence_keying_is_structural_not_nominal() {
        // A renamed but structurally identical graph must hit the same
        // cache slot — Incidence is a pure function of (domain, edges).
        let cache = PlanCache::new();
        let line = PolicyGraph::line(8).unwrap();
        let renamed =
            PolicyGraph::from_edges(line.domain().clone(), line.edges().to_vec(), "renamed-line")
                .unwrap();
        assert_eq!(line.structural_hash(), renamed.structural_hash());
        let a = cache.incidence(&line).unwrap();
        let b = cache.incidence(&renamed).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().incidence_builds(), 1);
    }

    #[test]
    fn concurrent_hammering_builds_each_artifact_exactly_once() {
        // 8 threads race one shared cache over a mixed artifact set; the
        // stripe locks must resolve every race to exactly one build per
        // distinct artifact, with no deadlock.
        let cache = Arc::new(PlanCache::new());
        let graphs: Vec<PolicyGraph> = vec![
            PolicyGraph::line(16).unwrap(),
            PolicyGraph::star(16).unwrap(),
            PolicyGraph::theta_line(16, 3).unwrap(),
        ];
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let graphs = &graphs;
                scope.spawn(move || {
                    for _ in 0..20 {
                        for g in graphs {
                            cache.incidence(g).unwrap();
                        }
                        cache.theta_line_strategy(64, 2).unwrap();
                        cache.theta_line_strategy(64, 4).unwrap();
                        cache.theta_grid_strategy(8, 2).unwrap();
                        cache.grid_plans(8, 8).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.stats().incidence_builds(), 3);
        assert_eq!(cache.stats().theta_line_builds(), 2);
        assert_eq!(cache.stats().theta_grid_builds(), 1);
        assert_eq!(cache.stats().haar_plan_builds(), 1);
    }
}
