//! The plan cache: per-policy artifacts derived once, served many times.
//!
//! Every policy-aware strategy leans on artifacts that are pure functions
//! of `(domain, policy)` — the incidence matrix `P_G`, the `H^θ` spanners
//! with their certified stretch, Haar wavelet plans, matrix-mechanism
//! pseudoinverses `A⁺`. Before the engine existed each invocation
//! re-derived them; a [`PlanCache`] materializes each artifact exactly
//! once and hands out `Arc` clones across fits, trials, and mechanisms.
//!
//! Build counts are tracked in [`PlanStats`] so callers (tests, the
//! `engine` criterion bench) can *prove* the cache is not silently
//! re-deriving artifacts on the hot path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use blowfish_core::{Incidence, PolicyGraph};
use blowfish_mechanisms::{MatrixMechanism, MechanismError};
use blowfish_strategies::{GridPlans, ThetaGridStrategy, ThetaLineStrategy};

use crate::EngineError;

/// Monotone counters of how many times each artifact class was actually
/// derived (not served from cache).
#[derive(Debug, Default)]
pub struct PlanStats {
    incidence: AtomicUsize,
    theta_line: AtomicUsize,
    theta_grid: AtomicUsize,
    haar: AtomicUsize,
    pseudoinverse: AtomicUsize,
}

impl PlanStats {
    /// Incidence matrices (`P_G`) built.
    pub fn incidence_builds(&self) -> usize {
        self.incidence.load(Ordering::Relaxed)
    }

    /// θ-line strategies (spanner + incidence + group Haar plans) built.
    pub fn theta_line_builds(&self) -> usize {
        self.theta_line.load(Ordering::Relaxed)
    }

    /// θ-grid strategies (block geometry + certified stretch) built.
    pub fn theta_grid_builds(&self) -> usize {
        self.theta_grid.load(Ordering::Relaxed)
    }

    /// Grid Haar plan pairs built.
    pub fn haar_plan_builds(&self) -> usize {
        self.haar.load(Ordering::Relaxed)
    }

    /// Matrix-mechanism pseudoinverses (`A⁺`) built.
    pub fn pseudoinverse_builds(&self) -> usize {
        self.pseudoinverse.load(Ordering::Relaxed)
    }

    /// Total artifact derivations across all classes.
    pub fn total_builds(&self) -> usize {
        self.incidence_builds()
            + self.theta_line_builds()
            + self.theta_grid_builds()
            + self.haar_plan_builds()
            + self.pseudoinverse_builds()
    }
}

/// Shared, thread-safe store of precomputed strategy artifacts for one
/// `(domain, policy)` pair.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// Incidences keyed by their policy graph (linear scan: a cache sees
    /// one, rarely a few, graphs over its lifetime).
    incidence: Mutex<Vec<(PolicyGraph, Arc<Incidence>)>>,
    theta_line: Mutex<HashMap<(usize, usize), Arc<ThetaLineStrategy>>>,
    theta_grid: Mutex<HashMap<(usize, usize), Arc<ThetaGridStrategy>>>,
    grid_plans: Mutex<HashMap<(usize, usize), GridPlans>>,
    matrix: Mutex<HashMap<String, Arc<MatrixMechanism>>>,
    stats: PlanStats,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The artifact build counters.
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// The incidence matrix `P_G` of `graph`, derived at most once per
    /// distinct graph.
    pub fn incidence(&self, graph: &PolicyGraph) -> Result<Arc<Incidence>, EngineError> {
        let mut slots = self.incidence.lock().expect("plan cache lock");
        if let Some((_, inc)) = slots.iter().find(|(g, _)| g == graph) {
            return Ok(Arc::clone(inc));
        }
        let inc = Arc::new(Incidence::new(graph)?);
        self.stats.incidence.fetch_add(1, Ordering::Relaxed);
        slots.push((graph.clone(), Arc::clone(&inc)));
        Ok(inc)
    }

    /// Stores an incidence that was already derived elsewhere (e.g. while
    /// classifying the policy graph), counting the derivation, so the
    /// first mechanism build does not repeat it.
    pub(crate) fn seed_incidence(&self, graph: &PolicyGraph, inc: Arc<Incidence>) {
        let mut slots = self.incidence.lock().expect("plan cache lock");
        if slots.iter().any(|(g, _)| g == graph) {
            return;
        }
        self.stats.incidence.fetch_add(1, Ordering::Relaxed);
        slots.push((graph.clone(), inc));
    }

    /// The prepared `G^θ_k` strategy (spanner, incidence, group Haar
    /// plans), derived at most once per `(k, θ)`.
    pub fn theta_line_strategy(
        &self,
        k: usize,
        theta: usize,
    ) -> Result<Arc<ThetaLineStrategy>, EngineError> {
        let mut map = self.theta_line.lock().expect("plan cache lock");
        if let Some(s) = map.get(&(k, theta)) {
            return Ok(Arc::clone(s));
        }
        let s = Arc::new(ThetaLineStrategy::new(k, theta)?);
        self.stats.theta_line.fetch_add(1, Ordering::Relaxed);
        map.insert((k, theta), Arc::clone(&s));
        Ok(s)
    }

    /// The prepared `G^θ_{k²}` strategy, derived at most once per
    /// `(k, θ)`.
    pub fn theta_grid_strategy(
        &self,
        k: usize,
        theta: usize,
    ) -> Result<Arc<ThetaGridStrategy>, EngineError> {
        let mut map = self.theta_grid.lock().expect("plan cache lock");
        if let Some(s) = map.get(&(k, theta)) {
            return Ok(Arc::clone(s));
        }
        let s = Arc::new(ThetaGridStrategy::new(k, theta)?);
        self.stats.theta_grid.fetch_add(1, Ordering::Relaxed);
        map.insert((k, theta), Arc::clone(&s));
        Ok(s)
    }

    /// The Haar plan pair for a `rows × cols` grid strategy, derived at
    /// most once per shape.
    pub fn grid_plans(&self, rows: usize, cols: usize) -> Result<GridPlans, EngineError> {
        let mut map = self.grid_plans.lock().expect("plan cache lock");
        if let Some(p) = map.get(&(rows, cols)) {
            return Ok(p.clone());
        }
        let p = GridPlans::new(rows, cols)?;
        self.stats.haar.fetch_add(1, Ordering::Relaxed);
        map.insert((rows, cols), p.clone());
        Ok(p)
    }

    /// A prepared matrix mechanism (workload, strategy, pseudoinverse
    /// `A⁺`) under a caller-chosen key, derived at most once per key.
    pub fn matrix_mechanism<F>(
        &self,
        key: &str,
        build: F,
    ) -> Result<Arc<MatrixMechanism>, EngineError>
    where
        F: FnOnce() -> Result<MatrixMechanism, MechanismError>,
    {
        let mut map = self.matrix.lock().expect("plan cache lock");
        if let Some(m) = map.get(key) {
            return Ok(Arc::clone(m));
        }
        let m = Arc::new(build()?);
        self.stats.pseudoinverse.fetch_add(1, Ordering::Relaxed);
        map.insert(key.to_string(), Arc::clone(&m));
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blowfish_linalg::Matrix;
    use blowfish_mechanisms::identity_strategy;

    #[test]
    fn artifacts_are_derived_once() {
        let cache = PlanCache::new();
        let g = PolicyGraph::line(16).unwrap();
        for _ in 0..5 {
            cache.incidence(&g).unwrap();
            cache.theta_line_strategy(64, 4).unwrap();
            cache.theta_grid_strategy(8, 4).unwrap();
            cache.grid_plans(8, 8).unwrap();
        }
        assert_eq!(cache.stats().incidence_builds(), 1);
        assert_eq!(cache.stats().theta_line_builds(), 1);
        assert_eq!(cache.stats().theta_grid_builds(), 1);
        assert_eq!(cache.stats().haar_plan_builds(), 1);
        // A different (k, θ) is a distinct artifact.
        cache.theta_line_strategy(64, 8).unwrap();
        assert_eq!(cache.stats().theta_line_builds(), 2);
        assert_eq!(cache.stats().total_builds(), 5);
    }

    #[test]
    fn incidence_is_keyed_by_graph() {
        // Asking for a different policy graph must not serve the first
        // graph's incidence (that would be privacy-unsound).
        let cache = PlanCache::new();
        let line = PolicyGraph::line(8).unwrap();
        let star = PolicyGraph::star(8).unwrap();
        let a = cache.incidence(&line).unwrap();
        let b = cache.incidence(&star).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.num_edges(), 7);
        assert_eq!(b.num_edges(), 8);
        assert_eq!(cache.stats().incidence_builds(), 2);
        // Seeding an already-derived incidence is idempotent per graph.
        cache.seed_incidence(&line, Arc::clone(&a));
        assert_eq!(cache.stats().incidence_builds(), 2);
    }

    #[test]
    fn pseudoinverse_cached_by_key() {
        let cache = PlanCache::new();
        let build = || MatrixMechanism::new(Matrix::identity(4), identity_strategy(4));
        let a = cache.matrix_mechanism("identity/4", build).unwrap();
        let b = cache.matrix_mechanism("identity/4", build).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().pseudoinverse_builds(), 1);
    }

    #[test]
    fn shared_strategy_instances() {
        let cache = PlanCache::new();
        let a = cache.theta_line_strategy(32, 4).unwrap();
        let b = cache.theta_line_strategy(32, 4).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
