//! Linux readiness primitives for the epoll serving model: thin,
//! std-only wrappers over `epoll_create1`/`epoll_ctl`/`epoll_wait`,
//! `eventfd`, and a raw `socket`/`bind`/`listen` path that honours a
//! configurable backlog — declared via direct `extern "C"` bindings in
//! the same no-crates.io spirit as the workspace `shims/`.
//!
//! The pieces compose into the reactor serving model in
//! [`net`](crate::net):
//!
//! * [`Epoll`] — one readiness set per event loop. Level-triggered
//!   (the default), so a connection with buffered input or pending
//!   output keeps firing until drained — no lost-wakeup edge cases.
//! * [`EventFd`] — the cross-thread doorbell. The acceptor rings it to
//!   hand a freshly accepted connection to an event loop, and
//!   `shutdown` rings it to wake every loop (and the acceptor itself)
//!   out of an otherwise unbounded `epoll_wait`.
//! * [`TimerWheel`] — a lazy hashed wheel for idle timeouts: entries
//!   are *candidates* revalidated against the connection's actual
//!   last-activity instant when their slot fires, so activity never
//!   has to reschedule anything (an idle-heavy server does O(1) timer
//!   work per tick, not per connection).
//! * [`listen_with_backlog`] — `TcpListener::bind` hardcodes a
//!   128-entry listen backlog; serving (and load-testing) thousands of
//!   simultaneous connects needs the backlog to cover the burst, so
//!   the socket is created raw and `listen(2)` gets the real number.
//!
//! Everything here is `target_os = "linux"`-only (gated at the module
//! declaration); the portable `threads` serving model in `net` never
//! touches it.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::{FromRawFd, RawFd};
use std::time::{Duration, Instant};

// Values from the Linux UAPI headers (asm-generic), stable ABI.
/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`; always reported, never registered).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`; always reported, never registered).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;

/// One `struct epoll_event`. Packed on x86-64 (the kernel ABI packs it
/// there so 32-bit and 64-bit userlands share a layout); naturally
/// aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN | …`).
    pub events: u32,
    /// Caller-chosen token identifying the fd (this module uses the fd
    /// value itself).
    pub token: u64,
}

impl EpollEvent {
    /// An empty event, for sizing `epoll_wait` buffers.
    pub fn zeroed() -> EpollEvent {
        EpollEvent {
            events: 0,
            token: 0,
        }
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, value: *const c_void, len: u32) -> c_int;
}

/// Converts a `-1` syscall return into the thread's `errno` error.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll readiness set (`epoll_create1` fd, closed on drop).
///
/// Level-triggered: a registered fd keeps reporting readiness while the
/// condition holds, so handlers may read/write as little as they like
/// per wakeup without risking a lost event.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates an empty readiness set.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, token };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Registers `fd` under `token` for the given readiness bits
    /// (`EPOLLRDHUP` is implied so peer half-closes surface as events).
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events | EPOLLRDHUP, token)
    }

    /// Changes the readiness bits an already registered fd reports.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events | EPOLLRDHUP, token)
    }

    /// Removes an fd from the set (idempotent in practice: a close also
    /// removes it, but an explicit delete keeps the set's size honest
    /// while the `TcpStream` is still alive).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut event = EpollEvent::zeroed();
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut event) })?;
        Ok(())
    }

    /// Blocks until readiness or `timeout` (`None` = unbounded), filling
    /// `events` and returning how many fired. `EINTR` retries instead of
    /// surfacing.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 0.4 ms residue does not busy-spin at 0 ms.
            Some(t) => {
                t.as_millis().min(i32::MAX as u128) as c_int
                    + if t.subsec_nanos() % 1_000_000 != 0 {
                        1
                    } else {
                        0
                    }
            }
        };
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as c_int,
                    timeout_ms,
                )
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A kernel event counter (`eventfd`) used as a wakeup doorbell:
/// [`notify`](EventFd::notify) from any thread makes the owning loop's
/// `epoll_wait` return; [`drain`](EventFd::drain) resets it.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking doorbell at count zero.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for registering with an [`Epoll`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Rings the doorbell (adds 1 to the counter). Never blocks: on the
    /// astronomically unreachable counter overflow the notification is
    /// already pending, which is all a doorbell needs.
    pub fn notify(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Clears pending notifications so level-triggered polling stops
    /// reporting the doorbell as readable.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

#[repr(C)]
struct SockAddrIn6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

/// Binds a TCP listener with an explicit `listen(2)` backlog instead of
/// the 128 entries `TcpListener::bind` hardcodes (the kernel still
/// clamps to `net.core.somaxconn`). `SO_REUSEADDR` is set like std does,
/// so rebinding a recently closed server address works.
pub fn listen_with_backlog(addr: SocketAddr, backlog: usize) -> io::Result<TcpListener> {
    let family = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    let fd = cvt(unsafe { socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    // From here on the raw fd must be closed on any error path.
    let guard = FdGuard { fd };
    let reuse: c_int = 1;
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEADDR,
            (&reuse as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    })?;
    match addr {
        SocketAddr::V4(v4) => {
            let raw = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            cvt(unsafe {
                bind(
                    fd,
                    (&raw as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            })?;
        }
        SocketAddr::V6(v6) => {
            let raw = SockAddrIn6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            cvt(unsafe {
                bind(
                    fd,
                    (&raw as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            })?;
        }
    }
    cvt(unsafe { listen(fd, backlog.min(c_int::MAX as usize) as c_int) })?;
    std::mem::forget(guard);
    // SAFETY: the fd is a freshly created, listening TCP socket owned by
    // nobody else.
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

/// Closes a raw fd when an error path unwinds out of
/// [`listen_with_backlog`].
struct FdGuard {
    fd: RawFd,
}

impl Drop for FdGuard {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A lazy hashed timer wheel for connection idle timeouts.
///
/// Entries are **candidates**, not authoritative deadlines: connection
/// activity never touches the wheel. When a slot fires, the owner
/// revalidates each candidate against the connection's real
/// last-activity instant and either evicts it or
/// [`schedule`](TimerWheel::schedule)s it again for the remaining time.
/// That makes the per-request hot path timer-free and the per-tick work
/// proportional to the slot population, not the connection count.
#[derive(Debug)]
pub struct TimerWheel {
    granularity: Duration,
    slots: Vec<Vec<u64>>,
    cursor: usize,
    next_tick: Instant,
    len: usize,
}

impl TimerWheel {
    /// A wheel whose horizon (`slots × granularity`) must cover the
    /// longest delay ever scheduled; delays beyond it are clamped to the
    /// farthest slot (they fire early and get rescheduled — correct,
    /// just less lazy).
    pub fn new(granularity: Duration, slots: usize, now: Instant) -> TimerWheel {
        TimerWheel {
            granularity: granularity.max(Duration::from_millis(1)),
            slots: vec![Vec::new(); slots.max(2)],
            cursor: 0,
            next_tick: now + granularity,
            len: 0,
        }
    }

    /// Number of scheduled candidates.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no candidates are scheduled (an empty wheel needs no
    /// wakeups at all).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `token` to fire after roughly `delay` (rounded up to
    /// the next slot boundary, clamped to the wheel horizon).
    pub fn schedule(&mut self, token: u64, delay: Duration) {
        let ticks = delay
            .as_nanos()
            .div_ceil(self.granularity.as_nanos().max(1)) as usize;
        let ahead = ticks.clamp(1, self.slots.len() - 1);
        let slot = (self.cursor + ahead) % self.slots.len();
        self.slots[slot].push(token);
        self.len += 1;
    }

    /// How long `epoll_wait` may sleep before the next slot is due:
    /// `None` when the wheel is empty (sleep unboundedly — a doorbell
    /// covers external wakeups).
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.is_empty() {
            None
        } else {
            Some(self.next_tick.saturating_duration_since(now))
        }
    }

    /// Advances the cursor over every slot whose tick has passed,
    /// draining their candidates into `fired`.
    pub fn poll(&mut self, now: Instant, fired: &mut Vec<u64>) {
        while now >= self.next_tick {
            self.cursor = (self.cursor + 1) % self.slots.len();
            let slot = &mut self.slots[self.cursor];
            self.len -= slot.len();
            fired.append(slot);
            self.next_tick += self.granularity;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener as StdListener, TcpStream};

    #[test]
    fn epoll_reports_listener_and_stream_readiness() {
        let listener = StdListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let epoll = Epoll::new().unwrap();
        let lfd = std::os::unix::io::AsRawFd::as_raw_fd(&listener);
        epoll.add(lfd, EPOLLIN, 7).unwrap();

        // Nothing pending: a zero-timeout wait returns no events.
        let mut events = vec![EpollEvent::zeroed(); 8];
        let n = epoll.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);

        // A connect makes the listener readable under token 7.
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let (token, bits) = (events[0].token, events[0].events);
        assert_eq!(token, 7);
        assert_ne!(bits & EPOLLIN, 0);

        // Accepted stream becomes readable once the client writes.
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        let sfd = std::os::unix::io::AsRawFd::as_raw_fd(&stream);
        epoll.add(sfd, EPOLLIN, 9).unwrap();
        client.write_all(b"hi\n").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let n = epoll
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events[..n].iter().any(|e| e.token == 9) {
                break;
            }
            assert!(Instant::now() < deadline, "stream never became readable");
        }
        // Interest can be narrowed and the fd removed.
        epoll.modify(sfd, EPOLLIN | EPOLLOUT, 9).unwrap();
        epoll.delete(sfd).unwrap();
    }

    #[test]
    fn eventfd_wakes_and_drains() {
        let epoll = Epoll::new().unwrap();
        let doorbell = EventFd::new().unwrap();
        epoll.add(doorbell.raw_fd(), EPOLLIN, 1).unwrap();
        let mut events = vec![EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);
        doorbell.notify();
        doorbell.notify();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let token = events[0].token;
        assert_eq!(token, 1);
        doorbell.drain();
        assert_eq!(epoll.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);
        // Notifying from another thread wakes a parked wait.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                doorbell.notify();
            });
            let n = epoll
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
            doorbell.drain();
        });
    }

    #[test]
    fn listen_with_backlog_serves_connections() {
        let listener = listen_with_backlog("127.0.0.1:0".parse().unwrap(), 512).unwrap();
        let addr = listener.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        let client = TcpStream::connect(addr).unwrap();
        let (_server_side, peer) = listener.accept().unwrap();
        assert_eq!(peer, client.local_addr().unwrap());
    }

    #[test]
    fn timer_wheel_fires_lazily_and_reschedules() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(100), 8, t0);
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_timeout(t0), None);

        wheel.schedule(1, Duration::from_millis(150));
        wheel.schedule(2, Duration::from_millis(450));
        assert_eq!(wheel.len(), 2);
        // Before the first tick nothing fires.
        let mut fired = Vec::new();
        wheel.poll(t0 + Duration::from_millis(50), &mut fired);
        assert!(fired.is_empty());
        // 150 ms rounds up to the second tick (200 ms).
        wheel.poll(t0 + Duration::from_millis(210), &mut fired);
        assert_eq!(fired, vec![1]);
        fired.clear();
        // Token 2 fires by 500 ms; a revalidating owner reschedules it.
        wheel.poll(t0 + Duration::from_millis(510), &mut fired);
        assert_eq!(fired, vec![2]);
        assert!(wheel.is_empty());
        wheel.schedule(2, Duration::from_millis(100));
        assert_eq!(wheel.len(), 1);
        assert!(wheel
            .next_timeout(t0 + Duration::from_millis(510))
            .is_some());
        // Delays beyond the horizon clamp to the farthest slot instead of
        // wrapping onto a near one.
        wheel.schedule(3, Duration::from_secs(3600));
        fired.clear();
        wheel.poll(t0 + Duration::from_millis(1300), &mut fired);
        assert!(fired.contains(&2) && fired.contains(&3));
    }
}
